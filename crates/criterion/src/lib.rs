//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub implements the subset `crates/bench` uses —
//! `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock timer printing mean time per
//! iteration. Statistics, outlier analysis and HTML reports are omitted.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark's closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.total.checked_div(b.iters as u32).unwrap_or_default();
        println!("{id:<40} {:>12.3?} /iter ({} iters)", mean, b.iters);
        self
    }
}

/// Declares a benchmark group: a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("stub", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
