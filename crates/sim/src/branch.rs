//! The PA8000 branch history table.
//!
//! The PA8000 predicted conditional branches with a 256-entry table of
//! 3-bit shift registers recording the branch's last three outcomes; the
//! prediction is the majority vote of the three bits.

/// Number of BHT entries (PA8000: 256).
pub const BHT_ENTRIES: usize = 256;

/// The 3-bit-shift-register majority-vote predictor.
#[derive(Debug, Clone)]
pub struct Pa8000Bht {
    /// Low three bits hold the last outcomes (bit 0 = most recent).
    entries: Vec<u8>,
}

impl Default for Pa8000Bht {
    fn default() -> Self {
        Self::new()
    }
}

impl Pa8000Bht {
    /// Creates a table with all histories "not taken".
    pub fn new() -> Self {
        Pa8000Bht {
            entries: vec![0; BHT_ENTRIES],
        }
    }

    fn index(addr: u64) -> usize {
        // Instructions are 4-byte aligned; drop the offset bits.
        ((addr >> 2) as usize) % BHT_ENTRIES
    }

    /// Predicts the branch at `addr`: majority of the last three outcomes.
    pub fn predict(&self, addr: u64) -> bool {
        let h = self.entries[Self::index(addr)];
        (h & 1) + ((h >> 1) & 1) + ((h >> 2) & 1) >= 2
    }

    /// Records the actual outcome, shifting it into the history.
    pub fn update(&mut self, addr: u64, taken: bool) {
        let e = &mut self.entries[Self::index(addr)];
        *e = ((*e << 1) | taken as u8) & 0b111;
    }

    /// Predicts and updates in one step, returning whether the prediction
    /// was correct.
    pub fn observe(&mut self, addr: u64, taken: bool) -> bool {
        let ok = self.predict(addr) == taken;
        self.update(addr, taken);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_branch_becomes_predictable() {
        let mut b = Pa8000Bht::new();
        let a = 0x1000;
        // First takens mispredict until the history fills.
        assert!(!b.observe(a, true));
        assert!(!b.observe(a, true));
        assert!(b.observe(a, true));
        assert!(b.observe(a, true));
    }

    #[test]
    fn majority_vote_tolerates_single_flip() {
        let mut b = Pa8000Bht::new();
        let a = 0x2000;
        for _ in 0..3 {
            b.update(a, true);
        }
        assert!(b.predict(a));
        b.update(a, false); // history T T F
        assert!(b.predict(a), "majority still taken");
        b.update(a, false); // history T F F
        assert!(!b.predict(a));
    }

    #[test]
    fn distinct_addresses_do_not_alias_within_table() {
        let mut b = Pa8000Bht::new();
        let a1 = 0x0;
        let a2 = 0x4; // next instruction -> different entry
        for _ in 0..3 {
            b.update(a1, true);
        }
        assert!(b.predict(a1));
        assert!(!b.predict(a2));
    }

    #[test]
    fn aliasing_wraps_at_table_size() {
        let mut b = Pa8000Bht::new();
        let a1 = 0x0;
        let a2 = (BHT_ENTRIES as u64) * 4; // same index after wrap
        for _ in 0..3 {
            b.update(a1, true);
        }
        assert!(b.predict(a2), "aliased entry shares history");
    }

    #[test]
    fn alternating_branch_stays_hard() {
        let mut b = Pa8000Bht::new();
        let a = 0x3000;
        let mut correct = 0;
        for i in 0..100 {
            if b.observe(a, i % 2 == 0) {
                correct += 1;
            }
        }
        // A TNTN pattern defeats majority voting most of the time.
        assert!(correct < 50, "{correct}");
    }
}
