//! Simulation statistics — Figure 7's quantities.

/// Counters and derived metrics from one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimStats {
    /// Modeled cycles.
    pub cycles: f64,
    /// Instructions retired, including modeled call overhead.
    pub retired: u64,
    /// I-cache accesses (instruction fetches).
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache accesses (program data + save/restore + stack args +
    /// library traffic).
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Branches executed (conditional + calls + returns).
    pub branches: u64,
    /// Branches mispredicted.
    pub mispredicts: u64,
}

impl SimStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles / self.retired as f64
        }
    }

    /// I-cache miss fraction in `[0, 1]`.
    pub fn icache_miss_rate(&self) -> f64 {
        rate(self.icache_misses, self.icache_accesses)
    }

    /// D-cache miss fraction in `[0, 1]`.
    pub fn dcache_miss_rate(&self) -> f64 {
        rate(self.dcache_misses, self.dcache_accesses)
    }

    /// Branch misprediction fraction in `[0, 1]`.
    pub fn branch_miss_rate(&self) -> f64 {
        rate(self.mispredicts, self.branches)
    }
}

fn rate(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycles {:.0} (CPI {:.3}), I$ {}/{} ({:.2}%), D$ {}/{} ({:.2}%), br {}/{} ({:.2}%)",
            self.cycles,
            self.cpi(),
            self.icache_misses,
            self.icache_accesses,
            self.icache_miss_rate() * 100.0,
            self.dcache_misses,
            self.dcache_accesses,
            self.dcache_miss_rate() * 100.0,
            self.mispredicts,
            self.branches,
            self.branch_miss_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100.0,
            retired: 50,
            icache_accesses: 50,
            icache_misses: 5,
            dcache_accesses: 20,
            dcache_misses: 2,
            branches: 10,
            mispredicts: 1,
            ..Default::default()
        };
        assert_eq!(s.cpi(), 2.0);
        assert_eq!(s.icache_miss_rate(), 0.1);
        assert_eq!(s.dcache_miss_rate(), 0.1);
        assert_eq!(s.branch_miss_rate(), 0.1);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = SimStats::default();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.icache_miss_rate(), 0.0);
        assert_eq!(s.branch_miss_rate(), 0.0);
    }
}
