//! The machine model: an `ExecMonitor` that drives the caches and the
//! branch predictor and accumulates the cycle model.

use crate::branch::Pa8000Bht;
use crate::cache::{Cache, CacheConfig};
use crate::stats::SimStats;
use hlo_ir::{BlockId, CodeLayout, ExternId, FuncId};
use hlo_vm::{CallKind, ExecMonitor, SiteId};

/// Cost-model parameters. Defaults approximate a PA8000-class machine
/// scaled to the synthetic suite (see crate docs and DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// I-cache geometry.
    pub icache: CacheConfig,
    /// D-cache geometry.
    pub dcache: CacheConfig,
    /// Cycles per cache miss (to memory).
    pub miss_penalty: f64,
    /// Cycles per branch misprediction.
    pub branch_penalty: f64,
    /// Effective sustained IPC of the out-of-order core on hits
    /// (PA8000 is 4-wide; real codes sustain ~2).
    pub effective_ipc: f64,
    /// Arguments passed in registers (PA-RISC: 4); the rest ride the
    /// stack, costing a store by the caller and a load by the callee.
    pub reg_args: u32,
    /// Modeled instruction cost of a call to an external (library)
    /// routine's body.
    pub extern_cost: u64,
    /// D-cache accesses an external routine performs.
    pub extern_dcache: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            icache: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                ways: 4,
            },
            dcache: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                ways: 4,
            },
            miss_penalty: 40.0,
            branch_penalty: 5.0,
            effective_ipc: 2.0,
            reg_args: 4,
            extern_cost: 25,
            extern_dcache: 4,
        }
    }
}

/// Virtual address where modeled save areas live (distinct from program
/// data so the traffic is visible to the D-cache without aliasing
/// globals).
const SIM_STACK_TOP: u64 = 1 << 33;
/// Virtual address region for external-library data traffic.
const LIB_DATA_BASE: u64 = 1 << 34;

/// Modeled callee-saved registers for a callee using `regs` virtual
/// registers: between 2 and 8, one per four registers (PA-RISC has a
/// fixed callee-saved set; bigger routines use more of it).
fn saves_for(regs: u32) -> u64 {
    (regs / 4).clamp(2, 8) as u64
}

/// The PA8000-style model; implements [`ExecMonitor`].
#[derive(Debug)]
pub struct Pa8000Model {
    cfg: MachineConfig,
    layout: CodeLayout,
    icache: Cache,
    dcache: Cache,
    bht: Pa8000Bht,
    retired: u64,
    branches: u64,
    mispredicts: u64,
    sim_sp: u64,
    /// Per active frame: (frame bytes, callee-saved count).
    frames: Vec<(u64, u64)>,
    lib_cursor: u64,
}

impl Pa8000Model {
    /// Builds the model for a program laid out as `layout`.
    pub fn new(cfg: MachineConfig, layout: CodeLayout) -> Self {
        Pa8000Model {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            bht: Pa8000Bht::new(),
            cfg,
            layout,
            retired: 0,
            branches: 0,
            mispredicts: 0,
            sim_sp: SIM_STACK_TOP,
            frames: Vec::new(),
            lib_cursor: 0,
        }
    }

    /// Final statistics.
    pub fn into_stats(self) -> SimStats {
        let imiss = self.icache.misses();
        let dmiss = self.dcache.misses();
        let cycles = self.retired as f64 / self.cfg.effective_ipc
            + (imiss + dmiss) as f64 * self.cfg.miss_penalty
            + self.mispredicts as f64 * self.cfg.branch_penalty;
        SimStats {
            cycles,
            retired: self.retired,
            icache_accesses: self.icache.accesses(),
            icache_misses: imiss,
            dcache_accesses: self.dcache.accesses(),
            dcache_misses: dmiss,
            branches: self.branches,
            mispredicts: self.mispredicts,
        }
    }

    fn push_overhead(&mut self, insts: u64, dcache_words: u64) {
        self.retired += insts;
        for k in 0..dcache_words {
            self.dcache.access(self.sim_sp + k * 8);
        }
    }
}

impl ExecMonitor for Pa8000Model {
    fn inst(&mut self, site: SiteId) {
        self.retired += 1;
        let addr = self.layout.addr(site.func, site.block, site.inst);
        self.icache.access(addr);
    }

    fn cond_branch(&mut self, site: SiteId, taken: bool) {
        self.branches += 1;
        let addr = self.layout.addr(site.func, site.block, site.inst);
        if !self.bht.observe(addr, taken) {
            self.mispredicts += 1;
        }
    }

    fn jump(&mut self, site: SiteId, target: BlockId) {
        // A jump to the next laid-out address is a fall-through: the
        // assembler elides it, so take back the instruction charged by
        // `inst` (its fetch is left counted — the fetch unit streams
        // through the boundary either way). Everything else is a real,
        // statically predicted unconditional branch.
        let jump_addr = self.layout.addr(site.func, site.block, site.inst);
        let target_addr = self.layout.addr(site.func, target, 0);
        if target_addr == jump_addr + 4 {
            self.retired = self.retired.saturating_sub(1);
        } else {
            self.branches += 1;
        }
    }

    fn call(
        &mut self,
        _site: SiteId,
        _callee: FuncId,
        kind: CallKind,
        callee_regs: u32,
        n_args: usize,
    ) {
        // The call branch itself.
        self.branches += 1;
        if kind == CallKind::Indirect {
            self.mispredicts += 1; // no BTB for computed targets
        }
        // Prologue: frame setup + callee-saved stores; stack arguments
        // cost a store (caller) and a load (callee) each.
        let saves = saves_for(callee_regs);
        let stack_args = (n_args as u64).saturating_sub(self.cfg.reg_args as u64);
        let frame_bytes = (saves + 2 + stack_args) * 8;
        self.sim_sp = self.sim_sp.saturating_sub(frame_bytes);
        self.frames.push((frame_bytes, saves));
        self.push_overhead(2 + saves + 2 * stack_args, saves + 2 * stack_args);
    }

    fn ret(&mut self, _func: FuncId, _callee_regs: u32) {
        // The PA8000 always mispredicts procedure return branches.
        self.branches += 1;
        self.mispredicts += 1;
        // Epilogue: restore callee-saved registers.
        if let Some((frame_bytes, saves)) = self.frames.pop() {
            self.push_overhead(1 + saves, saves);
            self.sim_sp += frame_bytes;
        }
    }

    fn extern_call(&mut self, _site: SiteId, _ext: ExternId) {
        // Library code: a call+return pair (return mispredicts) and a
        // fixed body cost touching library data.
        self.branches += 2;
        self.mispredicts += 1;
        self.retired += self.cfg.extern_cost;
        for _ in 0..self.cfg.extern_dcache {
            self.dcache
                .access(LIB_DATA_BASE + (self.lib_cursor % 512) * 8);
            self.lib_cursor += 1;
        }
    }

    fn mem(&mut self, addr: u64, _write: bool) {
        self.dcache.access(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use hlo_vm::ExecOptions;

    fn sim(src: &str) -> (SimStats, hlo_vm::ExecOutcome) {
        let p = hlo_frontc::compile(&[("m", src)]).unwrap();
        simulate(&p, &[], &ExecOptions::default(), &MachineConfig::default()).unwrap()
    }

    #[test]
    fn straightline_code_has_no_branch_misses_after_warmup() {
        let (s, _) = sim("fn main() { var s = 0; for (var i = 0; i < 1000; i = i + 1) { s = s + i; } return s; }");
        // Loop branch is highly predictable: a few warmup misses + exit.
        assert!(s.branches >= 1000);
        assert!(
            s.branch_miss_rate() < 0.05,
            "miss rate {}",
            s.branch_miss_rate()
        );
    }

    #[test]
    fn returns_always_mispredict() {
        let (s, _) = sim(
            "#[noinline] fn f(x) { return x; }
             fn main() { var a = 0; for (var i = 0; i < 500; i = i + 1) { a = a + f(i); } return a; }",
        );
        // 500 calls to f + 1 main return => at least 501 mispredicted
        // returns.
        assert!(s.mispredicts >= 501, "{s}");
    }

    #[test]
    fn call_overhead_shows_in_dcache_traffic() {
        let with_calls = sim(
            "#[noinline] fn f(x) { return x + 1; }
             fn main() { var a = 0; for (var i = 0; i < 1000; i = i + 1) { a = f(a); } return a; }",
        )
        .0;
        let without_calls =
            sim("fn main() { var a = 0; for (var i = 0; i < 1000; i = i + 1) { a = a + 1; } return a; }")
                .0;
        assert!(with_calls.dcache_accesses > without_calls.dcache_accesses + 1000);
    }

    #[test]
    fn stack_args_beyond_four_cost_extra() {
        let few = sim(
            "#[noinline] fn f(a, b) { return a + b; }
             fn main() { var s = 0; for (var i = 0; i < 300; i = i + 1) { s = s + f(i, i); } return s; }",
        )
        .0;
        let many = sim(
            "#[noinline] fn f(a, b, c, d, e, g) { return a + b + c + d + e + g; }
             fn main() { var s = 0; for (var i = 0; i < 300; i = i + 1) { s = s + f(i, i, i, i, i, i); } return s; }",
        )
        .0;
        // Six args = two stack args = 4 extra overhead insts + 4 D$
        // accesses per call over the two-arg version's baseline.
        assert!(many.dcache_accesses > few.dcache_accesses + 2 * 300);
    }

    #[test]
    fn icache_pressure_appears_when_code_exceeds_capacity() {
        // A program whose straight-line hot code is much larger than a
        // tiny I-cache must miss repeatedly.
        let mut body =
            String::from("fn main() { var s = 0; for (var r = 0; r < 50; r = r + 1) {\n");
        for i in 0..400 {
            body.push_str(&format!("s = s + {i}; s = s ^ {i}; s = s * 3;\n"));
        }
        body.push_str("} return s; }");
        let p = hlo_frontc::compile(&[("m", &body)]).unwrap();
        let small = MachineConfig {
            icache: CacheConfig {
                size_bytes: 1024,
                line_bytes: 32,
                ways: 2,
            },
            ..Default::default()
        };
        let big = MachineConfig::default();
        let eo = ExecOptions::default();
        let (ssmall, _) = simulate(&p, &[], &eo, &small).unwrap();
        let (sbig, _) = simulate(&p, &[], &eo, &big).unwrap();
        assert!(ssmall.icache_miss_rate() > 10.0 * sbig.icache_miss_rate().max(1e-9));
        assert!(ssmall.cycles > sbig.cycles);
    }

    #[test]
    fn saves_scale_with_register_usage() {
        assert_eq!(saves_for(0), 2);
        assert_eq!(saves_for(8), 2);
        assert_eq!(saves_for(20), 5);
        assert_eq!(saves_for(200), 8);
    }

    #[test]
    fn cpi_is_sane() {
        let (s, _) = sim("fn main() { var s = 0; for (var i = 0; i < 5000; i = i + 1) { s = s + i; } return s; }");
        assert!(s.cpi() > 0.3 && s.cpi() < 3.0, "cpi {}", s.cpi());
    }
}
