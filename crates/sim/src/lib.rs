#![warn(missing_docs)]
//! A PA8000-style machine model — the substrate of the paper's Figure 7.
//!
//! The original evaluation ran modified SPEC inputs through HP's PA8000
//! simulator and reported cycles, CPI, I-cache and D-cache accesses and
//! miss rates, branches and branch miss rate. This crate reproduces that
//! methodology as a trace-driven first-order model fed on-line by the VM:
//!
//! * **Fetch** — every retired IR instruction fetches 4 bytes at the
//!   address assigned by [`hlo_ir::CodeLayout`], through a set-associative
//!   LRU I-cache. Code expansion from inlining therefore stresses the
//!   I-cache exactly the way the paper discusses.
//! * **Data** — program loads/stores go through a D-cache, *plus* modeled
//!   callee register save/restore traffic at call and return (scaled by
//!   the callee's register usage) and stack traffic for arguments beyond
//!   the four PA-RISC argument registers. Inlining removes this traffic —
//!   the paper's explanation for the "dramatic drop" in D-cache accesses.
//! * **Branches** — conditional branches are predicted by the PA8000's
//!   branch history table: 256 entries of 3-bit shift registers with
//!   majority vote. **Procedure returns always mispredict** (the paper
//!   notes the PA8000 does this) and indirect calls mispredict too.
//! * **Cycles** — `retired/ISSUE_WIDTH_EFFECTIVE + misses·MISS_PENALTY +
//!   mispredicts·BRANCH_PENALTY`. Absolute numbers are model units; the
//!   relative quantities of Figure 7 are what the model is for.
//!
//! Caches default to 32 KiB (4-way, 32-byte lines) — scaled down from the
//! PA8000's 1 MB off-chip caches by roughly the ratio of our synthetic
//! benchmarks to SPEC programs, so capacity effects appear at comparable
//! relative code sizes (see DESIGN.md).
//!
//! Synthetic call-overhead instructions are charged to the pipeline and
//! D-cache but not fetched through the I-cache (their fetch would largely
//! overlay the callee's first lines; see DESIGN.md).

mod branch;
mod cache;
mod machine;
mod stats;

pub use branch::Pa8000Bht;
pub use cache::{Cache, CacheConfig};
pub use machine::{MachineConfig, Pa8000Model};
pub use stats::SimStats;

use hlo_ir::{CodeLayout, Program};
use hlo_vm::{run_with_monitor, ExecOptions, ExecOutcome, Trap};

/// Runs `p` on the VM under the machine model, returning simulation
/// statistics and the program outcome.
///
/// # Errors
/// Propagates any VM trap.
///
/// # Example
///
/// ```
/// let p = hlo_frontc::compile(&[("m", "fn main() { return 2 + 2; }")]).unwrap();
/// let (stats, out) = hlo_sim::simulate(
///     &p, &[], &hlo_vm::ExecOptions::default(), &hlo_sim::MachineConfig::default())?;
/// assert_eq!(out.ret, 4);
/// assert!(stats.cycles > 0.0);
/// # Ok::<(), hlo_vm::Trap>(())
/// ```
pub fn simulate(
    p: &Program,
    args: &[i64],
    exec: &ExecOptions,
    config: &MachineConfig,
) -> Result<(SimStats, ExecOutcome), Trap> {
    simulate_with_layout(p, args, exec, config, CodeLayout::of(p))
}

/// Like [`simulate`], with an explicit code layout — e.g. one produced by
/// profile-guided procedure positioning (`hlo_analysis::procedure_order`
/// plus [`CodeLayout::with_order`]), the Pettis–Hansen technique the
/// paper cites as part of HP's PBO.
///
/// # Errors
/// Propagates any VM trap.
pub fn simulate_with_layout(
    p: &Program,
    args: &[i64],
    exec: &ExecOptions,
    config: &MachineConfig,
    layout: CodeLayout,
) -> Result<(SimStats, ExecOutcome), Trap> {
    let mut model = Pa8000Model::new(config.clone(), layout);
    let out = run_with_monitor(p, args, exec, &mut model)?;
    Ok((model.into_stats(), out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inlined_build_wins_cycles_on_call_heavy_code() {
        let src = &[(
            "m",
            r#"
            fn leaf(a, b) { return a * 2 + b; }
            fn main() {
                var s = 0;
                for (var i = 0; i < 2000; i = i + 1) { s = s + leaf(i, s); }
                return s;
            }
            "#,
        )];
        let base = hlo_frontc::compile(src).unwrap();
        let mut opt = base.clone();
        hlo::optimize(&mut opt, None, &hlo::HloOptions::default());
        let cfg = MachineConfig::default();
        let eo = ExecOptions::default();
        let (sb, ob) = simulate(&base, &[], &eo, &cfg).unwrap();
        let (so, oo) = simulate(&opt, &[], &eo, &cfg).unwrap();
        assert_eq!(ob.ret, oo.ret);
        assert!(
            so.cycles < sb.cycles,
            "inlining must win: {} vs {}",
            so.cycles,
            sb.cycles
        );
        // The signature D-cache-access collapse from removed save/restore.
        assert!(so.dcache_accesses < sb.dcache_accesses);
        // And fewer branches (calls and returns are branches).
        assert!(so.branches < sb.branches);
    }
}
