//! Set-associative LRU caches.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size power of two");
        assert!(self.ways > 0 && self.size_bytes > 0);
        let sets = self.size_bytes / (self.line_bytes * self.ways as u64);
        assert!(sets > 0, "cache too small for its ways and line size");
        sets
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    /// Per set: tags in LRU order, most recent first.
    tags: Vec<Vec<u64>>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            tags: vec![Vec::with_capacity(cfg.ways as usize); sets as usize],
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns true on hit. Misses allocate (for both
    /// reads and writes: write-allocate, which is what the PA8000's data
    /// cache did).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            self.misses += 1;
            if ways.len() == self.cfg.ways as usize {
                ways.pop();
            }
            ways.insert(0, tag);
            false
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss fraction in `[0, 1]` (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(8)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 lines: line numbers even (line%2==0): addresses 0, 32, 64
        assert!(!c.access(0)); // A
        assert!(!c.access(32)); // B  (set full)
        assert!(c.access(0)); // A again (A MRU)
        assert!(!c.access(64)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(32)); // B was evicted
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        assert!(!c.access(0)); // set 0
        assert!(!c.access(16)); // set 1
        assert!(c.access(0));
        assert!(c.access(16));
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.miss_rate(), 0.5);
        assert_eq!(Cache::new(c.cfg).miss_rate(), 0.0);
    }

    #[test]
    fn hits_plus_misses_equal_accesses() {
        let mut c = tiny();
        let addrs = [0u64, 8, 16, 48, 96, 128, 0, 8, 200, 16];
        let mut hits = 0;
        for &a in &addrs {
            if c.access(a) {
                hits += 1;
            }
        }
        assert_eq!(hits + c.misses(), c.accesses());
    }

    #[test]
    #[should_panic(expected = "cache too small")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 16,
            line_bytes: 16,
            ways: 2,
        });
    }
}
