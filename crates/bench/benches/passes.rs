//! Criterion micro-benchmarks of the compiler passes and substrates
//! themselves (engineering benches; the paper's figures come from the
//! `figure*`/`table1` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use hlo::{HloOptions, Scope};
use hlo_vm::ExecOptions;

fn program() -> hlo_ir::Program {
    hlo_suite::benchmark("126.gcc")
        .expect("suite has 126.gcc")
        .compile()
        .expect("compiles")
}

fn bench_frontend(c: &mut Criterion) {
    let b = hlo_suite::benchmark("126.gcc").unwrap();
    c.bench_function("frontend_compile_126gcc", |bench| {
        bench.iter(|| b.compile().unwrap())
    });
}

fn bench_scalar_opt(c: &mut Criterion) {
    let p = program();
    c.bench_function("scalar_optimize_program", |bench| {
        bench.iter_batched(
            || p.clone(),
            |mut p| hlo_opt::optimize_program(&mut p),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_hlo(c: &mut Criterion) {
    let p = program();
    for (name, inline, clone) in [
        ("hlo_inline_only", true, false),
        ("hlo_clone_only", false, true),
        ("hlo_full", true, true),
    ] {
        let opts = HloOptions {
            scope: Scope::CrossModule,
            enable_inline: inline,
            enable_clone: clone,
            ..Default::default()
        };
        c.bench_function(name, |bench| {
            bench.iter_batched(
                || p.clone(),
                |mut p| hlo::optimize(&mut p, None, &opts),
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

fn bench_vm(c: &mut Criterion) {
    let b = hlo_suite::benchmark("026.compress").unwrap();
    let p = b.compile().unwrap();
    c.bench_function("vm_run_compress_train", |bench| {
        bench.iter(|| hlo_vm::run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let b = hlo_suite::benchmark("026.compress").unwrap();
    let p = b.compile().unwrap();
    c.bench_function("pa8000_sim_compress_train", |bench| {
        bench.iter(|| {
            hlo_sim::simulate(
                &p,
                &[b.train_arg],
                &ExecOptions::default(),
                &hlo_sim::MachineConfig::default(),
            )
            .unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_frontend, bench_scalar_opt, bench_hlo, bench_vm, bench_simulator
}
criterion_main!(benches);
