#![warn(missing_docs)]
//! Shared harness for regenerating the paper's tables and figures.
//!
//! Binaries (run with `cargo run --release -p hlo-bench --bin <name>`):
//!
//! * `figure5` — static call-site characteristics of the suite.
//! * `table1`  — inline/clone/replacement/deletion counts, compile time
//!   and run time at scopes {base, C, P, CP}.
//! * `figure6` — speedups of {inline+clone, inline, clone} over neither.
//! * `figure7` — machine-model metrics for the four configurations.
//! * `figure8` — incremental benefit of successive operations on 022.li
//!   at budgets {25, 100, 200, 1000}.
//! * `ablations` — budget staging, cold-site penalty, clone-database and
//!   outlining design knobs.
//! * `positioning` — Pettis–Hansen procedure positioning (the paper's
//!   reference \[12\]) against the default module-order layout.

use hlo::{HloOptions, HloReport, Scope};
use hlo_ir::Program;
use hlo_profile::{collect_profile, ProfileDb};
use hlo_sim::{simulate, MachineConfig, SimStats};
use hlo_suite::Benchmark;
use hlo_vm::ExecOptions;

/// The four compilation configurations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Per-module inlining and cloning (the table's unmarked rows).
    Base,
    /// Cross-module ("c").
    Cross,
    /// Per-module with profile feedback ("p").
    Profile,
    /// Cross-module with profile feedback ("cp").
    CrossProfile,
}

impl BuildKind {
    /// All four, in Table 1 order.
    pub const ALL: [BuildKind; 4] = [
        BuildKind::Base,
        BuildKind::Cross,
        BuildKind::Profile,
        BuildKind::CrossProfile,
    ];

    /// The paper's row tag.
    pub fn tag(self) -> &'static str {
        match self {
            BuildKind::Base => "-",
            BuildKind::Cross => "c",
            BuildKind::Profile => "p",
            BuildKind::CrossProfile => "cp",
        }
    }

    fn scope(self) -> Scope {
        match self {
            BuildKind::Base | BuildKind::Profile => Scope::WithinModule,
            BuildKind::Cross | BuildKind::CrossProfile => Scope::CrossModule,
        }
    }

    fn uses_profile(self) -> bool {
        matches!(self, BuildKind::Profile | BuildKind::CrossProfile)
    }
}

/// A compiled-and-measured benchmark build.
#[derive(Debug, Clone)]
pub struct BuildResult {
    /// The optimized program.
    pub program: Program,
    /// HLO's report.
    pub report: HloReport,
    /// Modeled compile time in cost units, including the instrumented
    /// compile and training run for profile builds.
    pub compile_units: u64,
}

/// Divisor converting training-run retired instructions into compile-time
/// units (a training run is much cheaper per instruction than quadratic
/// optimizer work).
const TRAIN_COST_DIVISOR: u64 = 50;

/// Compiles `b` under `kind` with the given HLO option overrides.
///
/// # Panics
/// Panics if the embedded benchmark sources fail to compile or the
/// training run traps — both indicate suite bugs.
pub fn build(b: &Benchmark, kind: BuildKind, mut opts: HloOptions) -> BuildResult {
    opts.scope = kind.scope();
    let mut program = b.compile().expect("suite program compiles");
    let mut compile_units = 0u64;

    let profile: Option<ProfileDb> = if kind.uses_profile() {
        // The instrumented compile costs a (cheap, unoptimized) compile,
        // and the training run costs VM time (paper §3.2 includes both).
        compile_units += program.compile_cost();
        let (db, out) = collect_profile(&program, &[b.train_arg], &ExecOptions::default())
            .expect("training run");
        compile_units += out.retired / TRAIN_COST_DIVISOR;
        Some(db)
    } else {
        None
    };

    let report = hlo::optimize(&mut program, profile.as_ref(), &opts);
    compile_units += report.compile_time_units();
    BuildResult {
        program,
        report,
        compile_units,
    }
}

/// Simulates the build on the ref input with the default machine.
///
/// # Panics
/// Panics if the run traps (a suite bug).
pub fn measure(b: &Benchmark, program: &Program) -> SimStats {
    measure_with(b, program, &MachineConfig::default())
}

/// Simulates the build on the ref input with a custom machine model.
///
/// # Panics
/// Panics if the run traps (a suite bug).
pub fn measure_with(b: &Benchmark, program: &Program, machine: &MachineConfig) -> SimStats {
    let (stats, _) =
        simulate(program, &[b.ref_arg], &ExecOptions::default(), machine).expect("ref run");
    stats
}

/// The Figure 7 machine: caches scaled to the synthetic programs the way
/// the paper's simulator ran "modified versions of the SPEC integer
/// benchmarks, with simplified input sets". Programs here are ~1–2 KiB of
/// code, so capacity effects appear at a 1 KiB I-cache the way SPEC-sized
/// programs stress a 1 MB one.
pub fn figure7_machine() -> MachineConfig {
    MachineConfig {
        icache: hlo_sim::CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
        },
        dcache: hlo_sim::CacheConfig {
            size_bytes: 2048,
            line_bytes: 32,
            ways: 2,
        },
        ..Default::default()
    }
}

/// Geometric mean of a slice (1.0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a ratio column.
pub fn ratio(baseline: f64, value: f64) -> f64 {
    if value == 0.0 {
        1.0
    } else {
        baseline / value
    }
}

/// Prints a horizontal rule sized for `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn build_kind_metadata() {
        assert_eq!(BuildKind::ALL.len(), 4);
        assert_eq!(BuildKind::CrossProfile.tag(), "cp");
        assert!(BuildKind::CrossProfile.uses_profile());
        assert!(!BuildKind::Cross.uses_profile());
    }

    #[test]
    fn build_and_measure_smoke() {
        let b = hlo_suite::benchmark("023.eqntott").unwrap();
        let base = build(&b, BuildKind::Base, HloOptions::default());
        let cp = build(&b, BuildKind::CrossProfile, HloOptions::default());
        // Profile builds pay for instrumentation + training.
        assert!(cp.compile_units > 0);
        let sb = measure(&b, &base.program);
        let scp = measure(&b, &cp.program);
        assert!(sb.cycles > 0.0 && scp.cycles > 0.0);
    }
}
