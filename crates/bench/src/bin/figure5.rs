//! Figure 5: static characteristics of call sites in the benchmarks.
//!
//! Prints, per program, the share of external / indirect / cross-module /
//! within-module / recursive call sites and the total count — the same
//! rows as the paper's stacked bars.

use hlo_analysis::classify_sites;

fn main() {
    println!("Figure 5: static call-site characteristics");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "benchmark", "extern", "indir", "cross", "within", "recur", "total"
    );
    hlo_bench::rule(62);
    for b in hlo_suite::all_benchmarks() {
        let p = b.compile().expect("suite program compiles");
        let c = classify_sites(&p);
        println!(
            "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
            b.name,
            c.external,
            c.indirect,
            c.cross_module,
            c.within_module,
            c.recursive,
            c.total()
        );
    }
    hlo_bench::rule(62);
    println!("(cross + within + recursive sites are amenable to inlining/cloning)");
}
