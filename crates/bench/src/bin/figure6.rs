//! Figure 6: relative speedup with inlining, cloning, or both.
//!
//! Baseline is a cross-module, profile-fed compile with inlining and
//! cloning disabled (the paper's baseline "uses cross-module and
//! profile-based optimization, plus peak options not affecting inlining
//! or cloning"). Prints per-benchmark speedups and the geometric means
//! for the SPECint92-like and SPECint95-like halves of the suite.

use hlo::HloOptions;
use hlo_bench::{build, geomean, measure, BuildKind};
use hlo_suite::SpecSuite;

fn options(inline: bool, clone: bool) -> HloOptions {
    HloOptions {
        enable_inline: inline,
        enable_clone: clone,
        ..Default::default()
    }
}

fn main() {
    println!("Figure 6: relative speedup over no-inline-no-clone (cp baseline)");
    println!(
        "{:<14} {:>14} {:>10} {:>10}",
        "benchmark", "inline+clone", "inline", "clone"
    );
    hlo_bench::rule(52);
    let mut sp92 = [Vec::new(), Vec::new(), Vec::new()];
    let mut sp95 = [Vec::new(), Vec::new(), Vec::new()];
    for b in hlo_suite::all_benchmarks() {
        let base = build(&b, BuildKind::CrossProfile, options(false, false));
        let base_cycles = measure(&b, &base.program).cycles;
        let mut row = [0.0f64; 3];
        for (i, (inl, cl)) in [(true, true), (true, false), (false, true)]
            .iter()
            .enumerate()
        {
            let r = build(&b, BuildKind::CrossProfile, options(*inl, *cl));
            let cycles = measure(&b, &r.program).cycles;
            row[i] = base_cycles / cycles;
            match b.suite {
                SpecSuite::Int92 => sp92[i].push(row[i]),
                SpecSuite::Int95 => sp95[i].push(row[i]),
            }
        }
        println!(
            "{:<14} {:>14.3} {:>10.3} {:>10.3}",
            b.name, row[0], row[1], row[2]
        );
    }
    hlo_bench::rule(52);
    println!(
        "{:<14} {:>14.3} {:>10.3} {:>10.3}",
        "SPECint92",
        geomean(&sp92[0]),
        geomean(&sp92[1]),
        geomean(&sp92[2])
    );
    println!(
        "{:<14} {:>14.3} {:>10.3} {:>10.3}",
        "SPECint95",
        geomean(&sp95[0]),
        geomean(&sp95[1]),
        geomean(&sp95[2])
    );
}
