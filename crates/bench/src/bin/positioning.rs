//! Profile-guided procedure positioning (Pettis & Hansen, the paper's
//! reference \[12\]) on top of the optimized programs: compares I-cache
//! behaviour of the default module-order layout against the PGO layout,
//! using a small instruction cache where placement matters.

use hlo::HloOptions;
use hlo_analysis::{procedure_order, CallGraph};
use hlo_bench::{build, BuildKind};
use hlo_ir::CodeLayout;
use hlo_sim::{simulate_with_layout, CacheConfig, MachineConfig};
use hlo_vm::ExecOptions;

fn machine() -> MachineConfig {
    MachineConfig {
        icache: CacheConfig {
            size_bytes: 512,
            line_bytes: 32,
            ways: 1,
        },
        ..Default::default()
    }
}

fn main() {
    println!("Procedure positioning (512B direct-mapped I$, cp builds)");
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "benchmark", "I$miss(mod)", "I$miss(pgo)", "cyc(mod)M", "cyc(pgo)M", "speedup"
    );
    hlo_bench::rule(70);
    for b in hlo_suite::all_benchmarks() {
        let r = build(&b, BuildKind::CrossProfile, HloOptions::default());
        let p = &r.program;
        let exec = ExecOptions::default();
        let (module_order, _) =
            simulate_with_layout(p, &[b.ref_arg], &exec, &machine(), CodeLayout::of(p))
                .expect("ref run");
        let cg = CallGraph::build(p);
        let order = procedure_order(p, &cg);
        let (pgo, _) = simulate_with_layout(
            p,
            &[b.ref_arg],
            &exec,
            &machine(),
            CodeLayout::with_order(p, &order),
        )
        .expect("ref run");
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>9.2} {:>9.2} {:>8.3}",
            b.name,
            module_order.icache_miss_rate() * 100.0,
            pgo.icache_miss_rate() * 100.0,
            module_order.cycles / 1e6,
            pgo.cycles / 1e6,
            module_order.cycles / pgo.cycles,
        );
    }
    hlo_bench::rule(70);
    println!("speedup > 1.0: positioning helps at this cache size.");
    println!("Losses are real too: the suite's module order is already");
    println!("affinity-ordered (helpers sit next to their callers), which");
    println!("Pettis-Hansen cannot always beat on a direct-mapped cache.");
}
