//! Figure 7: PA8000-model simulation results.
//!
//! For each simulated benchmark and each of the four inline/clone
//! configurations, prints the paper's eight panels: relative cycles,
//! CPI, relative I-cache accesses, I-cache miss rate (×1000), relative
//! D-cache accesses, D-cache miss rate (×100), relative branches, and
//! branch miss rate. "Relative" is scaled to the neither-inline-nor-clone
//! build, exactly as in the paper.

use hlo::HloOptions;
use hlo_bench::{build, figure7_machine, measure_with, BuildKind};
use hlo_sim::SimStats;

const CONFIGS: [(&str, bool, bool); 4] = [
    ("neither", false, false),
    ("clone", false, true),
    ("inline", true, false),
    ("in+cl", true, true),
];

fn build_cfg(b: &hlo_suite::Benchmark, inline: bool, clone: bool) -> SimStats {
    let opts = HloOptions {
        enable_inline: inline,
        enable_clone: clone,
        ..Default::default()
    };
    let r = build(b, BuildKind::CrossProfile, opts);
    // Scaled-down caches, mirroring the paper's modified-input simulation.
    measure_with(b, &r.program, &figure7_machine())
}

fn main() {
    println!("Figure 7: simulation results (relative to 'neither')");
    println!(
        "{:<14} {:<8} {:>8} {:>6} {:>8} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "benchmark",
        "config",
        "relcyc",
        "CPI",
        "relI$acc",
        "I$mr*1000",
        "relD$acc",
        "D$mr*100",
        "relbr",
        "br-mr%"
    );
    hlo_bench::rule(96);
    for b in hlo_suite::figure7_benchmarks() {
        let base = build_cfg(&b, false, false);
        for (name, inl, cl) in CONFIGS {
            let s = if !inl && !cl {
                base
            } else {
                build_cfg(&b, inl, cl)
            };
            println!(
                "{:<14} {:<8} {:>8.3} {:>6.3} {:>8.3} {:>9.2} {:>8.3} {:>9.2} {:>8.3} {:>8.2}",
                b.name,
                name,
                s.cycles / base.cycles,
                s.cpi(),
                s.icache_accesses as f64 / base.icache_accesses as f64,
                s.icache_miss_rate() * 1000.0,
                s.dcache_accesses as f64 / base.dcache_accesses as f64,
                s.dcache_miss_rate() * 100.0,
                s.branches as f64 / base.branches as f64,
                s.branch_miss_rate() * 100.0,
            );
        }
        hlo_bench::rule(96);
    }
    println!("(paper shape: inlining cuts cycles, D$ accesses and branches;");
    println!(" I$ miss rate may rise while total I$ accesses fall)");
}
