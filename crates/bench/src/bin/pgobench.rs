//! `pgobench` — the continuous-PGO gate (`cargo pgobench`).
//!
//! Drives the drift-triggered re-optimization loop end to end through an
//! in-process daemon, once per suite program:
//!
//! 1. a cold server-mode build (empty aggregate) must be byte-identical
//!    to a profile-free in-process optimize — an empty store is invisible;
//! 2. pushing the trained profile plants cold-start drift (score 1000):
//!    the next server-mode request MUST be re-optimized (stale hit) and
//!    its IR must equal an in-process optimize with that profile;
//! 3. pushing the identical delta again is a scaling-invariant no-op
//!    (counts double uniformly, shares unchanged): the next request MUST
//!    be a plain cache hit at drift 0 — never re-optimized;
//! 4. pushing the train-arg then ref-arg deltas into one store and the
//!    reverse order into another must merge to byte-identical aggregate
//!    text (within-generation merges are commutative saturating adds).
//!
//! Wire push throughput is measured after the sweep and written with the
//! gate results to `BENCH_pgo.json`. The gate is behavior, not speed.

use hlo::HloOptions;
use hlo_pgo::{store::DEFAULT_CAP, ProfileStore};
use hlo_profile::collect_profile;
use hlo_serve::{Client, OptimizeRequest, ProfilePushRequest, ProfileSpec, ServeConfig, Server};
use hlo_vm::ExecOptions;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Row {
    name: &'static str,
    cold_plain: bool,
    reopt_on_drift: bool,
    no_reopt_on_noop: bool,
    order_independent: bool,
    drift_millis: u64,
}

fn main() -> ExitCode {
    let server = match Server::spawn("127.0.0.1:0", ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pgobench: cannot spawn daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect to in-process daemon");

    println!(
        "pgobench: continuous PGO through hlod at {addr} (gate: drift behavior + merge order)"
    );
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "program", "cold=", "drift", "reopt", "noop", "order"
    );
    hlo_bench::rule(50);

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    let mut push_payload = String::new();
    let mut push_key = String::new();
    for b in hlo_suite::all_benchmarks() {
        let baseline = b.compile().expect("suite program compiles");
        let key = hlo_pgo::program_key(&baseline);
        let exec = ExecOptions::default();
        let (train_db, _) =
            collect_profile(&baseline, &[b.train_arg], &exec).expect("training run");
        let (ref_db, _) = collect_profile(&baseline, &[b.ref_arg], &exec).expect("ref run");

        // Ground truth: profile-free and profile-guided in-process builds.
        let opts = HloOptions::default();
        let mut plain = b.compile().expect("suite program compiles");
        let _ = hlo::optimize(&mut plain, None, &opts);
        let plain_ir = hlo_ir::program_to_text(&plain);
        let mut guided = b.compile().expect("suite program compiles");
        let _ = hlo::optimize(&mut guided, Some(&train_db), &opts);
        let guided_ir = hlo_ir::program_to_text(&guided);

        let req = OptimizeRequest {
            profile: ProfileSpec::Server,
            ..OptimizeRequest::from_minc(
                b.sources
                    .iter()
                    .map(|(n, s)| (n.to_string(), s.to_string()))
                    .collect(),
            )
        };

        // 1. Cold: empty aggregate must look exactly like no profile.
        let cold = client.optimize(&req).expect("cold server-mode build");
        let cold_plain = !cold.outcome.hit && cold.ir_text == plain_ir;

        // 2. Planted drift: the trained profile lands, the cached result
        //    was built cold — the daemon must rebuild with the aggregate.
        let push = ProfilePushRequest {
            program: key.clone(),
            delta: train_db.to_text(),
            advance: 0,
        };
        client.profile_push(&push).expect("first push");
        let drifted = client.optimize(&req).expect("post-push build");
        let reopt_on_drift =
            drifted.outcome.stale && !drifted.outcome.hit && drifted.ir_text == guided_ir;
        let drift_millis = drifted.outcome.drift_millis;

        // 3. No-op push: same delta again doubles every count uniformly;
        //    shares are unchanged, so the cache must serve a plain hit.
        client.profile_push(&push).expect("second push");
        let stable = client.optimize(&req).expect("post-noop build");
        let no_reopt_on_noop = stable.outcome.hit
            && !stable.outcome.stale
            && stable.outcome.drift_millis == 0
            && stable.ir_text == drifted.ir_text;

        // 4. Merge-order independence, checked against the store directly:
        //    train-then-ref and ref-then-train must read back identically.
        let mut ab = ProfileStore::new(DEFAULT_CAP);
        ab.register(&key).expect("register");
        ab.push(&key, &train_db).expect("push");
        ab.push(&key, &ref_db).expect("push");
        let mut ba = ProfileStore::new(DEFAULT_CAP);
        ba.register(&key).expect("register");
        ba.push(&key, &ref_db).expect("push");
        ba.push(&key, &train_db).expect("push");
        let order_independent = ab.to_text() == ba.to_text()
            && ab.merged(&key).expect("merged").to_text()
                == ba.merged(&key).expect("merged").to_text();

        let row = Row {
            name: b.name,
            cold_plain,
            reopt_on_drift,
            no_reopt_on_noop,
            order_independent,
            drift_millis,
        };
        ok &= row.cold_plain && row.reopt_on_drift && row.no_reopt_on_noop && row.order_independent;
        println!(
            "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}",
            row.name,
            yn(row.cold_plain),
            row.drift_millis,
            yn(row.reopt_on_drift),
            yn(row.no_reopt_on_noop),
            yn(row.order_independent)
        );
        if push_payload.is_empty() {
            push_payload = train_db.to_text();
            push_key = key;
        }
        rows.push(row);
    }
    hlo_bench::rule(50);

    // Daemon-side accounting must agree with the sweep: one planted-drift
    // re-optimization per program, three pushes each (two above plus the
    // throughput burst below on the first program's key).
    let programs = rows.len() as u64;
    const BURST: u64 = 200;
    let burst_req = ProfilePushRequest {
        program: push_key,
        delta: push_payload,
        advance: 0,
    };
    let t = Instant::now();
    for _ in 0..BURST {
        client.profile_push(&burst_req).expect("burst push");
    }
    let burst_us = t.elapsed().as_micros() as u64;
    let pushes_per_sec = BURST as f64 / (burst_us as f64 / 1_000_000.0);

    let stats = client.stats().expect("stats request");
    let accounting = stats.reoptimizations == programs
        && stats.stale_hits == programs
        && stats.pgo_pushes == 2 * programs + BURST
        && stats.pgo_programs == programs;
    if !accounting {
        eprintln!(
            "pgobench: daemon accounting off: reopt {} stale {} pushes {} programs {}",
            stats.reoptimizations, stats.stale_hits, stats.pgo_pushes, stats.pgo_programs
        );
    }
    ok &= accounting;

    println!(
        "push throughput: {BURST} pushes in {burst_us} us ({pushes_per_sec:.0}/s), \
         accounting {}",
        yn(accounting)
    );

    client.shutdown().expect("shutdown");
    server.wait();

    let json = render_json(pushes_per_sec, burst_us, accounting, &rows);
    let path = "BENCH_pgo.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("pgobench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("pgobench: CONTINUOUS-PGO GATE FAILED — see rows marked NO");
        ExitCode::FAILURE
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

/// Hand-rolled JSON (the registry is offline; no serde). All strings are
/// benchmark names — `[0-9A-Za-z._]` — so quoting suffices.
fn render_json(pushes_per_sec: f64, burst_us: u64, accounting: bool, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pushes_per_sec\": {pushes_per_sec:.1},");
    let _ = writeln!(s, "  \"burst_us\": {burst_us},");
    let _ = writeln!(s, "  \"accounting\": {accounting},");
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"cold_plain\": {}, \"drift_millis\": {}, \
             \"reopt_on_drift\": {}, \"no_reopt_on_noop\": {}, \"order_independent\": {}}}{}",
            r.name,
            r.cold_plain,
            r.drift_millis,
            r.reopt_on_drift,
            r.no_reopt_on_noop,
            r.order_independent,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
