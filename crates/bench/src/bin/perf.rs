//! `perf` — the parallel-pipeline harness (`cargo perf`).
//!
//! Builds every suite program twice — once at `jobs = 1` and once at
//! `jobs = N` (all hardware threads, floored at 2 so the worker pool is
//! exercised even on a single-core host) — and verifies that the parallel
//! build is **byte-identical**: same printed IR, same compile-time units,
//! same operation count. Any divergence is a bug in the partitioned
//! pipeline and the process exits non-zero, which is what lets `cargo
//! perf` gate CI on determinism.
//!
//! Timings (per-benchmark wall clock, per-stage wall vs cumulative work,
//! aggregate speedup) are printed and written to `BENCH_parallel.json` in
//! the working directory. On a single-core container the speedup is
//! honestly ≈ 1× or below (thread overhead with no extra hardware); the
//! gate is determinism, not speedup.

use hlo::par::effective_jobs;
use hlo::HloOptions;
use hlo_bench::{build, BuildKind};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One benchmark's measurements at both job counts.
struct Row {
    name: &'static str,
    identical: bool,
    compile_units: u64,
    operations: u64,
    wall_us_j1: u64,
    wall_us_jn: u64,
}

/// Per-stage totals (summed over the suite) at both job counts.
#[derive(Default, Clone)]
struct StageRow {
    stage: String,
    wall_us_j1: u64,
    wall_us_jn: u64,
    work_us_jn: u64,
}

fn main() -> ExitCode {
    let jobs = effective_jobs(0).max(2);
    let opts = |jobs| HloOptions {
        jobs,
        ..Default::default()
    };
    println!("perf: suite at jobs=1 vs jobs={jobs} (gate: identical output)");
    println!(
        "{:<14} {:>9} {:>6} {:>12} {:>12} {:>8} {:>6}",
        "program", "units", "ops", "j1 wall(us)", "jN wall(us)", "speedup", "same"
    );
    hlo_bench::rule(74);

    let mut rows: Vec<Row> = Vec::new();
    let mut stages: Vec<StageRow> = Vec::new();
    let mut all_identical = true;
    for b in hlo_suite::all_benchmarks() {
        let t = Instant::now();
        let r1 = build(&b, BuildKind::CrossProfile, opts(1));
        let wall_us_j1 = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let rn = build(&b, BuildKind::CrossProfile, opts(jobs));
        let wall_us_jn = t.elapsed().as_micros() as u64;

        let identical = hlo_ir::program_to_text(&r1.program)
            == hlo_ir::program_to_text(&rn.program)
            && r1.report.compile_time_units() == rn.report.compile_time_units()
            && r1.report.operations() == rn.report.operations();
        all_identical &= identical;

        for s in &r1.report.stage_timings {
            stage_row(&mut stages, &s.stage).wall_us_j1 += s.wall_us;
        }
        for s in &rn.report.stage_timings {
            let row = stage_row(&mut stages, &s.stage);
            row.wall_us_jn += s.wall_us;
            row.work_us_jn += s.work_us;
        }

        println!(
            "{:<14} {:>9} {:>6} {:>12} {:>12} {:>8.2} {:>6}",
            b.name,
            rn.report.compile_time_units(),
            rn.report.operations(),
            wall_us_j1,
            wall_us_jn,
            wall_us_j1 as f64 / wall_us_jn.max(1) as f64,
            if identical { "yes" } else { "NO" }
        );
        rows.push(Row {
            name: b.name,
            identical,
            compile_units: rn.report.compile_time_units(),
            operations: rn.report.operations(),
            wall_us_j1,
            wall_us_jn,
        });
    }
    hlo_bench::rule(74);

    let total_j1: u64 = rows.iter().map(|r| r.wall_us_j1).sum();
    let total_jn: u64 = rows.iter().map(|r| r.wall_us_jn).sum();
    let speedup = total_j1 as f64 / total_jn.max(1) as f64;
    println!("total: {total_j1} us at jobs=1, {total_jn} us at jobs={jobs} ({speedup:.2}x)");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>9}",
        "stage", "j1 wall", "jN wall", "jN work", "parallel"
    );
    for s in &stages {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8.2}x",
            s.stage,
            s.wall_us_j1,
            s.wall_us_jn,
            s.work_us_jn,
            s.work_us_jn as f64 / s.wall_us_jn.max(1) as f64
        );
    }

    let json = render_json(jobs, all_identical, speedup, &rows, &stages);
    let path = "BENCH_parallel.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("perf: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("perf: PARALLEL OUTPUT DIVERGED from jobs=1 — see rows marked NO");
        ExitCode::FAILURE
    }
}

fn stage_row<'a>(stages: &'a mut Vec<StageRow>, name: &str) -> &'a mut StageRow {
    if let Some(i) = stages.iter().position(|s| s.stage == name) {
        return &mut stages[i];
    }
    stages.push(StageRow {
        stage: name.to_string(),
        ..Default::default()
    });
    stages.last_mut().expect("just pushed")
}

/// Hand-rolled JSON (the registry is offline; no serde). All strings here
/// are benchmark and stage names — `[0-9A-Za-z._]` — so no escaping is
/// needed beyond quoting.
fn render_json(
    jobs: usize,
    deterministic: bool,
    speedup: f64,
    rows: &[Row],
    stages: &[StageRow],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    let _ = writeln!(s, "  \"deterministic\": {deterministic},");
    let _ = writeln!(s, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"identical\": {}, \"compile_time_units\": {}, \
             \"operations\": {}, \"wall_us_jobs1\": {}, \"wall_us_jobsN\": {}}}{}",
            r.name,
            r.identical,
            r.compile_units,
            r.operations,
            r.wall_us_j1,
            r.wall_us_jn,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"stages\": [");
    for (i, st) in stages.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"stage\": \"{}\", \"wall_us_jobs1\": {}, \"wall_us_jobsN\": {}, \
             \"work_us_jobsN\": {}}}{}",
            st.stage,
            st.wall_us_j1,
            st.wall_us_jn,
            st.work_us_jn,
            if i + 1 < stages.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
