//! `ipabench` — interprocedural-analysis gains harness (`cargo ipabench`).
//!
//! Builds every suite program twice at whole-program scope — once with
//! `ipa off` (the pre-summary pipeline) and once with `ipa on` — and
//! reports what the summary stage bought per benchmark:
//!
//! * additional unused-result calls deleted because the callee's summary
//!   proved it removable (sites the syntactic purity test cannot unlock),
//! * call results folded to constants via return-constancy,
//! * cross-call store forwards / dead global stores under summary alias
//!   screening,
//! * inline sites unlocked (total inlines with summaries minus without —
//!   summary-deleted calls free budget, and the purity bonus re-ranks
//!   sites), and
//! * the wall-clock cost of the summary stage itself (the `ipa` leaf in
//!   the stage-timing tree, summed over every optimization pass).
//!
//! Results go to stdout and `BENCH_ipa.json`. The gate: the suite total
//! of summary-unlocked transformations must be strictly positive —
//! otherwise the stage is dead weight and the process exits non-zero.

use hlo::{HloOptions, HloReport};
use hlo_bench::{build, BuildKind};
use std::fmt::Write as _;
use std::process::ExitCode;

/// One benchmark's summary-stage gains.
struct Row {
    name: &'static str,
    pure_calls: u64,
    const_folds: u64,
    store_forwards: u64,
    inlines_off: u64,
    inlines_on: u64,
    ipa_wall_us: u64,
}

impl Row {
    /// Transformations only the summary stage could perform.
    fn unlocked(&self) -> u64 {
        self.pure_calls
            + self.const_folds
            + self.store_forwards
            + self.inlines_on.saturating_sub(self.inlines_off)
    }

    /// Signed inline delta (summaries can also *shrink* the inline count
    /// when a call is deleted outright before the inliner sees it).
    fn inline_delta(&self) -> i64 {
        self.inlines_on as i64 - self.inlines_off as i64
    }
}

/// Wall time of the `ipa` stage leaf, summed across passes.
fn ipa_wall_us(report: &HloReport) -> u64 {
    report
        .stage_timings
        .iter()
        .filter(|s| s.stage == "ipa")
        .map(|s| s.wall_us)
        .sum()
}

fn main() -> ExitCode {
    println!("ipabench: suite at ipa off vs ipa on (gate: unlocked transformations > 0)");
    println!(
        "{:<14} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "program", "pure", "consts", "forwards", "inl off", "inl on", "ipa(us)"
    );
    hlo_bench::rule(69);

    let opts = |ipa| HloOptions {
        ipa,
        ..Default::default()
    };
    let mut rows: Vec<Row> = Vec::new();
    for b in hlo_suite::all_benchmarks() {
        let off = build(&b, BuildKind::CrossProfile, opts(false));
        let on = build(&b, BuildKind::CrossProfile, opts(true));
        assert_eq!(
            off.report.ipa_pure_calls + off.report.ipa_const_folds + off.report.ipa_store_forwards,
            0,
            "{}: ipa off must not report summary-stage work",
            b.name
        );
        let row = Row {
            name: b.name,
            pure_calls: on.report.ipa_pure_calls,
            const_folds: on.report.ipa_const_folds,
            store_forwards: on.report.ipa_store_forwards,
            inlines_off: off.report.inlines,
            inlines_on: on.report.inlines,
            ipa_wall_us: ipa_wall_us(&on.report),
        };
        println!(
            "{:<14} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
            row.name,
            row.pure_calls,
            row.const_folds,
            row.store_forwards,
            row.inlines_off,
            row.inlines_on,
            row.ipa_wall_us
        );
        rows.push(row);
    }
    hlo_bench::rule(69);

    let unlocked: u64 = rows.iter().map(Row::unlocked).sum();
    let pure: u64 = rows.iter().map(|r| r.pure_calls).sum();
    let consts: u64 = rows.iter().map(|r| r.const_folds).sum();
    let forwards: u64 = rows.iter().map(|r| r.store_forwards).sum();
    let wall: u64 = rows.iter().map(|r| r.ipa_wall_us).sum();
    println!(
        "total: {unlocked} unlocked ({pure} pure calls, {consts} const folds, \
         {forwards} forwards), {wall} us in the summary stage"
    );

    let json = render_json(unlocked, wall, &rows);
    let path = "BENCH_ipa.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("ipabench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if unlocked > 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("ipabench: the summary stage unlocked NOTHING across the suite");
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (no serde in the offline registry). Benchmark names
/// are `[0-9A-Za-z._]` so quoting is the only escaping needed.
fn render_json(unlocked: u64, wall_us: u64, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"unlocked_total\": {unlocked},");
    let _ = writeln!(s, "  \"ipa_wall_us_total\": {wall_us},");
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"ipa_pure_calls\": {}, \"ipa_const_folds\": {}, \
             \"ipa_store_forwards\": {}, \"inlines_ipa_off\": {}, \"inlines_ipa_on\": {}, \
             \"inline_delta\": {}, \"ipa_wall_us\": {}}}{}",
            r.name,
            r.pure_calls,
            r.const_folds,
            r.store_forwards,
            r.inlines_off,
            r.inlines_on,
            r.inline_delta(),
            r.ipa_wall_us,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
