//! Figure 8: incremental benefit of inlines and clone replacements in
//! 022.li, at budget levels 25, 100, 200 and 1000.
//!
//! As in the paper's heuristic-validation experiment, the optimizer is
//! artificially stopped after its first k operations and the resulting
//! binary timed; a well-ordered heuristic yields a monotonically falling
//! curve that flattens once the useful operations are exhausted.

use hlo::HloOptions;
use hlo_bench::{build, measure, BuildKind};

const BUDGETS: [u64; 4] = [25, 100, 200, 1000];
const POINTS: u64 = 12;

fn main() {
    let b = hlo_suite::benchmark("022.li").expect("suite has 022.li");
    println!("Figure 8: incremental benefit of operations on 022.li");
    println!(
        "{:>7} {:>8} {:>14} {:>10}",
        "budget", "ops", "run(cycles)", "speedup"
    );
    hlo_bench::rule(44);
    for budget in BUDGETS {
        let opts = |max_ops| HloOptions {
            budget_percent: budget,
            max_ops,
            ..Default::default()
        };
        // Full build to learn how many operations this budget performs.
        let full = build(&b, BuildKind::CrossProfile, opts(None));
        let total_ops = full.report.operations();
        let base_cycles = {
            let r = build(&b, BuildKind::CrossProfile, opts(Some(0)));
            measure(&b, &r.program).cycles
        };
        let step = (total_ops / POINTS).max(1);
        let mut k = 0;
        loop {
            let r = build(&b, BuildKind::CrossProfile, opts(Some(k)));
            let cycles = measure(&b, &r.program).cycles;
            println!(
                "{:>7} {:>8} {:>14.0} {:>10.3}",
                budget,
                r.report.operations(),
                cycles,
                base_cycles / cycles
            );
            if k >= total_ops {
                break;
            }
            k = (k + step).min(total_ops);
        }
        hlo_bench::rule(44);
    }
    println!("(paper shape: curves fall steeply then flatten; budgets past");
    println!(" 100 add operations without further run-time benefit)");
}
