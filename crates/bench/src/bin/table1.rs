//! Table 1: inline and clone information for selected benchmarks.
//!
//! For each benchmark and each scope {-, c, p, cp} (base, cross-module,
//! profile, cross-module+profile): inlines, clones, clone-site
//! replacements, deletions, modeled compile time, and simulated run time
//! on the ref input.

use hlo::HloOptions;
use hlo_bench::{build, measure, BuildKind};

fn main() {
    println!("Table 1: inline and clone information (budget 100, 4 passes)");
    println!(
        "{:<14} {:>3} {:>8} {:>7} {:>7} {:>9} {:>12} {:>14}",
        "benchmark", "cfg", "inlines", "clones", "repls", "deletions", "compile(u)", "run(cycles)"
    );
    hlo_bench::rule(82);
    for b in hlo_suite::table1_benchmarks() {
        for kind in BuildKind::ALL {
            let r = build(&b, kind, HloOptions::default());
            let stats = measure(&b, &r.program);
            println!(
                "{:<14} {:>3} {:>8} {:>7} {:>7} {:>9} {:>12} {:>14.0}",
                b.name,
                kind.tag(),
                r.report.inlines,
                r.report.clones,
                r.report.clone_replacements,
                r.report.deletions,
                r.compile_units,
                stats.cycles
            );
        }
        hlo_bench::rule(82);
    }
    println!("cfg: '-' per-module, 'c' cross-module, 'p' profile, 'cp' both");
    println!("compile(u): sum-of-size^2 units; p/cp include instrumented compile + training run");
}
