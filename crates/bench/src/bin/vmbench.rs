//! `vmbench` — execution-tier speedup harness (`cargo vmbench`).
//!
//! Runs every suite benchmark on the ref input twice — once on the
//! tree-walking tier, once on the linear bytecode tier — and reports the
//! bytecode tier's speedup per benchmark and suite-wide. Both runs must
//! produce the *identical* outcome (return value, printed output,
//! checksum, retired count); any divergence is a correctness bug and
//! aborts the harness immediately.
//!
//! Bytecode compilation is amortized the way every real consumer uses it
//! (compile once, execute many): the compile step is timed separately and
//! reported per benchmark, not folded into execution time.
//!
//! Results go to stdout and `BENCH_vm.json`. The gate: the suite-wide
//! speedup (total tree wall time over total bytecode wall time) must be
//! at least `--min-speedup` (default 2) or the process exits non-zero.

use hlo_vm::{run_counted, BytecodeProgram, ExecOptions, NullMonitor};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One benchmark's tier timings, summed over `reps` identical runs.
struct Row {
    name: &'static str,
    ref_arg: i64,
    retired: u64,
    reps: u32,
    compile_us: u64,
    tree_us: u64,
    bytecode_us: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tree_us as f64 / self.bytecode_us.max(1) as f64
    }
}

/// Repetitions chosen so the slower (tree) side accumulates enough wall
/// time to be measured stably, without letting the big benchmarks run
/// for minutes.
fn reps_for(tree_once_us: u64) -> u32 {
    const TARGET_US: u64 = 200_000;
    (TARGET_US / tree_once_us.max(1)).clamp(2, 20) as u32
}

fn main() -> ExitCode {
    let min_speedup = match parse_min_speedup(std::env::args().skip(1)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("vmbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("vmbench: suite ref runs, tree vs bytecode tier (gate: speedup >= {min_speedup})");
    println!(
        "{:<14} {:>12} {:>4} {:>11} {:>12} {:>12} {:>8}",
        "program", "retired", "reps", "compile_us", "tree_us", "bytecode_us", "speedup"
    );
    hlo_bench::rule(79);

    let opts = ExecOptions::default();
    let mut rows: Vec<Row> = Vec::new();
    for b in hlo_suite::all_benchmarks() {
        let program = b.compile().expect("suite program compiles");
        let args = [b.ref_arg];

        let c0 = Instant::now();
        let bc = BytecodeProgram::compile(&program);
        let compile_us = c0.elapsed().as_micros() as u64;

        // One timed run per tier establishes the parity baseline and the
        // repetition count.
        let t0 = Instant::now();
        let tree = hlo_vm::run_program(&program, &args, &opts).expect("tree run");
        let tree_once_us = t0.elapsed().as_micros() as u64;
        let (bres, _dispatch) = run_counted(&bc, &program, &args, &opts, &mut NullMonitor);
        let byte = bres.expect("bytecode run");
        assert_eq!(
            (tree.ret, &tree.output, tree.checksum, tree.retired),
            (byte.ret, &byte.output, byte.checksum, byte.retired),
            "{}: tier outcomes diverge",
            b.name
        );

        let reps = reps_for(tree_once_us);
        let t0 = Instant::now();
        for _ in 0..reps {
            let out = hlo_vm::run_program(&program, &args, &opts).expect("tree run");
            assert_eq!(
                out.retired, tree.retired,
                "{}: nondeterministic run",
                b.name
            );
        }
        let tree_us = t0.elapsed().as_micros() as u64;
        let t0 = Instant::now();
        for _ in 0..reps {
            let (r, _) = run_counted(&bc, &program, &args, &opts, &mut NullMonitor);
            let out = r.expect("bytecode run");
            assert_eq!(
                out.retired, tree.retired,
                "{}: nondeterministic run",
                b.name
            );
        }
        let bytecode_us = t0.elapsed().as_micros() as u64;

        let row = Row {
            name: b.name,
            ref_arg: b.ref_arg,
            retired: tree.retired,
            reps,
            compile_us,
            tree_us,
            bytecode_us,
        };
        println!(
            "{:<14} {:>12} {:>4} {:>11} {:>12} {:>12} {:>7.2}x",
            row.name,
            row.retired,
            row.reps,
            row.compile_us,
            row.tree_us,
            row.bytecode_us,
            row.speedup()
        );
        rows.push(row);
    }
    hlo_bench::rule(79);

    let tree_total: u64 = rows.iter().map(|r| r.tree_us).sum();
    let byte_total: u64 = rows.iter().map(|r| r.bytecode_us).sum();
    let compile_total: u64 = rows.iter().map(|r| r.compile_us).sum();
    let speedup = tree_total as f64 / byte_total.max(1) as f64;
    println!(
        "total: tree {tree_total} us, bytecode {byte_total} us \
         (+{compile_total} us compiling), speedup {speedup:.2}x"
    );

    let json = render_json(speedup, tree_total, byte_total, compile_total, &rows);
    let path = "BENCH_vm.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("vmbench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if speedup >= min_speedup {
        ExitCode::SUCCESS
    } else {
        eprintln!("vmbench: suite-wide speedup {speedup:.2}x is below the {min_speedup}x gate");
        ExitCode::FAILURE
    }
}

/// Parses `[--min-speedup N]`, the only accepted argument.
fn parse_min_speedup(mut args: impl Iterator<Item = String>) -> Result<f64, String> {
    let mut min = 2.0;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-speedup" => {
                let v = args.next().ok_or("--min-speedup needs a value")?;
                min = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --min-speedup `{v}`"))?;
                if !min.is_finite() || min <= 0.0 {
                    return Err(format!("bad --min-speedup `{v}`"));
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(min)
}

/// Hand-rolled JSON (no serde in the offline registry). Benchmark names
/// are `[0-9A-Za-z._]` so quoting is the only escaping needed.
fn render_json(
    speedup: f64,
    tree_us: u64,
    bytecode_us: u64,
    compile_us: u64,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"speedup_total\": {speedup:.3},");
    let _ = writeln!(s, "  \"tree_us_total\": {tree_us},");
    let _ = writeln!(s, "  \"bytecode_us_total\": {bytecode_us},");
    let _ = writeln!(s, "  \"compile_us_total\": {compile_us},");
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"ref_arg\": {}, \"retired\": {}, \"reps\": {}, \
             \"compile_us\": {}, \"tree_us\": {}, \"bytecode_us\": {}, \"speedup\": {:.3}}}{}",
            r.name,
            r.ref_arg,
            r.retired,
            r.reps,
            r.compile_us,
            r.tree_us,
            r.bytecode_us,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
