//! Ablations of design choices DESIGN.md calls out:
//!
//! * **budget staging** — release everything in pass 1 vs the paper's
//!   staged apportioning;
//! * **cold-site penalty** — rank purely by frequency vs penalizing
//!   sites colder than their caller's entry;
//! * **clone-database reuse** — materialize duplicates vs reuse.
//!
//! Each ablation is compared on total operations, final code size and
//! simulated ref cycles across the Table 1 subset.

use hlo::HloOptions;
use hlo_bench::{build, geomean, measure, BuildKind};

struct Variant {
    name: &'static str,
    opts: fn() -> HloOptions,
}

const VARIANTS: [Variant; 5] = [
    Variant {
        name: "paper-default",
        opts: HloOptions::default,
    },
    Variant {
        name: "no-staging",
        opts: || HloOptions {
            stage_fractions: vec![1.0],
            ..Default::default()
        },
    },
    Variant {
        name: "no-cold-penalty",
        opts: || HloOptions {
            cold_site_penalty: false,
            ..Default::default()
        },
    },
    Variant {
        name: "no-clone-db",
        opts: || HloOptions {
            clone_db_reuse: false,
            ..Default::default()
        },
    },
    Variant {
        name: "with-outlining",
        opts: || HloOptions {
            enable_outline: true,
            ..Default::default()
        },
    },
];

fn main() {
    println!("Ablations (cp scope, budget 100, Table 1 subset)");
    println!(
        "{:<16} {:>7} {:>7} {:>12} {:>14} {:>9}",
        "variant", "inlines", "clones", "final cost", "cycles(geo)", "vs def"
    );
    hlo_bench::rule(70);
    let benchmarks = hlo_suite::table1_benchmarks();
    let mut default_geo = 1.0;
    for v in VARIANTS {
        let mut inlines = 0;
        let mut clones = 0;
        let mut cost = 0;
        let mut cycles = Vec::new();
        for b in &benchmarks {
            let r = build(b, BuildKind::CrossProfile, (v.opts)());
            inlines += r.report.inlines;
            clones += r.report.clones;
            cost += r.report.final_cost;
            cycles.push(measure(b, &r.program).cycles);
        }
        let geo = geomean(&cycles);
        if v.name == "paper-default" {
            default_geo = geo;
        }
        println!(
            "{:<16} {:>7} {:>7} {:>12} {:>14.0} {:>9.3}",
            v.name,
            inlines,
            clones,
            cost,
            geo,
            default_geo / geo
        );
    }
    hlo_bench::rule(70);
    println!("vs def > 1.0 means the variant is faster than the paper's default");
}
