//! `serve_bench` — the daemon-path gate (`cargo servebench`).
//!
//! Spawns an in-process `hlo-serve` daemon and replays all 14 suite
//! programs through it twice — cold, then warm — each with its trained
//! profile shipped over the wire. Three properties gate the run:
//!
//! 1. the daemon's cold output is **byte-identical** to a direct
//!    in-process `hlo::optimize` call with the same inputs;
//! 2. the warm replay is byte-identical to the cold one;
//! 3. the warm replay hits the cache on every program (100% hit rate —
//!    warm requests are pure lookups).
//!
//! Latencies and the hit rate are printed and written to
//! `BENCH_serve.json`. Warm speedup on this suite is large (lookups skip
//! the optimizer entirely) but the gate is identity, not speed.

use hlo::HloOptions;
use hlo_profile::collect_profile;
use hlo_serve::{Client, OptimizeRequest, ServeConfig, Server, SourceKind};
use hlo_vm::ExecOptions;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Row {
    name: &'static str,
    cold_identical: bool,
    warm_identical: bool,
    warm_hit: bool,
    cold_us: u64,
    warm_us: u64,
}

fn main() -> ExitCode {
    let server = match Server::spawn("127.0.0.1:0", ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: cannot spawn daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect to in-process daemon");

    println!("serve_bench: suite through hlod at {addr} (gate: byte-identity + warm hits)");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>5} {:>5}",
        "program", "cold(us)", "warm(us)", "speedup", "cold=", "warm="
    );
    hlo_bench::rule(62);

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for b in hlo_suite::all_benchmarks() {
        // Ground truth: the exact same inputs, optimized in-process.
        let baseline = b.compile().expect("suite program compiles");
        let (db, _) = collect_profile(&baseline, &[b.train_arg], &ExecOptions::default())
            .expect("training run");
        let profile_text = db.to_text();
        let opts = HloOptions::default();
        let mut expect_program = baseline;
        let _ = hlo::optimize(&mut expect_program, Some(&db), &opts);
        let expect_ir = hlo_ir::program_to_text(&expect_program);

        let req = OptimizeRequest {
            options: opts,
            source: SourceKind::Minc(
                b.sources
                    .iter()
                    .map(|(n, s)| (n.to_string(), s.to_string()))
                    .collect(),
            ),
            profile: Some(profile_text),
            train_arg: None,
            deadline_ms: None,
        };
        let t = Instant::now();
        let cold = client.optimize(&req).expect("cold request");
        let cold_us = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let warm = client.optimize(&req).expect("warm request");
        let warm_us = t.elapsed().as_micros() as u64;

        let row = Row {
            name: b.name,
            cold_identical: cold.ir_text == expect_ir && !cold.outcome.hit,
            warm_identical: warm.ir_text == cold.ir_text,
            warm_hit: warm.outcome.hit && warm.outcome.func_misses == 0,
            cold_us,
            warm_us,
        };
        ok &= row.cold_identical && row.warm_identical && row.warm_hit;
        println!(
            "{:<14} {:>12} {:>12} {:>7.1}x {:>5} {:>5}",
            row.name,
            row.cold_us,
            row.warm_us,
            row.cold_us as f64 / row.warm_us.max(1) as f64,
            if row.cold_identical { "yes" } else { "NO" },
            if row.warm_identical && row.warm_hit {
                "yes"
            } else {
                "NO"
            }
        );
        rows.push(row);
    }
    hlo_bench::rule(62);

    let stats = client.stats().expect("stats request");
    let hits_expected = rows.len() as u64;
    let hit_rate = stats.hits as f64 / hits_expected as f64;
    let cold_total: u64 = rows.iter().map(|r| r.cold_us).sum();
    let warm_total: u64 = rows.iter().map(|r| r.warm_us).sum();
    println!(
        "total: {cold_total} us cold, {warm_total} us warm ({:.1}x), warm hit rate {:.0}%",
        cold_total as f64 / warm_total.max(1) as f64,
        hit_rate * 100.0
    );
    ok &= stats.hits == hits_expected && stats.misses == hits_expected;

    client.shutdown().expect("shutdown");
    server.wait();

    let json = render_json(hit_rate, cold_total, warm_total, &rows);
    let path = "BENCH_serve.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("serve_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve_bench: IDENTITY OR HIT-RATE GATE FAILED — see rows marked NO");
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (the registry is offline; no serde). All strings are
/// benchmark names — `[0-9A-Za-z._]` — so quoting suffices.
fn render_json(hit_rate: f64, cold_total: u64, warm_total: u64, rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"warm_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(s, "  \"cold_total_us\": {cold_total},");
    let _ = writeln!(s, "  \"warm_total_us\": {warm_total},");
    let _ = writeln!(
        s,
        "  \"warm_speedup\": {:.4},",
        cold_total as f64 / warm_total.max(1) as f64
    );
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"cold_us\": {}, \"warm_us\": {}, \
             \"cold_identical\": {}, \"warm_identical\": {}, \"warm_hit\": {}}}{}",
            r.name,
            r.cold_us,
            r.warm_us,
            r.cold_identical,
            r.warm_identical,
            r.warm_hit,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
