//! `serve_bench` — the daemon-path gate (`cargo servebench`).
//!
//! Spawns an in-process `hlo-serve` daemon and replays all 14 suite
//! programs through it twice — cold, then warm — each with its trained
//! profile shipped over the wire. Three properties gate the run:
//!
//! 1. the daemon's cold output is **byte-identical** to a direct
//!    in-process `hlo::optimize` call with the same inputs;
//! 2. the warm replay is byte-identical to the cold one;
//! 3. the warm replay hits the cache on every program (100% hit rate —
//!    warm requests are pure lookups).
//!
//! Latencies and the hit rate are printed and written to
//! `BENCH_serve.json`. Warm speedup on this suite is large (lookups skip
//! the optimizer entirely) but the gate is identity, not speed.
//!
//! A fourth property gates the **edit-one-function** scenario: after a
//! single-constant edit to one module of a many-module program, the
//! daemon must splice every untouched partition from its store
//! (`partition_hits > 0`, `partition_rebuilds` below the partition
//! count), answer byte-identically to a from-scratch optimize at
//! `--jobs 1` and `--jobs 4`, and do it in at most half the cold
//! full-build latency.

use hlo::HloOptions;
use hlo_profile::collect_profile;
use hlo_serve::{
    mint_trace_id, Client, OptimizeRequest, ProfilePushRequest, ProfileSpec, ServeConfig, Server,
    SourceKind,
};
use hlo_vm::ExecOptions;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Row {
    name: &'static str,
    cold_identical: bool,
    warm_identical: bool,
    warm_hit: bool,
    cold_us: u64,
    warm_us: u64,
}

fn main() -> ExitCode {
    let server = match Server::spawn("127.0.0.1:0", ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: cannot spawn daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect to in-process daemon");

    println!("serve_bench: suite through hlod at {addr} (gate: byte-identity + warm hits)");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>5} {:>5}",
        "program", "cold(us)", "warm(us)", "speedup", "cold=", "warm="
    );
    hlo_bench::rule(62);

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for b in hlo_suite::all_benchmarks() {
        // Ground truth: the exact same inputs, optimized in-process.
        let baseline = b.compile().expect("suite program compiles");
        let (db, _) = collect_profile(&baseline, &[b.train_arg], &ExecOptions::default())
            .expect("training run");
        let profile_text = db.to_text();
        let opts = HloOptions::default();
        let mut expect_program = baseline;
        let _ = hlo::optimize(&mut expect_program, Some(&db), &opts);
        let expect_ir = hlo_ir::program_to_text(&expect_program);

        let req = OptimizeRequest {
            options: opts,
            source: SourceKind::Minc(
                b.sources
                    .iter()
                    .map(|(n, s)| (n.to_string(), s.to_string()))
                    .collect(),
            ),
            profile: ProfileSpec::Text(profile_text),
            train_arg: None,
            deadline_ms: None,
            trace_id: None,
        };
        let t = Instant::now();
        let cold = client.optimize(&req).expect("cold request");
        let cold_us = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let warm = client.optimize(&req).expect("warm request");
        let warm_us = t.elapsed().as_micros() as u64;

        let row = Row {
            name: b.name,
            cold_identical: cold.ir_text == expect_ir && !cold.outcome.hit,
            warm_identical: warm.ir_text == cold.ir_text,
            warm_hit: warm.outcome.hit && warm.outcome.func_misses == 0,
            cold_us,
            warm_us,
        };
        ok &= row.cold_identical && row.warm_identical && row.warm_hit;
        println!(
            "{:<14} {:>12} {:>12} {:>7.1}x {:>5} {:>5}",
            row.name,
            row.cold_us,
            row.warm_us,
            row.cold_us as f64 / row.warm_us.max(1) as f64,
            if row.cold_identical { "yes" } else { "NO" },
            if row.warm_identical && row.warm_hit {
                "yes"
            } else {
                "NO"
            }
        );
        rows.push(row);
    }
    hlo_bench::rule(62);

    let stats = client.stats().expect("stats request");
    let hits_expected = rows.len() as u64;
    let hit_rate = stats.hits as f64 / hits_expected as f64;
    let cold_total: u64 = rows.iter().map(|r| r.cold_us).sum();
    let warm_total: u64 = rows.iter().map(|r| r.warm_us).sum();
    println!(
        "total: {cold_total} us cold, {warm_total} us warm ({:.1}x), warm hit rate {:.0}%",
        cold_total as f64 / warm_total.max(1) as f64,
        hit_rate * 100.0
    );
    ok &= stats.hits == hits_expected && stats.misses == hits_expected;

    client.shutdown().expect("shutdown");
    server.wait();

    let restart_warm = restart_warmth_probe();
    println!(
        "restart warmth: {}",
        if restart_warm { "yes" } else { "NO" }
    );
    ok &= restart_warm;

    let observable = observability_probe();
    println!("observability: {}", if observable { "yes" } else { "NO" });
    ok &= observable;

    let (edits_ok, edit_rows) = warm_edit_probe();
    ok &= edits_ok;

    let json = render_json(
        hit_rate,
        cold_total,
        warm_total,
        restart_warm,
        &rows,
        &edit_rows,
    );
    let path = "BENCH_serve.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("serve_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve_bench: IDENTITY OR HIT-RATE GATE FAILED — see rows marked NO");
        ExitCode::FAILURE
    }
}

/// Restart-warmth: a daemon given `--pgo-store` must come back up with
/// the exact profile state it went down with. Push a trained profile,
/// read back the store, restart on the same path, and require the stats
/// and merged-profile text to be byte-identical — then a server-mode
/// build on the fresh daemon must equal an in-process optimize with that
/// persisted aggregate (cold cache, warm store).
fn restart_warmth_probe() -> bool {
    let b = &hlo_suite::all_benchmarks()[0];
    let dir = std::env::temp_dir().join(format!("hlo-servebench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create probe dir");
    let path = dir.join("pgo-store.txt");
    let cfg = || ServeConfig {
        pgo_store_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let sources: Vec<(String, String)> = b
        .sources
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let baseline = b.compile().expect("suite program compiles");
    let key = hlo_pgo::program_key(&baseline);
    let (db, _) =
        collect_profile(&baseline, &[b.train_arg], &ExecOptions::default()).expect("training run");

    // First life: register the program (any optimize does) and push.
    let server = Server::spawn("127.0.0.1:0", cfg()).expect("spawn first daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let req = OptimizeRequest::from_minc(sources);
    client.optimize(&req).expect("registering optimize");
    client
        .profile_push(&ProfilePushRequest {
            program: key.clone(),
            delta: db.to_text(),
            advance: 0,
        })
        .expect("push");
    let before = client.profile_stats(Some(&key)).expect("stats before");
    client.shutdown().expect("shutdown");
    server.wait();

    // Second life, same path: state must read back byte-identical, and a
    // server-mode build must use the persisted aggregate.
    let server = Server::spawn("127.0.0.1:0", cfg()).expect("spawn second daemon");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let after = client.profile_stats(Some(&key)).expect("stats after");
    let stats_identical = after.text == before.text && after.profile == before.profile;

    let mut expect = b.compile().expect("suite program compiles");
    let _ = hlo::optimize(&mut expect, Some(&db), &HloOptions::default());
    let expect_ir = hlo_ir::program_to_text(&expect);
    let mut sreq = req.clone();
    sreq.profile = ProfileSpec::Server;
    let resp = client.optimize(&sreq).expect("server-mode build");
    let build_warm = resp.ir_text == expect_ir;

    client.shutdown().expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&dir).ok();
    if !stats_identical {
        eprintln!("serve_bench: restarted store state is not byte-identical");
    }
    if !build_warm {
        eprintln!("serve_bench: post-restart server-mode build ignored the persisted profile");
    }
    stats_identical && build_warm
}

/// Observability probe: a traced request through a daemon whose slow
/// threshold is planted at 0 ms, so every request is "slow" and must
/// auto-dump the flight recorder. Gates: the daemon echoes the trace id,
/// the fetched trace's phases sum exactly to its reported wall time, the
/// flight dump names the request, and the daemon's event log saw the
/// planted slow request. The fetched Chrome JSON is written to
/// `BENCH_serve_trace.json` for CI to validate with `tier2 trace-schema`.
fn observability_probe() -> bool {
    let b = &hlo_suite::all_benchmarks()[0];
    let dir = std::env::temp_dir().join(format!("hlo-servebench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create probe dir");
    let log_path = dir.join("events.log");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            slow_ms: Some(0),
            event_log_path: Some(log_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn observed daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let id = mint_trace_id();
    let mut req = OptimizeRequest::from_minc(
        b.sources
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect(),
    );
    req.trace_id = Some(id.clone());
    let resp = client.optimize(&req).expect("traced request");
    let echoed = resp.trace_id.as_deref() == Some(id.as_str());

    let trace = client.trace_fetch(&id).expect("trace fetch");
    let phase_sum: u64 = trace.phases.iter().map(|(_, us)| us).sum();
    let phases_add_up = phase_sum == trace.wall_us && trace.wall_us > 0;
    let spans_named = trace.spans.contains(&format!("request:{id}"));
    if let Err(e) = std::fs::write("BENCH_serve_trace.json", &trace.chrome) {
        eprintln!("serve_bench: cannot write BENCH_serve_trace.json: {e}");
        return false;
    }
    println!("wrote BENCH_serve_trace.json");

    let (dump, admitted) = client.flight_dump().expect("flight dump");
    let flight_named = admitted > 0 && dump.contains(&format!("id={id}"));

    client.shutdown().expect("shutdown");
    server.wait();
    let log = std::fs::read_to_string(&log_path).unwrap_or_default();
    let slow_logged = log.contains("request.slow") && log.contains("flight.dump");
    std::fs::remove_dir_all(&dir).ok();

    for (what, got) in [
        ("trace id echoed", echoed),
        ("trace phases sum to wall time", phases_add_up),
        ("span tree names the request", spans_named),
        ("flight dump names the request", flight_named),
        ("planted slow request reached the event log", slow_logged),
    ] {
        if !got {
            eprintln!("serve_bench: observability gate failed: {what}");
        }
    }
    echoed && phases_add_up && spans_named && flight_named && slow_logged
}

/// One `--jobs` leg of the edit-one-function scenario.
struct EditRow {
    jobs: usize,
    cold_us: u64,
    warm_us: u64,
    partitions: u64,
    hits: u64,
    rebuilds: u64,
    identical: bool,
}

/// The synthetic many-module program for the edit scenario: `modules`
/// independent modules (distinct cache partitions under module scope),
/// each with a leaf, a loop over it, and an entry. `bumped` selects one
/// module whose leaf constant is edited.
fn edit_sources(modules: usize, bumped: Option<usize>) -> Vec<(String, String)> {
    (0..modules)
        .map(|m| {
            let k = if bumped == Some(m) { 9 } else { 7 };
            let src = format!(
                "static fn m{m}_leaf(x) {{ return x * 2 + {k}; }}
                 static fn m{m}_mid(x) {{ var s = 0;
                     for (var i = 0; i < 8; i = i + 1) {{ s = s + m{m}_leaf(x + i); }}
                     return s; }}
                 fn m{m}_entry(n) {{ return m{m}_mid(n) + m{m}_leaf(n); }}"
            );
            (format!("m{m}"), src)
        })
        .collect()
}

/// Edit-one-function: cold-build a 12-module program, edit one constant
/// in one module, and require the warm rebuild to splice (hits > 0,
/// rebuilds < partitions), match a from-scratch optimize byte-for-byte,
/// and land in at most half the cold latency — at `--jobs 1` and `4`. A
/// separate daemon per job count: `jobs` is deliberately outside the
/// cache fingerprint, so one daemon would serve the second leg from its
/// whole-program cache.
fn warm_edit_probe() -> (bool, Vec<EditRow>) {
    const MODULES: usize = 12;
    let base = edit_sources(MODULES, None);
    let edited = edit_sources(MODULES, Some(MODULES / 2));
    println!(
        "edit-one-function: 1 of {MODULES} modules edited (gate: splice + identity + <=0.5x cold)"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>6} {:>9} {:>5}",
        "jobs", "cold(us)", "edit(us)", "speedup", "hits", "rebuilds", "ok"
    );
    hlo_bench::rule(62);

    let mut ok = true;
    let mut rows = Vec::new();
    for jobs in [1usize, 4] {
        let opts = HloOptions {
            scope: hlo::Scope::WithinModule,
            jobs,
            ..HloOptions::default()
        };
        let truth = |srcs: &[(String, String)]| {
            let refs: Vec<(&str, &str)> =
                srcs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
            let mut p = hlo_frontc::compile(&refs).expect("edit program compiles");
            let _ = hlo::optimize(&mut p, None, &opts);
            hlo_ir::program_to_text(&p)
        };
        let request = |srcs: &[(String, String)]| OptimizeRequest {
            options: opts.clone(),
            source: SourceKind::Minc(srcs.to_vec()),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
            trace_id: None,
        };
        let server = Server::spawn("127.0.0.1:0", ServeConfig::default()).expect("spawn daemon");
        let mut client = Client::connect(server.local_addr()).expect("connect");

        let t = Instant::now();
        let cold = client.optimize(&request(&base)).expect("cold build");
        let cold_us = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let warm = client.optimize(&request(&edited)).expect("warm edit");
        let warm_us = t.elapsed().as_micros() as u64;
        client.shutdown().expect("shutdown");
        server.wait();

        let row = EditRow {
            jobs,
            cold_us,
            warm_us,
            partitions: cold.outcome.partition_rebuilds,
            hits: warm.outcome.partition_hits,
            rebuilds: warm.outcome.partition_rebuilds,
            identical: cold.ir_text == truth(&base) && warm.ir_text == truth(&edited),
        };
        let row_ok = row.identical
            && row.hits > 0
            && row.rebuilds < row.partitions
            && row.warm_us * 2 <= row.cold_us;
        ok &= row_ok;
        println!(
            "{:<6} {:>12} {:>12} {:>7.1}x {:>6} {:>9} {:>5}",
            row.jobs,
            row.cold_us,
            row.warm_us,
            row.cold_us as f64 / row.warm_us.max(1) as f64,
            row.hits,
            row.rebuilds,
            if row_ok { "yes" } else { "NO" }
        );
        rows.push(row);
    }
    if !ok {
        eprintln!("serve_bench: edit-one-function gate failed — see rows marked NO");
    }
    (ok, rows)
}

/// Hand-rolled JSON (the registry is offline; no serde). All strings are
/// benchmark names — `[0-9A-Za-z._]` — so quoting suffices.
fn render_json(
    hit_rate: f64,
    cold_total: u64,
    warm_total: u64,
    restart_warm: bool,
    rows: &[Row],
    edit_rows: &[EditRow],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"warm_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(s, "  \"restart_warm\": {restart_warm},");
    let _ = writeln!(s, "  \"cold_total_us\": {cold_total},");
    let _ = writeln!(s, "  \"warm_total_us\": {warm_total},");
    let _ = writeln!(
        s,
        "  \"warm_speedup\": {:.4},",
        cold_total as f64 / warm_total.max(1) as f64
    );
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"cold_us\": {}, \"warm_us\": {}, \
             \"cold_identical\": {}, \"warm_identical\": {}, \"warm_hit\": {}}}{}",
            r.name,
            r.cold_us,
            r.warm_us,
            r.cold_identical,
            r.warm_identical,
            r.warm_hit,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"warm_edit\": [");
    for (i, r) in edit_rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"jobs\": {}, \"cold_us\": {}, \"warm_us\": {}, \"partitions\": {}, \
             \"partition_hits\": {}, \"partition_rebuilds\": {}, \"identical\": {}}}{}",
            r.jobs,
            r.cold_us,
            r.warm_us,
            r.partitions,
            r.hits,
            r.rebuilds,
            r.identical,
            if i + 1 < edit_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
