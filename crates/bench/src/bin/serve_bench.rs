//! `serve_bench` — the daemon-path gate (`cargo servebench`).
//!
//! Spawns an in-process `hlo-serve` daemon and replays all 14 suite
//! programs through it twice — cold, then warm — each with its trained
//! profile shipped over the wire. Three properties gate the run:
//!
//! 1. the daemon's cold output is **byte-identical** to a direct
//!    in-process `hlo::optimize` call with the same inputs;
//! 2. the warm replay is byte-identical to the cold one;
//! 3. the warm replay hits the cache on every program (100% hit rate —
//!    warm requests are pure lookups).
//!
//! Latencies and the hit rate are printed and written to
//! `BENCH_serve.json`. Warm speedup on this suite is large (lookups skip
//! the optimizer entirely) but the gate is identity, not speed.

use hlo::HloOptions;
use hlo_profile::collect_profile;
use hlo_serve::{
    Client, OptimizeRequest, ProfilePushRequest, ProfileSpec, ServeConfig, Server, SourceKind,
};
use hlo_vm::ExecOptions;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Row {
    name: &'static str,
    cold_identical: bool,
    warm_identical: bool,
    warm_hit: bool,
    cold_us: u64,
    warm_us: u64,
}

fn main() -> ExitCode {
    let server = match Server::spawn("127.0.0.1:0", ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: cannot spawn daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect to in-process daemon");

    println!("serve_bench: suite through hlod at {addr} (gate: byte-identity + warm hits)");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>5} {:>5}",
        "program", "cold(us)", "warm(us)", "speedup", "cold=", "warm="
    );
    hlo_bench::rule(62);

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for b in hlo_suite::all_benchmarks() {
        // Ground truth: the exact same inputs, optimized in-process.
        let baseline = b.compile().expect("suite program compiles");
        let (db, _) = collect_profile(&baseline, &[b.train_arg], &ExecOptions::default())
            .expect("training run");
        let profile_text = db.to_text();
        let opts = HloOptions::default();
        let mut expect_program = baseline;
        let _ = hlo::optimize(&mut expect_program, Some(&db), &opts);
        let expect_ir = hlo_ir::program_to_text(&expect_program);

        let req = OptimizeRequest {
            options: opts,
            source: SourceKind::Minc(
                b.sources
                    .iter()
                    .map(|(n, s)| (n.to_string(), s.to_string()))
                    .collect(),
            ),
            profile: ProfileSpec::Text(profile_text),
            train_arg: None,
            deadline_ms: None,
        };
        let t = Instant::now();
        let cold = client.optimize(&req).expect("cold request");
        let cold_us = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let warm = client.optimize(&req).expect("warm request");
        let warm_us = t.elapsed().as_micros() as u64;

        let row = Row {
            name: b.name,
            cold_identical: cold.ir_text == expect_ir && !cold.outcome.hit,
            warm_identical: warm.ir_text == cold.ir_text,
            warm_hit: warm.outcome.hit && warm.outcome.func_misses == 0,
            cold_us,
            warm_us,
        };
        ok &= row.cold_identical && row.warm_identical && row.warm_hit;
        println!(
            "{:<14} {:>12} {:>12} {:>7.1}x {:>5} {:>5}",
            row.name,
            row.cold_us,
            row.warm_us,
            row.cold_us as f64 / row.warm_us.max(1) as f64,
            if row.cold_identical { "yes" } else { "NO" },
            if row.warm_identical && row.warm_hit {
                "yes"
            } else {
                "NO"
            }
        );
        rows.push(row);
    }
    hlo_bench::rule(62);

    let stats = client.stats().expect("stats request");
    let hits_expected = rows.len() as u64;
    let hit_rate = stats.hits as f64 / hits_expected as f64;
    let cold_total: u64 = rows.iter().map(|r| r.cold_us).sum();
    let warm_total: u64 = rows.iter().map(|r| r.warm_us).sum();
    println!(
        "total: {cold_total} us cold, {warm_total} us warm ({:.1}x), warm hit rate {:.0}%",
        cold_total as f64 / warm_total.max(1) as f64,
        hit_rate * 100.0
    );
    ok &= stats.hits == hits_expected && stats.misses == hits_expected;

    client.shutdown().expect("shutdown");
    server.wait();

    let restart_warm = restart_warmth_probe();
    println!(
        "restart warmth: {}",
        if restart_warm { "yes" } else { "NO" }
    );
    ok &= restart_warm;

    let json = render_json(hit_rate, cold_total, warm_total, restart_warm, &rows);
    let path = "BENCH_serve.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("serve_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve_bench: IDENTITY OR HIT-RATE GATE FAILED — see rows marked NO");
        ExitCode::FAILURE
    }
}

/// Restart-warmth: a daemon given `--pgo-store` must come back up with
/// the exact profile state it went down with. Push a trained profile,
/// read back the store, restart on the same path, and require the stats
/// and merged-profile text to be byte-identical — then a server-mode
/// build on the fresh daemon must equal an in-process optimize with that
/// persisted aggregate (cold cache, warm store).
fn restart_warmth_probe() -> bool {
    let b = &hlo_suite::all_benchmarks()[0];
    let dir = std::env::temp_dir().join(format!("hlo-servebench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create probe dir");
    let path = dir.join("pgo-store.txt");
    let cfg = || ServeConfig {
        pgo_store_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let sources: Vec<(String, String)> = b
        .sources
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let baseline = b.compile().expect("suite program compiles");
    let key = hlo_pgo::program_key(&baseline);
    let (db, _) =
        collect_profile(&baseline, &[b.train_arg], &ExecOptions::default()).expect("training run");

    // First life: register the program (any optimize does) and push.
    let server = Server::spawn("127.0.0.1:0", cfg()).expect("spawn first daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let req = OptimizeRequest::from_minc(sources);
    client.optimize(&req).expect("registering optimize");
    client
        .profile_push(&ProfilePushRequest {
            program: key.clone(),
            delta: db.to_text(),
            advance: 0,
        })
        .expect("push");
    let before = client.profile_stats(Some(&key)).expect("stats before");
    client.shutdown().expect("shutdown");
    server.wait();

    // Second life, same path: state must read back byte-identical, and a
    // server-mode build must use the persisted aggregate.
    let server = Server::spawn("127.0.0.1:0", cfg()).expect("spawn second daemon");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let after = client.profile_stats(Some(&key)).expect("stats after");
    let stats_identical = after.text == before.text && after.profile == before.profile;

    let mut expect = b.compile().expect("suite program compiles");
    let _ = hlo::optimize(&mut expect, Some(&db), &HloOptions::default());
    let expect_ir = hlo_ir::program_to_text(&expect);
    let mut sreq = req.clone();
    sreq.profile = ProfileSpec::Server;
    let resp = client.optimize(&sreq).expect("server-mode build");
    let build_warm = resp.ir_text == expect_ir;

    client.shutdown().expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&dir).ok();
    if !stats_identical {
        eprintln!("serve_bench: restarted store state is not byte-identical");
    }
    if !build_warm {
        eprintln!("serve_bench: post-restart server-mode build ignored the persisted profile");
    }
    stats_identical && build_warm
}

/// Hand-rolled JSON (the registry is offline; no serde). All strings are
/// benchmark names — `[0-9A-Za-z._]` — so quoting suffices.
fn render_json(
    hit_rate: f64,
    cold_total: u64,
    warm_total: u64,
    restart_warm: bool,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"warm_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(s, "  \"restart_warm\": {restart_warm},");
    let _ = writeln!(s, "  \"cold_total_us\": {cold_total},");
    let _ = writeln!(s, "  \"warm_total_us\": {warm_total},");
    let _ = writeln!(
        s,
        "  \"warm_speedup\": {:.4},",
        cold_total as f64 / warm_total.max(1) as f64
    );
    let _ = writeln!(s, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"cold_us\": {}, \"warm_us\": {}, \
             \"cold_identical\": {}, \"warm_identical\": {}, \"warm_hit\": {}}}{}",
            r.name,
            r.cold_us,
            r.warm_us,
            r.cold_identical,
            r.warm_identical,
            r.warm_hit,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
