//! Aggressive outlining — the paper's future work (§5): "using
//! aggressive outlining as a complement to aggressive inlining, to help
//! further focus the global optimizer on the truly important stretches of
//! code".
//!
//! The outliner extracts *cold, return-terminated regions*: a block whose
//! execution count is far below its function's entry count, entered from
//! hot code, from which every path stays cold and ends in a `ret`. The
//! region becomes a new routine and the head block becomes a call + ret.
//! Two benefits mirror the paper's motivation:
//!
//! * hot routines shrink, so the quadratic back-end budget (`Σ size²`)
//!   stretches further — outlining literally buys inlining budget;
//! * cold code leaves the hot code's cache lines (the layout places each
//!   function contiguously), improving I-cache behaviour.

use hlo_ir::{
    Block, BlockId, Callee, FuncId, FuncProfile, Function, Inst, Linkage, Operand, Program, Reg,
    Type,
};
use hlo_trace::{DecisionEvent, DecisionKind, Tracer, Verdict};

/// Options for an outlining pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlineOptions {
    /// A block is cold when `count <= cold_fraction * entry_count`.
    pub cold_fraction: f64,
    /// Regions needing more than this many live-in registers are skipped
    /// (they would produce absurd signatures).
    pub max_params: u32,
    /// Minimum instructions a region must contain to be worth a call.
    pub min_region_size: u64,
}

impl Default for OutlineOptions {
    fn default() -> Self {
        OutlineOptions {
            cold_fraction: 0.01,
            max_params: 6,
            min_region_size: 4,
        }
    }
}

/// Runs outlining over every function of `p`. Returns the number of
/// regions extracted.
pub fn outline_cold_regions(p: &mut Program, opts: &OutlineOptions) -> u64 {
    outline_cold_regions_traced(p, opts, &mut Tracer::disabled())
}

/// [`outline_cold_regions`] with decision provenance: every extracted
/// region emits an [`DecisionKind::Outline`] event whose site is the
/// region's head block and whose callee is the new cold routine.
pub fn outline_cold_regions_traced(
    p: &mut Program,
    opts: &OutlineOptions,
    tracer: &mut Tracer,
) -> u64 {
    let mut outlined = 0;
    let n = p.funcs.len();
    for fi in 0..n {
        let id = FuncId(fi as u32);
        // Do not outline from functions that are themselves dead husks.
        if !p.module(p.func(id).module).funcs.contains(&id) {
            continue;
        }
        outlined += outline_one(p, id, opts, tracer);
    }
    outlined
}

fn outline_one(p: &mut Program, id: FuncId, opts: &OutlineOptions, tracer: &mut Tracer) -> u64 {
    let mut count = 0;
    // Re-examine after each extraction (block ids stay valid: we only
    // rewrite the head block in place and append nothing to the old CFG).
    loop {
        let Some(region) = find_region(p.func(id), opts) else {
            return count;
        };
        let event = tracer.decisions_enabled().then(|| {
            let f = p.func(id);
            DecisionEvent {
                pass: 0,
                kind: DecisionKind::Outline,
                site: format!("{}@b{}", f.name, region.head.index()),
                callee: String::new(), // named after extraction
                verdict: Verdict::Performed,
                reason: "cold-region",
                benefit: region.blocks.len() as f64,
                cost: 0,
                budget_before: 0,
                budget_after: 0,
                profile_weight: f
                    .profile
                    .as_ref()
                    .map(|pr| pr.blocks[region.head.index()])
                    .unwrap_or(0.0),
            }
        });
        let out_id = extract(p, id, &region);
        if let Some(mut e) = event {
            e.callee = p.func(out_id).name.clone();
            tracer.decision(e);
        }
        count += 1;
    }
}

struct Region {
    head: BlockId,
    /// All blocks in the region, head first.
    blocks: Vec<BlockId>,
    /// Registers live into the head (the outlined function's params).
    live_in: Vec<Reg>,
}

fn find_region(f: &Function, opts: &OutlineOptions) -> Option<Region> {
    let profile = f.profile.as_ref()?;
    if profile.entry <= 0.0 {
        return None;
    }
    let cold = |b: BlockId| profile.blocks[b.index()] <= opts.cold_fraction * profile.entry;
    let preds = f.predecessors();

    'heads: for (head, _) in f.iter_blocks() {
        if head.index() == 0 || !cold(head) {
            continue;
        }
        // The head must be entered only from hot blocks (a boundary), so
        // extracting it cannot orphan other cold code.
        if preds[head.index()].is_empty() || preds[head.index()].iter().any(|&q| cold(q)) {
            continue;
        }
        // Collect the cold region reachable from head; every block must be
        // cold, stay in-region, and eventually ret. Reject loops back to
        // hot code or into the head.
        let mut blocks = vec![head];
        let mut seen = vec![false; f.blocks.len()];
        seen[head.index()] = true;
        let mut stack = vec![head];
        let mut size = 0u64;
        while let Some(b) = stack.pop() {
            let block = f.block(b);
            size += block.insts.len() as u64;
            for inst in &block.insts {
                // Caller-frame and dynamic-stack references pin the code
                // to its frame.
                if matches!(inst, Inst::FrameAddr { .. } | Inst::Alloca { .. }) {
                    continue 'heads;
                }
            }
            for s in block.successors() {
                if !cold(s) || s == head {
                    continue 'heads;
                }
                // Region blocks other than the head must not be reachable
                // from outside the region (single entry).
                if preds[s.index()].iter().any(|&q| !seen[q.index()] && q != b) {
                    // A predecessor not (yet) in the region: only legal if
                    // it will join the region later; be conservative.
                    continue 'heads;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    blocks.push(s);
                    stack.push(s);
                }
            }
            if block.successors().is_empty()
                && !matches!(block.insts.last(), Some(Inst::Ret { .. }))
            {
                continue 'heads;
            }
        }
        if size < opts.min_region_size {
            continue;
        }
        let live_in = region_live_in(f, &blocks);
        if live_in.len() as u32 > opts.max_params {
            continue;
        }
        return Some(Region {
            head,
            blocks,
            live_in,
        });
    }
    None
}

/// Registers possibly read within the region before being defined there.
///
/// Conservative: within the head block, a def kills later uses (straight
/// line); in every other region block any use counts (it may or may not
/// be dominated by an in-region def — passing a superfluous parameter is
/// harmless because such a use is preceded by a redefinition on every
/// path that reaches it).
fn region_live_in(f: &Function, blocks: &[BlockId]) -> Vec<Reg> {
    let mut live = Vec::new();
    for (pos, &b) in blocks.iter().enumerate() {
        let mut killed: Vec<Reg> = Vec::new();
        for inst in &f.block(b).insts {
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    let shadowed = pos == 0 && killed.contains(r);
                    if !shadowed && !live.contains(r) {
                        live.push(*r);
                    }
                }
            });
            if let Some(d) = inst.dst() {
                killed.push(d);
            }
        }
    }
    live.sort();
    live
}

fn extract(p: &mut Program, id: FuncId, region: &Region) -> FuncId {
    let f = p.func(id).clone();
    let name = p.fresh_func_name(&format!("{}.cold", f.name));

    // Build the outlined function: params = live-ins, body = region
    // blocks with registers remapped and block ids renumbered.
    let mut out = Function::new(name, f.module, region.live_in.len() as u32);
    out.linkage = Linkage::Static;
    out.ret = f.ret;
    out.flags = f.flags;
    // Register map: live-in i -> param i; other regs -> fresh.
    let mut reg_map: Vec<Option<Reg>> = vec![None; f.num_regs as usize];
    for (i, r) in region.live_in.iter().enumerate() {
        reg_map[r.index()] = Some(Reg(i as u32));
    }
    out.num_regs = region.live_in.len() as u32;
    let mut map_reg = |r: Reg, out: &mut Function| -> Reg {
        if let Some(m) = reg_map[r.index()] {
            m
        } else {
            let m = out.new_reg();
            reg_map[r.index()] = Some(m);
            m
        }
    };
    let mut block_map = vec![BlockId(0); f.blocks.len()];
    for (i, &b) in region.blocks.iter().enumerate() {
        block_map[b.index()] = BlockId(i as u32);
    }
    out.blocks.clear();
    let mut out_profile_blocks = Vec::new();
    for &b in &region.blocks {
        let mut nb = Block::new();
        for inst in &f.block(b).insts {
            let mut ni = inst.clone();
            if let Some(d) = ni.dst_mut() {
                *d = map_reg(*d, &mut out);
            }
            ni.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    *r = map_reg(*r, &mut out);
                }
            });
            ni.map_successors(|s| block_map[s.index()]);
            nb.insts.push(ni);
        }
        out.blocks.push(nb);
        if let Some(pr) = &f.profile {
            out_profile_blocks.push(pr.blocks[b.index()]);
        }
    }
    if let Some(pr) = &f.profile {
        out.profile = Some(FuncProfile {
            entry: pr.blocks[region.head.index()],
            blocks: out_profile_blocks,
        });
    }
    let out_id = p.push_function(out);

    // Rewrite the head block in the original: call + ret. Non-head region
    // blocks become unreachable; simplify_cfg collects them.
    let returns_value = f.ret != Type::Void;
    let caller = p.func_mut(id);
    let dst = returns_value.then(|| caller.new_reg());
    let args: Vec<Operand> = region.live_in.iter().map(|&r| Operand::Reg(r)).collect();
    let head = caller.block_mut(region.head);
    head.insts.clear();
    head.insts.push(Inst::Call {
        dst,
        callee: Callee::Func(out_id),
        args,
    });
    head.insts.push(Inst::Ret {
        value: dst.map(Operand::Reg),
    });
    out_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    /// A function with a hot loop and a cold error path that returns.
    fn program() -> Program {
        hlo_frontc::compile(&[(
            "m",
            r#"
            global errs;
            fn work(n, mode) {
                var s = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (mode == 77) {
                        // cold error path: several instructions, rets
                        errs = errs + 1;
                        var penalty = mode * 1000 + n;
                        penalty = penalty + errs * 3;
                        return 0 - penalty;
                    }
                    s = s + i * 2 + 1;
                }
                return s;
            }
            fn main() {
                var a = 0;
                for (var r = 0; r < 300; r = r + 1) { a = a + work(20, 1); }
                var b = work(5, 77);
                return a * 1000 + b;
            }
            "#,
        )])
        .unwrap()
    }

    fn annotate_from_training(p: &mut Program) {
        let (db, _) = hlo_profile::collect_profile(p, &[], &ExecOptions::default()).unwrap();
        hlo_profile::apply_profile(p, &db);
    }

    #[test]
    fn outlines_cold_return_path() {
        let mut p = program();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap();
        annotate_from_training(&mut p);
        let n = outline_cold_regions(&mut p, &OutlineOptions::default());
        assert!(n >= 1, "expected at least one outlined region");
        verify_program(&p).unwrap();
        let got = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(expect.ret, got.ret);
        assert_eq!(expect.checksum, got.checksum);
        assert!(
            p.iter_funcs().any(|(_, f)| f.name.contains(".cold")),
            "cold routine must exist"
        );
    }

    #[test]
    fn hot_function_shrinks() {
        let mut p = program();
        annotate_from_training(&mut p);
        let work = p.find_func("m", "work").unwrap();
        let before = p.func(work).size();
        outline_cold_regions(&mut p, &OutlineOptions::default());
        // After CFG cleanup the hot body is smaller.
        hlo_opt::optimize_function(p.func_mut(work));
        assert!(p.func(work).size() < before);
    }

    #[test]
    fn no_profile_means_no_outlining() {
        let mut p = program();
        assert_eq!(outline_cold_regions(&mut p, &OutlineOptions::default()), 0);
    }

    #[test]
    fn frame_touching_regions_are_skipped() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            fn f(n, mode) {
                var buf[4];
                var s = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (mode == 9) {
                        buf[0] = n;
                        buf[1] = buf[0] * 2;
                        return buf[1] + buf[0];
                    }
                    s = s + i;
                }
                return s;
            }
            fn main() { return f(100, 1) + f(3, 9); }
            "#,
        )])
        .unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        annotate_from_training(&mut p);
        let n = outline_cold_regions(&mut p, &OutlineOptions::default());
        assert_eq!(n, 0, "regions touching frame slots must not outline");
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn outlined_function_has_scaled_profile() {
        let mut p = program();
        annotate_from_training(&mut p);
        outline_cold_regions(&mut p, &OutlineOptions::default());
        let cold = p
            .iter_funcs()
            .find(|(_, f)| f.name.contains(".cold"))
            .map(|(i, _)| i)
            .unwrap();
        let prof = p.func(cold).profile.as_ref().unwrap();
        assert_eq!(prof.blocks.len(), p.func(cold).blocks.len());
    }
}
