//! The inlining pass (paper §2.4, Figure 4).

use crate::budget::Budget;
use crate::driver::HloOptions;
use crate::legality::inline_restriction;
use crate::transform::{inline_call, scale_profile};
use hlo_analysis::{CallGraph, CallSiteRef};
use hlo_ir::{FuncId, Program};
use std::collections::HashMap;

/// Result of one inlining pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InlinePassResult {
    /// Call sites inlined.
    pub inlines: u64,
    /// Viable sites discarded for budget reasons (they may be
    /// reconsidered next pass).
    pub deferred: u64,
}

/// Penalty multiplier for sites colder than their caller's entry (the
/// paper's guard against pushing register pressure into critical paths).
const COLD_SITE_PENALTY: f64 = 0.25;

/// Priority bonus for `#[inline]`-hinted callees (a user direction).
const HINT_BONUS: f64 = 4.0;

#[derive(Debug, Clone)]
struct Candidate {
    site: CallSiteRef,
    target: FuncId,
    merit: f64,
}

/// Runs one inlining pass under the stage budget.
///
/// Viable sites are ranked by a run-time figure of merit (site frequency,
/// with a cold-site penalty), then accepted greedily: each acceptance is
/// costed against a *schedule* kept in bottom-up call-graph order so that
/// cascaded inlines (B into A after C into B) are charged at B's grown
/// size, exactly as Figure 4 prescribes. Accepted inlines are then
/// performed in schedule order.
pub fn inline_pass(
    p: &mut Program,
    budget: &mut Budget,
    pass: usize,
    opts: &HloOptions,
    ops_left: &mut Option<u64>,
) -> InlinePassResult {
    let mut result = InlinePassResult::default();
    let cg = CallGraph::build(p);
    let sccs = cg.sccs();
    let mut scc_rank = vec![0usize; p.funcs.len()];
    for (i, comp) in sccs.iter().enumerate() {
        for &f in comp {
            scc_rank[f.index()] = i;
        }
    }

    // Screen and rank (Figure 4 "screen inline candidates").
    let mut candidates: Vec<Candidate> = Vec::new();
    for edge in &cg.edges {
        if inline_restriction(p, &edge.site, opts.scope).is_some() {
            continue;
        }
        let caller = p.func(edge.site.caller);
        let callee = p.func(edge.callee);
        let (site_cnt, entry_cnt) = match &caller.profile {
            Some(pr) => (pr.blocks[edge.site.block.index()], pr.entry),
            None => (1.0, 1.0),
        };
        let mut merit = site_cnt;
        if opts.cold_site_penalty && site_cnt < entry_cnt {
            merit *= COLD_SITE_PENALTY;
        }
        if callee.flags.inline_hint {
            merit *= HINT_BONUS;
        }
        candidates.push(Candidate {
            site: edge.site,
            target: edge.callee,
            merit,
        });
    }
    candidates.sort_by(|a, b| {
        b.merit
            .partial_cmp(&a.merit)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Greedy selection with cascaded cost over a bottom-up schedule
    // (Figure 4 "select inline sites").
    let base_cost = budget.current();
    let mut schedule: Vec<Candidate> = Vec::new();
    let mut accepted_delta: u64 = 0;
    let mut accepted_ops = 0u64;
    for cand in candidates {
        if let Some(left) = ops_left {
            if accepted_ops >= *left {
                break;
            }
        }
        let mut tentative: Vec<&Candidate> = schedule.iter().collect();
        tentative.push(&cand);
        // Bottom-up order: deepest sources first, so a callee's own
        // accepted inlines are counted before it is spliced elsewhere.
        tentative.sort_by_key(|c| scc_rank[c.site.caller.index()]);
        let delta = schedule_cost_delta(p, &tentative);
        if base_cost.saturating_add(delta) <= budget.stage_limit(pass) {
            schedule.push(cand);
            accepted_delta = delta;
            accepted_ops += 1;
        } else {
            result.deferred += 1;
        }
    }
    if let Some(left) = ops_left {
        *left -= accepted_ops.min(*left);
    }
    budget.charge(accepted_delta);

    // Perform in bottom-up order (Figure 4 "perform inlines"), fixing the
    // coordinates of later sites that shared the split block.
    schedule.sort_by_key(|c| scc_rank[c.site.caller.index()]);
    let mut i = 0;
    while i < schedule.len() {
        let cand = schedule[i].clone();
        let splice = inline_call(p, &cand.site);
        result.inlines += 1;
        // Deduct the moved executions from the callee's surviving profile.
        let callee_entry = p.func(cand.target).entry_count().unwrap_or(0.0);
        if callee_entry > 0.0 {
            let keep = ((callee_entry - splice.site_count) / callee_entry).max(0.0);
            scale_profile(&mut p.func_mut(cand.target).profile, keep);
        }
        for later in schedule.iter_mut().skip(i + 1) {
            if later.site.caller == cand.site.caller
                && later.site.block == splice.split_block
                && later.site.inst > splice.call_index
            {
                later.site.block = splice.continuation;
                later.site.inst -= splice.call_index + 1;
            }
        }
        i += 1;
    }

    // Re-optimize the callers that grew (Figure 4 "optimize inlines"),
    // then recalibrate from measured sizes.
    let mut touched: HashMap<FuncId, ()> = HashMap::new();
    for c in &schedule {
        touched.entry(c.site.caller).or_insert(());
    }
    for (f, _) in touched {
        hlo_opt::optimize_function(p.func_mut(f));
    }
    budget.recalibrate(p.compile_cost());

    result
}

/// Total compile-cost increase of performing `schedule` (bottom-up order),
/// accounting for cascading: inlining t into s uses t's *effective* size
/// after t's own earlier scheduled inlines.
fn schedule_cost_delta(p: &Program, schedule: &[&Candidate]) -> u64 {
    let mut eff: HashMap<FuncId, u64> = HashMap::new();
    let size_of = |f: FuncId, eff: &HashMap<FuncId, u64>| -> u64 {
        eff.get(&f).copied().unwrap_or_else(|| p.func(f).size())
    };
    for c in schedule {
        let s = size_of(c.site.caller, &eff);
        let t = size_of(c.target, &eff);
        eff.insert(c.site.caller, s + t);
    }
    let mut delta = 0u64;
    for (f, new_size) in &eff {
        let old = p.func(*f).size();
        delta += new_size * new_size;
        delta = delta.saturating_sub(old * old);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    fn annotate(p: &mut Program) {
        for f in &mut p.funcs {
            if f.profile.is_none() {
                f.profile = Some(hlo_analysis::estimate_static_profile(f));
            }
        }
    }

    fn run_pass(p: &mut Program, budget_pct: u64) -> InlinePassResult {
        annotate(p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, budget_pct, &[1.0]);
        inline_pass(p, &mut budget, 0, &HloOptions::default(), &mut None)
    }

    #[test]
    fn inlines_simple_call_and_preserves_semantics() {
        let src = &[(
            "m",
            "fn sq(x) { return x * x; } fn main() { return sq(9) + sq(2); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 500);
        assert!(r.inlines >= 2, "{r:?}");
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn hot_sites_win_under_tight_budget() {
        // Two big callees; only one fits. The one called in a loop must be
        // chosen.
        let src = &[(
            "m",
            r#"
            fn hot(x) { var s = 0; if (x > 1) { s = x * 3; } else { s = x + 1; }
                        if (s > 10) { s = s - 10; } return s; }
            fn cold(x) { var s = 0; if (x > 1) { s = x * 5; } else { s = x + 2; }
                         if (s > 10) { s = s - 9; } return s; }
            fn main() {
                var acc = 0;
                for (var i = 0; i < 50; i = i + 1) { acc = acc + hot(i); }
                if (acc < 0) { acc = acc + cold(3); }
                return acc;
            }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        // Budget that fits roughly one medium inline but not both.
        let mut budget = Budget::new(c0, 100, &[1.0]);
        let r = inline_pass(&mut p, &mut budget, 0, &HloOptions::default(), &mut None);
        assert!(r.inlines >= 1);
        assert!(r.deferred >= 1, "{r:?}");
        // `hot` must no longer be called from main's loop.
        verify_program(&p).unwrap();
        let main = p.entry.unwrap();
        let hot = p.find_func("m", "hot").unwrap();
        let cg = CallGraph::build(&p);
        let hot_calls_from_main = cg
            .edges
            .iter()
            .filter(|e| e.site.caller == main && e.callee == hot)
            .count();
        assert_eq!(hot_calls_from_main, 0);
    }

    #[test]
    fn cascaded_inlines_abc() {
        // c into b, then b into a — the schedule must handle the cascade.
        let src = &[(
            "m",
            r#"
            fn c(x) { return x + 1; }
            fn b(x) { return c(x) * 2; }
            fn a(x) { return b(x) + 3; }
            fn main() { return a(5); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 2000);
        assert!(r.inlines >= 3, "{r:?}");
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn two_sites_same_block_both_inline() {
        let src = &[(
            "m",
            "fn f(x) { return x + 7; } fn main() { return f(1) * f(2); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 2000);
        assert_eq!(r.inlines, 2);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn mutual_recursion_inlines_once_without_hanging() {
        let src = &[(
            "m",
            r#"
            fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            fn main() { return even(10) * 10 + odd(7); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 400);
        assert!(r.inlines >= 1);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn ops_limit_caps_acceptances() {
        let src = &[(
            "m",
            "fn f(x) { return x + 1; } fn main() { return f(1) + f(2) + f(3) + f(4); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 5000, &[1.0]);
        let mut ops = Some(2u64);
        let r = inline_pass(&mut p, &mut budget, 0, &HloOptions::default(), &mut ops);
        assert_eq!(r.inlines, 2);
        assert_eq!(ops, Some(0));
        verify_program(&p).unwrap();
    }

    #[test]
    fn zero_budget_inlines_nothing() {
        let src = &[("m", "fn f(x) { return x + 1; } fn main() { return f(1); }")];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 0, &[1.0]);
        let r = inline_pass(&mut p, &mut budget, 0, &HloOptions::default(), &mut None);
        assert_eq!(r.inlines, 0);
        assert_eq!(r.deferred, 1);
    }

    #[test]
    fn inlined_body_folds_with_constant_arguments() {
        // After inlining f(3), the scalar optimizer must fold everything.
        let src = &[(
            "m",
            "fn f(x) { return x * x + 1; } fn main() { return f(3); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        run_pass(&mut p, 2000);
        let main = p.entry.unwrap();
        assert_eq!(p.func(main).size(), 1, "{}", p.func(main));
    }
}
