//! The inlining pass (paper §2.4, Figure 4), partitioned for the
//! parallel pipeline.
//!
//! Inlining never crosses a weakly connected component of the direct-call
//! graph, so the pass splits the program into call-graph *partitions*
//! (independent condensation subtrees), hands each a proportional share of
//! the stage-budget headroom, and plans them concurrently. Planning is
//! read-only; the accepted schedules are then performed sequentially in
//! partition order and the budget is charged once at the barrier, so
//! [`hlo_ir::Program::compile_cost`] accounting — and therefore every
//! decision — is byte-identical at any worker count. A program whose live
//! code is one component (the common case: everything reachable from
//! `main`) forms a single partition that receives the full headroom, which
//! reproduces the unpartitioned algorithm exactly.

use crate::budget::Budget;
use crate::driver::HloOptions;
use crate::legality::inline_restriction;
use crate::par::{effective_jobs, par_funcs_mut, par_map};
use crate::transform::{inline_call, scale_profile};
use hlo_analysis::{CallGraphCache, CallSiteRef};
use hlo_ir::{FuncId, Program};
use hlo_trace::{DecisionEvent, DecisionKind, Tracer, Verdict};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The canonical site spelling used by decision provenance and the
/// `--explain` filter: `caller@bBLOCK.iINST`.
pub(crate) fn site_str(p: &Program, site: &CallSiteRef) -> String {
    format!(
        "{}@b{}.i{}",
        p.func(site.caller).name,
        site.block.index(),
        site.inst
    )
}

/// Result of one inlining pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InlinePassResult {
    /// Call sites inlined.
    pub inlines: u64,
    /// Viable sites discarded for budget reasons (they may be
    /// reconsidered next pass).
    pub deferred: u64,
    /// Wall-clock time of screening + per-partition planning.
    pub plan_wall: Duration,
    /// Cumulative planning work summed over workers.
    pub plan_work: Duration,
    /// Wall-clock time of splicing + caller re-optimization.
    pub apply_wall: Duration,
    /// Cumulative apply work summed over workers.
    pub apply_work: Duration,
}

/// Penalty multiplier for sites colder than their caller's entry (the
/// paper's guard against pushing register pressure into critical paths).
const COLD_SITE_PENALTY: f64 = 0.25;

/// Priority bonus for `#[inline]`-hinted callees (a user direction).
const HINT_BONUS: f64 = 4.0;

/// Merit multiplier for callees whose `hlo-ipa` summary proves them
/// removable: splicing a pure body exposes its computation to CSE,
/// constant propagation and dead-code elimination with no effect ordering
/// to respect, so such inlines fold further than the raw frequency
/// predicts. Shared with the cloning pass's benefit ranking.
pub(crate) const IPA_PURE_BONUS: f64 = 1.5;

#[derive(Debug, Clone)]
struct Candidate {
    site: CallSiteRef,
    target: FuncId,
    merit: f64,
    /// The site block's raw profile count (the pre-penalty weight,
    /// reported in decision provenance).
    weight: f64,
}

/// One partition's screened candidates plus its slice of the stage budget.
struct PartitionTask {
    candidates: Vec<Candidate>,
    cost: u64,
    share: u64,
}

/// What one partition's planner decided.
struct PartitionPlan {
    schedule: Vec<Candidate>,
    delta: u64,
    deferred: u64,
    ops: u64,
    /// Decision provenance, built on the (read-only) planning workers and
    /// absorbed into the tracer sequentially at the barrier.
    events: Vec<DecisionEvent>,
}

/// Runs one inlining pass under the stage budget.
///
/// Viable sites are screened per call-graph partition, ranked by a
/// run-time figure of merit (site frequency, with a cold-site penalty),
/// then accepted greedily against the partition's budget share: each
/// acceptance is costed against a *schedule* kept in bottom-up call-graph
/// order so that cascaded inlines (B into A after C into B) are charged at
/// B's grown size, exactly as Figure 4 prescribes. Partition planning runs
/// on the worker pool unless the Figure 8 operation cap is active (a
/// global sequential counter). Accepted inlines are then performed in
/// partition order, schedule order within each.
#[allow(clippy::too_many_arguments)] // mirrors the pass plumbing
pub fn inline_pass(
    p: &mut Program,
    budget: &mut Budget,
    pass: usize,
    opts: &HloOptions,
    mask: Option<&[bool]>,
    ops_left: &mut Option<u64>,
    cache: &mut CallGraphCache,
    tracer: &mut Tracer,
) -> InlinePassResult {
    let mut result = InlinePassResult::default();
    let jobs = effective_jobs(opts.jobs);
    let explain = tracer.decisions_enabled();
    let plan_start = Instant::now();

    // Screen candidates partition by partition (Figure 4 "screen inline
    // candidates"). All screening data is copied out so the call-graph
    // borrow ends before any mutation.
    let (scc_rank, mut tasks) = {
        let cg = cache.graph(p);
        // Interprocedural facts sharpen screening (frame-escape blocks a
        // splice) and ranking (pure callees fold further once inlined).
        let summaries = opts.ipa.then(|| hlo_ipa::Summaries::compute(p, cg));
        let sccs = cg.sccs();
        let mut scc_rank = vec![0usize; p.funcs.len()];
        for (i, comp) in sccs.iter().enumerate() {
            for &f in comp {
                scc_rank[f.index()] = i;
            }
        }
        let mut tasks: Vec<PartitionTask> = Vec::new();
        for part in cg.partitions() {
            // Under a cache-partition mask, plan only the live components
            // inside the active partition. A live component never straddles
            // two cache partitions (direct edges don't cross them), so
            // checking one member covers all of them.
            if let Some(m) = mask {
                if !m.get(part.funcs[0].index()).copied().unwrap_or(false) {
                    continue;
                }
                debug_assert!(part
                    .funcs
                    .iter()
                    .all(|&f| m.get(f.index()).copied().unwrap_or(false)));
            }
            let mut candidates: Vec<Candidate> = Vec::new();
            for &ei in &part.edge_indices {
                let edge = &cg.edges[ei];
                let caller = p.func(edge.site.caller);
                let site_cnt = match &caller.profile {
                    Some(pr) => pr.blocks[edge.site.block.index()],
                    None => 1.0,
                };
                if let Some(r) = inline_restriction(p, &edge.site, opts.scope) {
                    if explain {
                        tracer.decision(DecisionEvent {
                            pass: pass as u32,
                            kind: DecisionKind::Inline,
                            site: site_str(p, &edge.site),
                            callee: p.func(edge.callee).name.clone(),
                            verdict: Verdict::Rejected,
                            reason: r.code(),
                            benefit: 0.0,
                            cost: 0,
                            budget_before: 0,
                            budget_after: 0,
                            profile_weight: site_cnt,
                        });
                    }
                    continue;
                }
                // Interprocedural screening: a callee that leaks its own
                // frame address must not have its frame merged into the
                // caller's — the escaped address would outlive (and alias)
                // differently after the splice.
                if let Some(s) = &summaries {
                    if s.funcs[edge.callee.index()].leaks_frame {
                        if explain {
                            tracer.decision(DecisionEvent {
                                pass: pass as u32,
                                kind: DecisionKind::Inline,
                                site: site_str(p, &edge.site),
                                callee: p.func(edge.callee).name.clone(),
                                verdict: Verdict::Rejected,
                                reason: "ipa-escape-blocked",
                                benefit: 0.0,
                                cost: 0,
                                budget_before: 0,
                                budget_after: 0,
                                profile_weight: site_cnt,
                            });
                        }
                        continue;
                    }
                }
                let callee = p.func(edge.callee);
                let entry_cnt = caller.profile.as_ref().map_or(1.0, |pr| pr.entry);
                let mut merit = site_cnt;
                if opts.cold_site_penalty && site_cnt < entry_cnt {
                    merit *= COLD_SITE_PENALTY;
                }
                if callee.flags.inline_hint {
                    merit *= HINT_BONUS;
                }
                if summaries
                    .as_ref()
                    .is_some_and(|s| s.funcs[edge.callee.index()].removable())
                {
                    merit *= IPA_PURE_BONUS;
                }
                candidates.push(Candidate {
                    site: edge.site,
                    target: edge.callee,
                    merit,
                    weight: site_cnt,
                });
            }
            if candidates.is_empty() {
                continue;
            }
            let cost: u64 = part
                .funcs
                .iter()
                .map(|&f| {
                    let s = p.func(f).size();
                    s * s
                })
                .sum();
            tasks.push(PartitionTask {
                candidates,
                cost,
                share: 0,
            });
        }
        (scc_rank, tasks)
    };

    // Split the stage headroom proportionally to partition compile cost.
    // Shares floor-divide, so their sum never exceeds the headroom; one
    // active partition gets it all (the unpartitioned behaviour).
    let headroom = budget.stage_limit(pass).saturating_sub(budget.current());
    let total_cost: u64 = tasks.iter().map(|t| t.cost).sum();
    for t in &mut tasks {
        t.share = ((headroom as u128 * t.cost as u128) / total_cost.max(1) as u128) as u64;
    }
    let screen_elapsed = plan_start.elapsed();

    // Plan: greedy selection with cascaded cost over a bottom-up schedule
    // (Figure 4 "select inline sites"), one planner per partition.
    let par_start = Instant::now();
    let (mut plans, par_work): (Vec<PartitionPlan>, Duration) = match ops_left {
        Some(left) => {
            // The Figure 8 operation cap is a single global counter, so
            // partitions plan sequentially in partition order, sharing it.
            let mut remaining = *left;
            let mut plans = Vec::with_capacity(tasks.len());
            for t in &tasks {
                let plan = plan_partition(
                    p,
                    &scc_rank,
                    &t.candidates,
                    t.share,
                    Some(remaining),
                    pass as u32,
                    explain,
                );
                remaining -= plan.ops.min(remaining);
                plans.push(plan);
            }
            *ops_left = Some(remaining);
            (plans, par_start.elapsed())
        }
        None => {
            let out = par_map(jobs, &tasks, |_, t| {
                plan_partition(
                    p,
                    &scc_rank,
                    &t.candidates,
                    t.share,
                    None,
                    pass as u32,
                    explain,
                )
            });
            (out.results, out.work)
        }
    };
    result.plan_wall = screen_elapsed + par_start.elapsed();
    result.plan_work = screen_elapsed + par_work;

    // Barrier: reconcile the partition plans against the one budget, and
    // absorb the workers' decision provenance in partition order (the same
    // order a sequential run would emit it).
    let mut total_delta = 0u64;
    for plan in &plans {
        total_delta += plan.delta;
        result.deferred += plan.deferred;
    }
    budget.charge(total_delta);
    if explain {
        for plan in &mut plans {
            for e in plan.events.drain(..) {
                tracer.decision(e);
            }
        }
    }

    // Perform in partition order, bottom-up within each (Figure 4
    // "perform inlines"), fixing the coordinates of later sites that
    // shared the split block. Splicing is sequential — it appends no
    // functions but rewrites caller bodies — and stays deterministic
    // because partition order is.
    let apply_start = Instant::now();
    let mut touched: Vec<FuncId> = Vec::new();
    for plan in plans {
        let mut schedule = plan.schedule;
        schedule.sort_by_key(|c| scc_rank[c.site.caller.index()]);
        let mut i = 0;
        while i < schedule.len() {
            let cand = schedule[i].clone();
            let splice = inline_call(p, &cand.site);
            result.inlines += 1;
            // Deduct the moved executions from the callee's surviving
            // profile.
            let callee_entry = p.func(cand.target).entry_count().unwrap_or(0.0);
            if callee_entry > 0.0 {
                let keep = ((callee_entry - splice.site_count) / callee_entry).max(0.0);
                scale_profile(&mut p.func_mut(cand.target).profile, keep);
            }
            for later in schedule.iter_mut().skip(i + 1) {
                if later.site.caller == cand.site.caller
                    && later.site.block == splice.split_block
                    && later.site.inst > splice.call_index
                {
                    later.site.block = splice.continuation;
                    later.site.inst -= splice.call_index + 1;
                }
            }
            i += 1;
        }
        for c in &schedule {
            touched.push(c.site.caller);
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let splice_elapsed = apply_start.elapsed();

    // Re-optimize the callers that grew (Figure 4 "optimize inlines") on
    // the worker pool, then recalibrate from measured sizes. Each touched
    // caller's cached call-graph scan is stale now.
    let reopt_start = Instant::now();
    let out = par_funcs_mut(jobs, p, &touched, |_, f| hlo_opt::optimize_function(f));
    for &f in &touched {
        cache.invalidate(f);
    }
    // Under a mask the budget tracks only the active partition's cost.
    budget.recalibrate(match mask {
        Some(m) => crate::driver::masked_cost(p, m),
        None => p.compile_cost(),
    });
    result.apply_wall = splice_elapsed + reopt_start.elapsed();
    result.apply_work = splice_elapsed + out.work;

    result
}

/// Greedy planner for one partition: rank by merit, accept while the
/// cascaded schedule delta stays within the partition's budget share.
fn plan_partition(
    p: &Program,
    scc_rank: &[usize],
    candidates: &[Candidate],
    share: u64,
    ops_cap: Option<u64>,
    pass: u32,
    explain: bool,
) -> PartitionPlan {
    let mut ranked: Vec<Candidate> = candidates.to_vec();
    ranked.sort_by(|a, b| {
        b.merit
            .partial_cmp(&a.merit)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut plan = PartitionPlan {
        schedule: Vec::new(),
        delta: 0,
        deferred: 0,
        ops: 0,
        events: Vec::new(),
    };
    for cand in ranked {
        if let Some(cap) = ops_cap {
            if plan.ops >= cap {
                break;
            }
        }
        let mut tentative: Vec<&Candidate> = plan.schedule.iter().collect();
        tentative.push(&cand);
        // Bottom-up order: deepest sources first, so a callee's own
        // accepted inlines are counted before it is spliced elsewhere.
        tentative.sort_by_key(|c| scc_rank[c.site.caller.index()]);
        let delta = schedule_cost_delta(p, &tentative);
        let accepted = delta <= share;
        if explain {
            // Budget state is the partition's remaining headroom share;
            // the cost is the cascaded delta this one decision adds.
            plan.events.push(DecisionEvent {
                pass,
                kind: DecisionKind::Inline,
                site: site_str(p, &cand.site),
                callee: p.func(cand.target).name.clone(),
                verdict: if accepted {
                    Verdict::Performed
                } else {
                    Verdict::Deferred
                },
                reason: if accepted {
                    "accepted"
                } else {
                    "budget-deferred"
                },
                benefit: cand.merit,
                cost: delta.saturating_sub(plan.delta),
                budget_before: share.saturating_sub(plan.delta),
                budget_after: share.saturating_sub(if accepted { delta } else { plan.delta }),
                profile_weight: cand.weight,
            });
        }
        if accepted {
            plan.schedule.push(cand);
            plan.delta = delta;
            plan.ops += 1;
        } else {
            plan.deferred += 1;
        }
    }
    plan
}

/// Total compile-cost increase of performing `schedule` (bottom-up order),
/// accounting for cascading: inlining t into s uses t's *effective* size
/// after t's own earlier scheduled inlines.
fn schedule_cost_delta(p: &Program, schedule: &[&Candidate]) -> u64 {
    let mut eff: HashMap<FuncId, u64> = HashMap::new();
    let size_of = |f: FuncId, eff: &HashMap<FuncId, u64>| -> u64 {
        eff.get(&f).copied().unwrap_or_else(|| p.func(f).size())
    };
    for c in schedule {
        let s = size_of(c.site.caller, &eff);
        let t = size_of(c.target, &eff);
        eff.insert(c.site.caller, s + t);
    }
    let mut delta = 0u64;
    for (f, new_size) in &eff {
        let old = p.func(*f).size();
        delta += new_size * new_size;
        delta = delta.saturating_sub(old * old);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_analysis::CallGraph;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    fn annotate(p: &mut Program) {
        for f in &mut p.funcs {
            if f.profile.is_none() {
                f.profile = Some(hlo_analysis::estimate_static_profile(f));
            }
        }
    }

    fn run_pass(p: &mut Program, budget_pct: u64) -> InlinePassResult {
        annotate(p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, budget_pct, &[1.0]);
        let mut cache = CallGraphCache::new();
        inline_pass(
            p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        )
    }

    #[test]
    fn inlines_simple_call_and_preserves_semantics() {
        let src = &[(
            "m",
            "fn sq(x) { return x * x; } fn main() { return sq(9) + sq(2); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 500);
        assert!(r.inlines >= 2, "{r:?}");
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn hot_sites_win_under_tight_budget() {
        // Two big callees; only one fits. The one called in a loop must be
        // chosen.
        let src = &[(
            "m",
            r#"
            fn hot(x) { var s = 0; if (x > 1) { s = x * 3; } else { s = x + 1; }
                        if (s > 10) { s = s - 10; } return s; }
            fn cold(x) { var s = 0; if (x > 1) { s = x * 5; } else { s = x + 2; }
                         if (s > 10) { s = s - 9; } return s; }
            fn main() {
                var acc = 0;
                for (var i = 0; i < 50; i = i + 1) { acc = acc + hot(i); }
                if (acc < 0) { acc = acc + cold(3); }
                return acc;
            }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        // Budget that fits roughly one medium inline but not both.
        let mut budget = Budget::new(c0, 100, &[1.0]);
        let mut cache = CallGraphCache::new();
        let r = inline_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert!(r.inlines >= 1);
        assert!(r.deferred >= 1, "{r:?}");
        // `hot` must no longer be called from main's loop.
        verify_program(&p).unwrap();
        let main = p.entry.unwrap();
        let hot = p.find_func("m", "hot").unwrap();
        let cg = CallGraph::build(&p);
        let hot_calls_from_main = cg
            .edges
            .iter()
            .filter(|e| e.site.caller == main && e.callee == hot)
            .count();
        assert_eq!(hot_calls_from_main, 0);
    }

    #[test]
    fn cascaded_inlines_abc() {
        // c into b, then b into a — the schedule must handle the cascade.
        let src = &[(
            "m",
            r#"
            fn c(x) { return x + 1; }
            fn b(x) { return c(x) * 2; }
            fn a(x) { return b(x) + 3; }
            fn main() { return a(5); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 2000);
        assert!(r.inlines >= 3, "{r:?}");
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn two_sites_same_block_both_inline() {
        let src = &[(
            "m",
            "fn f(x) { return x + 7; } fn main() { return f(1) * f(2); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 2000);
        assert_eq!(r.inlines, 2);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn mutual_recursion_inlines_once_without_hanging() {
        let src = &[(
            "m",
            r#"
            fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            fn main() { return even(10) * 10 + odd(7); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_pass(&mut p, 400);
        assert!(r.inlines >= 1);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn ops_limit_caps_acceptances() {
        let src = &[(
            "m",
            "fn f(x) { return x + 1; } fn main() { return f(1) + f(2) + f(3) + f(4); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 5000, &[1.0]);
        let mut ops = Some(2u64);
        let mut cache = CallGraphCache::new();
        let r = inline_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut ops,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert_eq!(r.inlines, 2);
        assert_eq!(ops, Some(0));
        verify_program(&p).unwrap();
    }

    #[test]
    fn zero_budget_inlines_nothing() {
        let src = &[("m", "fn f(x) { return x + 1; } fn main() { return f(1); }")];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 0, &[1.0]);
        let mut cache = CallGraphCache::new();
        let r = inline_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert_eq!(r.inlines, 0);
        assert_eq!(r.deferred, 1);
    }

    #[test]
    fn inlined_body_folds_with_constant_arguments() {
        // After inlining f(3), the scalar optimizer must fold everything.
        let src = &[(
            "m",
            "fn f(x) { return x * x + 1; } fn main() { return f(3); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        run_pass(&mut p, 2000);
        let main = p.entry.unwrap();
        assert_eq!(p.func(main).size(), 1, "{}", p.func(main));
    }

    #[test]
    fn disjoint_islands_plan_independently_and_identically() {
        // Two call islands (main's and an address-escaped helper chain
        // that stays reachable). The pass must inline in both, and the
        // result must not depend on the job count.
        let src = &[(
            "m",
            r#"
            fn tiny(x) { return x + 1; }
            fn island() { return tiny(1) + tiny(2); }
            fn main() { var f = &island; return f(); }
            "#,
        )];
        let p0 = {
            let mut p = hlo_frontc::compile(src).unwrap();
            annotate(&mut p);
            p
        };
        let mut outs: Vec<String> = Vec::new();
        for jobs in [1usize, 4] {
            let mut p = p0.clone();
            let c0 = p.compile_cost();
            let mut budget = Budget::new(c0, 1000, &[1.0]);
            let mut cache = CallGraphCache::new();
            let opts = HloOptions {
                jobs,
                ..Default::default()
            };
            let r = inline_pass(
                &mut p,
                &mut budget,
                0,
                &opts,
                None,
                &mut None,
                &mut cache,
                &mut Tracer::disabled(),
            );
            assert!(r.inlines >= 2, "{r:?}");
            verify_program(&p).unwrap();
            outs.push(hlo_ir::program_to_text(&p));
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn passes_reuse_the_cached_call_graph() {
        let src = &[(
            "m",
            "fn f(x) { return x + 1; } fn main() { return f(1) + f(2); }",
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 2000, &[1.0, 1.0]);
        let mut cache = CallGraphCache::new();
        inline_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        let scans_after_first = cache.rescans();
        inline_pass(
            &mut p,
            &mut budget,
            1,
            &HloOptions::default(),
            None,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        // The second pass re-scanned only the invalidated caller (main),
        // not the whole program.
        assert!(
            cache.rescans() - scans_after_first <= 1,
            "rescans {} -> {}",
            scans_after_first,
            cache.rescans()
        );
    }
}
