//! The two code transformations: inline splicing and clone creation.

use crate::cloner::CloneSpec;
use hlo_analysis::CallSiteRef;
use hlo_ir::{
    Block, BlockId, Callee, ConstVal, FuncId, FuncProfile, Inst, Linkage, Operand, Program, Reg,
    SlotId,
};

/// Description of one performed inline, used by the pass to fix the
/// coordinates of other pending sites in the same caller and to scale
/// profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InlineSplice {
    /// Block that contained the call (it now ends with a jump into the
    /// spliced body).
    pub split_block: BlockId,
    /// Index the call instruction occupied in `split_block`.
    pub call_index: usize,
    /// Block that received the instructions that followed the call.
    pub continuation: BlockId,
    /// Execution count attributed to the site (for profile bookkeeping).
    pub site_count: f64,
}

/// Splices the body of the direct callee at `site` into the caller.
///
/// The callee's registers, frame slots and blocks are renumbered into the
/// caller's spaces; parameter passing becomes register copies; every
/// `ret` becomes a copy of the return value (if the caller wanted one)
/// plus a jump to the continuation block. Block-frequency annotations are
/// extended: the spliced blocks receive the callee's relative profile
/// scaled to the site's execution count.
///
/// # Panics
/// Panics if `site` does not name a direct call — the pass must have
/// screened the site with [`crate::inline_restriction`] first.
pub fn inline_call(p: &mut Program, site: &CallSiteRef) -> InlineSplice {
    // Fetch and validate the call.
    let (target, args, dst) = {
        let inst = &p.func(site.caller).blocks[site.block.index()].insts[site.inst];
        match inst {
            Inst::Call {
                dst,
                callee: Callee::Func(t),
                args,
            } => (*t, args.clone(), *dst),
            other => panic!("inline_call on non-direct-call instruction {other}"),
        }
    };
    assert_ne!(target, site.caller, "direct self-inline is not supported");
    let callee = p.func(target).clone();

    let caller = p.func_mut(site.caller);
    let site_count = caller
        .profile
        .as_ref()
        .map(|pr| pr.blocks[site.block.index()])
        .unwrap_or(1.0);

    let reg_base = caller.num_regs;
    caller.num_regs += callee.num_regs;
    let slot_base = caller.slots.len() as u32;
    caller.slots.extend_from_slice(&callee.slots);
    let block_base = caller.blocks.len() as u32;
    let continuation = BlockId(block_base + callee.blocks.len() as u32);

    // Copy elision: a parameter the callee never redefines can read its
    // argument operand directly, with no copy — unless the argument is
    // the very register the call result overwrites (`x = f(x)`).
    let mut param_written = vec![false; callee.params as usize];
    for b in &callee.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.dst() {
                if d.0 < callee.params {
                    param_written[d.index()] = true;
                }
            }
        }
    }
    let mut subst: Vec<Option<Operand>> = vec![None; callee.params as usize];
    for i in 0..callee.params as usize {
        if param_written[i] {
            continue;
        }
        let arg = args.get(i).copied().unwrap_or(Operand::imm(0));
        let clobbered = matches!((arg, dst), (Operand::Reg(r), Some(d)) if r == d);
        if !clobbered {
            subst[i] = Some(arg);
        }
    }

    // Split the call block.
    let split = &mut caller.blocks[site.block.index()];
    let tail: Vec<Inst> = split.insts.split_off(site.inst + 1);
    split.insts.pop().expect("call instruction present");
    for i in 0..callee.params {
        if subst[i as usize].is_some() {
            continue;
        }
        let src = args.get(i as usize).copied().unwrap_or(Operand::imm(0));
        split.insts.push(Inst::Copy {
            dst: Reg(reg_base + i),
            src,
        });
    }
    split.insts.push(Inst::Jump {
        target: BlockId(block_base),
    });

    // Splice the callee body.
    let mut fault_pending = crate::fault::armed();
    for cb in &callee.blocks {
        let mut nb = Block::new();
        for inst in &cb.insts {
            let mut ni = inst.clone();
            if let Some(d) = ni.dst_mut() {
                *d = Reg(d.0 + reg_base);
            }
            ni.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    match subst.get(r.index()).copied().flatten() {
                        Some(replacement) => *op = replacement,
                        None => *r = Reg(r.0 + reg_base),
                    }
                }
            });
            match ni {
                Inst::Ret { value } => {
                    if let Some(d) = dst {
                        nb.insts.push(Inst::Copy {
                            dst: d,
                            src: value.unwrap_or(Operand::imm(0)),
                        });
                    }
                    nb.insts.push(Inst::Jump {
                        target: continuation,
                    });
                }
                Inst::FrameAddr { dst, slot } => {
                    nb.insts.push(Inst::FrameAddr {
                        dst,
                        slot: SlotId(slot.0 + slot_base),
                    });
                }
                mut other => {
                    if fault_pending {
                        if let Inst::Bin { op, .. } = &mut other {
                            if *op == hlo_ir::BinOp::Add {
                                *op = hlo_ir::BinOp::Sub;
                                fault_pending = false;
                            }
                        }
                    }
                    other.map_successors(|s| BlockId(s.0 + block_base));
                    nb.insts.push(other);
                }
            }
        }
        caller.blocks.push(nb);
    }
    caller.blocks.push(Block { insts: tail });

    // Extend the caller's profile over the new blocks.
    if let Some(pr) = &mut caller.profile {
        let scale = match &callee.profile {
            Some(cp) if cp.entry > 0.0 => site_count / cp.entry,
            _ => 0.0,
        };
        for (i, _) in callee.blocks.iter().enumerate() {
            let c = match &callee.profile {
                Some(cp) if cp.entry > 0.0 => cp.blocks[i] * scale,
                _ => site_count,
            };
            pr.blocks.push(c);
        }
        pr.blocks.push(site_count); // continuation
    }

    InlineSplice {
        split_block: site.block,
        call_index: site.inst,
        continuation,
        site_count,
    }
}

/// Materializes a clone of `spec.callee` with the spec's parameters bound
/// to constants in the entry block (paper §2.3). Returns the new function.
///
/// The clone lands in the clonee's module with `Static` linkage and a
/// fresh `<name>.clone[.N]` name. Module-static symbols referenced by the
/// bound constants from *other* modules are promoted to public scope with
/// unique names, exactly as the paper describes for cross-module cloning.
pub fn make_clone(p: &mut Program, spec: &CloneSpec) -> FuncId {
    let orig = p.func(spec.callee).clone();
    let params = orig.params;
    debug_assert!(spec.bindings.windows(2).all(|w| w[0].0 < w[1].0));
    let bound: Vec<bool> = (0..params).map(|i| spec.binding(i).is_some()).collect();
    let unbound: Vec<u32> = (0..params).filter(|&i| !bound[i as usize]).collect();

    // Permute the parameter registers: unbound params become the new
    // parameters 0..k, bound ones become ordinary registers after them.
    let mut perm: Vec<u32> = (0..orig.num_regs).collect();
    for (k, &op) in unbound.iter().enumerate() {
        perm[op as usize] = k as u32;
    }
    for (j, (bp, _)) in spec.bindings.iter().enumerate() {
        perm[*bp as usize] = (unbound.len() + j) as u32;
    }

    let mut clone = orig.clone();
    clone.remap_regs(|r| Reg(perm[r.index()]));
    for (j, (_, value)) in spec.bindings.iter().enumerate().rev() {
        clone.blocks[0].insts.insert(
            0,
            Inst::Const {
                dst: Reg((unbound.len() + j) as u32),
                value: *value,
            },
        );
    }
    clone.params = unbound.len() as u32;
    clone.name = p.fresh_func_name(&format!("{}.clone", orig.name));
    clone.linkage = Linkage::Static;
    // The inserted constants belong to the entry block; keep the profile
    // annotation shape intact (the pass rescales values afterwards).
    if let Some(pr) = &mut clone.profile {
        debug_assert_eq!(pr.blocks.len(), clone.blocks.len());
    }

    // Promote module-static symbols that the bound constants make visible
    // outside their module.
    let clone_module = clone.module;
    for (_, value) in &spec.bindings {
        match value {
            ConstVal::FuncAddr(f) => {
                let fun = p.func(*f);
                if fun.linkage == Linkage::Static && fun.module != clone_module {
                    let fresh = p.fresh_func_name(&format!("{}.promoted", fun.name));
                    let fun = p.func_mut(*f);
                    fun.linkage = Linkage::Public;
                    fun.name = fresh;
                }
            }
            ConstVal::GlobalAddr(g)
                if p.global(*g).linkage == Linkage::Static
                    && p.global(*g).module != clone_module =>
            {
                let fresh = format!("{}.promoted.{}", p.global(*g).name, g.0);
                let gl = &mut p.globals[g.index()];
                gl.linkage = Linkage::Public;
                gl.name = fresh;
            }
            _ => {}
        }
    }

    p.push_function(clone)
}

/// Rewrites the direct call at `site` to target `clone`, dropping the
/// actuals the spec bound ("parameters incorporated into the clone are
/// edited from the actuals list").
///
/// # Panics
/// Panics if `site` is not a direct call to the spec's callee.
pub fn redirect_site_to_clone(
    p: &mut Program,
    site: &CallSiteRef,
    spec: &CloneSpec,
    clone: FuncId,
) {
    let inst = &mut p.funcs[site.caller.index()].blocks[site.block.index()].insts[site.inst];
    match inst {
        Inst::Call { callee, args, .. } => {
            assert_eq!(
                *callee,
                Callee::Func(spec.callee),
                "redirect_site_to_clone on a site that does not call the clonee"
            );
            let kept: Vec<Operand> = args
                .iter()
                .enumerate()
                .filter(|(i, _)| spec.binding(*i as u32).is_none())
                .map(|(_, a)| *a)
                .collect();
            *args = kept;
            *callee = Callee::Func(clone);
        }
        other => panic!("redirect_site_to_clone on non-call {other}"),
    }
}

/// Scales a function's profile by `factor` (used to split counts between
/// a clonee and its clones, and to deduct inlined executions).
pub(crate) fn scale_profile(profile: &mut Option<FuncProfile>, factor: f64) {
    if let Some(pr) = profile {
        let f = factor.max(0.0);
        pr.entry *= f;
        for b in &mut pr.blocks {
            *b *= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_analysis::CallGraph;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    fn first_site(p: &Program, caller: &str, callee: &str) -> CallSiteRef {
        let cg = CallGraph::build(p);
        let callee_id = p
            .iter_funcs()
            .find(|(_, f)| f.name == callee)
            .map(|(i, _)| i)
            .unwrap();
        cg.edges
            .iter()
            .find(|e| p.func(e.site.caller).name == caller && e.callee == callee_id)
            .unwrap()
            .site
    }

    #[test]
    fn inline_preserves_semantics() {
        let src = &[(
            "m",
            r#"
            fn mix(a, b) { if (a > b) { return a * 2; } return b + 3; }
            fn main() { return mix(10, 4) * 100 + mix(1, 5); }
            "#,
        )];
        let p0 = hlo_frontc::compile(src).unwrap();
        let before = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        let s = first_site(&p, "main", "mix");
        inline_call(&mut p, &s);
        verify_program(&p).unwrap();
        let after = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        // one call fewer at run time
        assert!(after.retired != before.retired);
    }

    #[test]
    fn inline_both_sites_sequentially() {
        let src = &[(
            "m",
            r#"
            fn f(x) { return x + 7; }
            fn main() { return f(1) + f(2); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        // Inline the second site first, then the first (order-robustness).
        let cg = CallGraph::build(&p);
        let sites: Vec<_> = cg.edges.iter().map(|e| e.site).collect();
        assert_eq!(sites.len(), 2);
        let (s0, s1) = (sites[0], sites[1]);
        let splice = inline_call(&mut p, &s1);
        let _ = splice;
        // s0 is before s1 in the same block, so its coordinates survive.
        inline_call(&mut p, &s0);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn inline_updates_later_site_coordinates() {
        let src = &[(
            "m",
            r#"
            fn f(x) { return x + 7; }
            fn main() { return f(1) + f(2); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let cg = CallGraph::build(&p);
        let sites: Vec<_> = cg.edges.iter().map(|e| e.site).collect();
        let (s0, mut s1) = (sites[0], sites[1]);
        let sp = inline_call(&mut p, &s0);
        // apply the coordinate-shift rule for a later site in the block
        assert_eq!(s1.block, sp.split_block);
        assert!(s1.inst > sp.call_index);
        s1.block = sp.continuation;
        s1.inst -= sp.call_index + 1;
        inline_call(&mut p, &s1);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn inline_void_callee() {
        let src = &[(
            "m",
            r#"
            global g;
            fn bump(x) { g = g + x; }
            fn main() { g = 0; bump(4); bump(5); return g; }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let s = first_site(&p, "main", "bump");
        inline_call(&mut p, &s);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            9
        );
    }

    #[test]
    fn inline_callee_with_frame_slots() {
        let src = &[(
            "m",
            r#"
            fn tab(x) { var t[4]; t[0] = x; t[1] = x * 2; return t[0] + t[1]; }
            fn main() { var u[2]; u[0] = 5; return tab(u[0]); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let s = first_site(&p, "main", "tab");
        inline_call(&mut p, &s);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            15
        );
    }

    #[test]
    fn inline_extends_profile_in_lockstep() {
        let src = &[("m", "fn f(x) { return x + 1; } fn main() { return f(3); }")];
        let mut p = hlo_frontc::compile(src).unwrap();
        for f in &mut p.funcs {
            let n = f.blocks.len();
            f.profile = Some(FuncProfile::flat(10.0, n));
        }
        let s = first_site(&p, "main", "f");
        inline_call(&mut p, &s);
        let main = p.entry.unwrap();
        let mf = p.func(main);
        assert_eq!(mf.profile.as_ref().unwrap().blocks.len(), mf.blocks.len());
    }

    #[test]
    fn clone_binds_constants_and_preserves_semantics() {
        let src = &[(
            "m",
            r#"
            fn poly(k, x) { if (k == 0) { return x; } return x * k + 1; }
            fn main() { return poly(3, 5) + poly(3, 7); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let callee = p.find_func("m", "poly").unwrap();
        let spec = CloneSpec {
            callee,
            bindings: vec![(0, ConstVal::int(3))],
        };
        let clone = make_clone(&mut p, &spec);
        assert_eq!(p.func(clone).params, 1);
        assert_eq!(p.func(clone).linkage, Linkage::Static);
        assert!(p.func(clone).name.contains("clone"));
        let cg = CallGraph::build(&p);
        let sites: Vec<_> = cg
            .edges
            .iter()
            .filter(|e| e.callee == callee)
            .map(|e| e.site)
            .collect();
        for s in &sites {
            redirect_site_to_clone(&mut p, s, &spec, clone);
        }
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn clone_with_function_pointer_binding_promotes_statics() {
        let a = r#"
            static fn secret(x) { return x * 3; }
            fn main() { return apply(&secret, 7); }
        "#;
        let b = r#"
            fn apply(f, x) { return f(x); }
        "#;
        let mut p = hlo_frontc::compile(&[("a", a), ("b", b)]).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let secret = p
            .iter_funcs()
            .find(|(_, f)| f.name == "secret")
            .map(|(i, _)| i)
            .unwrap();
        let apply = p.find_func("b", "apply").unwrap();
        let spec = CloneSpec {
            callee: apply,
            bindings: vec![(0, ConstVal::FuncAddr(secret))],
        };
        let clone = make_clone(&mut p, &spec);
        // The clone lives in apply's module (b) and references `secret`
        // which was static to module a: it must have been promoted.
        assert_eq!(p.func(clone).module, p.func(apply).module);
        assert_eq!(p.func(secret).linkage, Linkage::Public);
        assert!(p.func(secret).name.contains("promoted"));
        let s = first_site(&p, "main", "apply");
        redirect_site_to_clone(&mut p, &s, &spec, clone);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn clone_binding_multiple_params() {
        let src = &[(
            "m",
            r#"
            fn f(a, b, c) { return a * 100 + b * 10 + c; }
            fn main() { return f(1, 2, 3); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let callee = p.find_func("m", "f").unwrap();
        let spec = CloneSpec {
            callee,
            bindings: vec![(0, ConstVal::int(1)), (2, ConstVal::int(3))],
        };
        let clone = make_clone(&mut p, &spec);
        assert_eq!(p.func(clone).params, 1);
        let s = first_site(&p, "main", "f");
        redirect_site_to_clone(&mut p, &s, &spec, clone);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            123
        );
    }

    #[test]
    fn scale_profile_clamps_and_scales() {
        let mut pr = Some(FuncProfile {
            entry: 10.0,
            blocks: vec![10.0, 4.0],
        });
        scale_profile(&mut pr, 0.5);
        let p = pr.as_ref().unwrap();
        assert_eq!(p.entry, 5.0);
        assert_eq!(p.blocks, vec![5.0, 2.0]);
        scale_profile(&mut pr, -1.0);
        assert_eq!(pr.as_ref().unwrap().entry, 0.0);
    }
}
