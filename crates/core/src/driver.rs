//! The multi-pass driver (paper §2.2, Figure 2), parallel edition.
//!
//! One [`CallGraphCache`] is shared across every stage of the pipeline, so
//! passes re-scan only the functions they actually edited. Per-function
//! stages (frequency annotation, scalar cleanup) and per-partition stages
//! (inline/clone planning) fan out over the [`crate::par`] worker pool;
//! everything that allocates `FuncId`s or charges the budget stays
//! sequential, which is why the output is byte-identical at any
//! [`HloOptions::jobs`] value.

use crate::budget::BudgetSet;
use crate::cloner::{clone_pass, CloneDb};
use crate::delete::delete_unreachable_masked;
use crate::inliner::inline_pass;
use crate::par::{effective_jobs, par_map_funcs};
use crate::report::{HloReport, PassReport, StageTiming};
use hlo_analysis::{estimate_static_profile, CallGraphCache, CallGraphPartition};
use hlo_ir::{FuncId, FuncProfile, Function, Linkage, Program};
use hlo_lint::{CheckLevel, Checker};
use hlo_profile::{apply_profile, ProfileDb};
use hlo_trace::{DecisionEvent, DecisionKind, TraceLevel, Tracer, Verdict};
use std::time::Instant;

/// Compilation visibility: the paper's per-module path vs the link-time
/// ("isom") whole-program path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Each transformation stays within one module; unused public
    /// routines must be kept (other modules might call them).
    WithinModule,
    /// Whole-program: cross-module inlining/cloning, interprocedural
    /// side-effect deletion, and deletion of unused public routines.
    CrossModule,
}

/// Options controlling an [`optimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct HloOptions {
    /// Visibility scope.
    pub scope: Scope,
    /// Budget percentage: allowed compile-time increase. The paper's
    /// default is 100 (Figure 8 sweeps 25–1000).
    pub budget_percent: u64,
    /// Maximum Clone+Inline passes (the paper's pass limit).
    pub passes: usize,
    /// Cumulative budget fractions available by the end of each pass.
    pub stage_fractions: Vec<f64>,
    /// Enable the inlining passes (Figure 6 toggles this).
    pub enable_inline: bool,
    /// Enable the cloning passes (Figure 6 toggles this).
    pub enable_clone: bool,
    /// Stop after this many inline/clone-replacement operations — the
    /// artificial stop used for the paper's Figure 8 heuristic validation.
    pub max_ops: Option<u64>,
    /// Apply the penalty for sites colder than their caller's entry
    /// (ablation knob; the paper always applies it).
    pub cold_site_penalty: bool,
    /// Reuse clones from the clone database across passes (ablation
    /// knob; the paper always reuses).
    pub clone_db_reuse: bool,
    /// Run aggressive outlining of cold regions before inlining — the
    /// paper's §5 future work, off by default for fidelity.
    pub enable_outline: bool,
    /// Profile-guided block straightening after the passes finish (the
    /// intra-procedural half of Pettis–Hansen code positioning, part of
    /// HP's PBO; on by default like the paper's "peak options").
    pub enable_straighten: bool,
    /// Bottom-up interprocedural summary analysis (`hlo-ipa`): MOD/REF
    /// sets, summary-based purity, frame-escape and return-constancy
    /// feed the inliner's screening/ranking and a summary-driven scalar
    /// stage (constant-return folding, generalized pure-call removal,
    /// cross-call store forwarding). On by default; turning it off
    /// reproduces the syntactic-purity-only pipeline exactly.
    pub ipa: bool,
    /// Outlining thresholds (used when `enable_outline` is set).
    pub outline: crate::OutlineOptions,
    /// Verify-each: how much pass-boundary checking to run. At
    /// [`CheckLevel::Structural`] the structural verifier runs after every
    /// transform stage; at [`CheckLevel::Strict`] the full `hlo-lint`
    /// battery runs too, and every new finding is attributed to the stage
    /// that introduced it. Off (and free) by default.
    pub check: CheckLevel,
    /// How much the run records into its tracer (spans only, or spans
    /// plus decision provenance). Pure observability: never changes the
    /// produced program, and is normalized out of the fingerprint.
    pub trace: TraceLevel,
    /// Worker threads for the parallel stages: `1` (the default) runs
    /// everything inline, `0` means "all available hardware parallelism".
    /// The produced program is byte-identical for every value — only
    /// wall-clock time changes.
    pub jobs: usize,
    /// Allow the optimization daemon to serve this request from its
    /// function-grain partition cache (on by default). Purely a caching
    /// permission: the pipeline guarantees the incremental result is
    /// byte-identical to a from-scratch build, so the flag is normalized
    /// out of the fingerprint like `jobs`.
    pub incremental: bool,
}

impl HloOptions {
    /// Serializes to a stable, line-oriented `key value` text form — the
    /// wire format of the optimization service and the canonical input of
    /// [`HloOptions::fingerprint`]. Every field is written, one per line,
    /// in declaration order.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let onoff = |b: bool| if b { "on" } else { "off" };
        let _ = writeln!(
            s,
            "scope {}",
            match self.scope {
                Scope::WithinModule => "module",
                Scope::CrossModule => "program",
            }
        );
        let _ = writeln!(s, "budget {}", self.budget_percent);
        let _ = writeln!(s, "passes {}", self.passes);
        let mut stages = String::from("stages");
        for f in &self.stage_fractions {
            let _ = write!(stages, " {f}");
        }
        let _ = writeln!(s, "{stages}");
        let _ = writeln!(s, "inline {}", onoff(self.enable_inline));
        let _ = writeln!(s, "clone {}", onoff(self.enable_clone));
        let _ = writeln!(
            s,
            "max_ops {}",
            self.max_ops.map_or("none".to_string(), |n| n.to_string())
        );
        let _ = writeln!(s, "cold_site_penalty {}", onoff(self.cold_site_penalty));
        let _ = writeln!(s, "clone_db_reuse {}", onoff(self.clone_db_reuse));
        let _ = writeln!(s, "outline {}", onoff(self.enable_outline));
        let _ = writeln!(s, "straighten {}", onoff(self.enable_straighten));
        let _ = writeln!(s, "ipa {}", onoff(self.ipa));
        let _ = writeln!(s, "outline.cold_fraction {}", self.outline.cold_fraction);
        let _ = writeln!(s, "outline.max_params {}", self.outline.max_params);
        let _ = writeln!(
            s,
            "outline.min_region_size {}",
            self.outline.min_region_size
        );
        let _ = writeln!(
            s,
            "check {}",
            match self.check {
                CheckLevel::Off => "off",
                CheckLevel::Structural => "structural",
                CheckLevel::Strict => "strict",
            }
        );
        let _ = writeln!(s, "trace {}", self.trace);
        let _ = writeln!(s, "jobs {}", self.jobs);
        let _ = writeln!(s, "incremental {}", onoff(self.incremental));
        s
    }

    /// Parses the form produced by [`HloOptions::to_text`]. Unknown keys
    /// and malformed values are errors; omitted keys keep their defaults
    /// (so older clients can talk to newer daemons).
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut o = HloOptions::default();
        let bool_of = |v: &str| match v {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(format!("expected on/off, got `{other}`")),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            let val = val.trim();
            let num = |what: &str| -> Result<u64, String> {
                val.parse().map_err(|_| format!("bad {what} `{val}`"))
            };
            match key {
                "scope" => {
                    o.scope = match val {
                        "module" => Scope::WithinModule,
                        "program" => Scope::CrossModule,
                        other => return Err(format!("bad scope `{other}`")),
                    }
                }
                "budget" => o.budget_percent = num("budget")?,
                "passes" => o.passes = num("passes")? as usize,
                "stages" => {
                    o.stage_fractions = val
                        .split_whitespace()
                        .map(|f| f.parse().map_err(|_| format!("bad stage fraction `{f}`")))
                        .collect::<Result<_, _>>()?
                }
                "inline" => o.enable_inline = bool_of(val)?,
                "clone" => o.enable_clone = bool_of(val)?,
                "max_ops" => {
                    o.max_ops = if val == "none" {
                        None
                    } else {
                        Some(num("max_ops")?)
                    }
                }
                "cold_site_penalty" => o.cold_site_penalty = bool_of(val)?,
                "clone_db_reuse" => o.clone_db_reuse = bool_of(val)?,
                "outline" => o.enable_outline = bool_of(val)?,
                "straighten" => o.enable_straighten = bool_of(val)?,
                "ipa" => o.ipa = bool_of(val)?,
                "outline.cold_fraction" => {
                    o.outline.cold_fraction = val
                        .parse()
                        .map_err(|_| format!("bad cold_fraction `{val}`"))?
                }
                "outline.max_params" => o.outline.max_params = num("max_params")? as u32,
                "outline.min_region_size" => o.outline.min_region_size = num("min_region_size")?,
                "check" => o.check = val.parse()?,
                "trace" => o.trace = val.parse()?,
                "jobs" => o.jobs = num("jobs")? as usize,
                "incremental" => o.incremental = bool_of(val)?,
                other => return Err(format!("unknown option key `{other}`")),
            }
        }
        Ok(o)
    }

    /// A stable 64-bit fingerprint of every option that can change the
    /// *produced program*. `jobs`, `check` and `trace` are normalized
    /// out: the pipeline guarantees byte-identical output at any worker
    /// count, and verify-each and tracing only observe — so a result
    /// cached at `jobs=8` is a valid hit for a `jobs=1 --verify-each`
    /// (or `--explain`) request.
    pub fn fingerprint(&self) -> u64 {
        let canonical = HloOptions {
            jobs: 1,
            check: CheckLevel::Off,
            trace: TraceLevel::Off,
            incremental: true,
            ..self.clone()
        };
        hlo_ir::fnv1a_64(canonical.to_text().as_bytes())
    }
}

impl Default for HloOptions {
    fn default() -> Self {
        HloOptions {
            scope: Scope::CrossModule,
            budget_percent: 100,
            passes: 4,
            stage_fractions: vec![0.25, 0.5, 0.75, 1.0],
            enable_inline: true,
            enable_clone: true,
            max_ops: None,
            cold_site_penalty: true,
            clone_db_reuse: true,
            enable_outline: false,
            enable_straighten: true,
            ipa: true,
            outline: crate::OutlineOptions::default(),
            check: CheckLevel::Off,
            trace: TraceLevel::Off,
            jobs: 1,
            incremental: true,
        }
    }
}

/// Runs HLO: annotate frequencies, pre-optimize, then alternate cloning
/// and inlining passes under the staged budget until the budget closes,
/// the pass limit is reached, nothing changes, or the operation limit is
/// hit (Figure 2's `WHILE (C < B AND P < limit)`).
pub fn optimize(p: &mut Program, profile: Option<&ProfileDb>, opts: &HloOptions) -> HloReport {
    optimize_traced(p, profile, opts, &mut Tracer::disabled())
}

/// [`optimize`], recording into `tracer`: a hierarchical span tree
/// (program → pass → stage) always, and per-site decision provenance when
/// the tracer was built at [`TraceLevel::Decisions`]. The tracer's level —
/// not [`HloOptions::trace`] — controls collection; `HloOptions::trace` is
/// how a *request* asks a remote daemon for a tracing run. Tracing is pure
/// observation: the produced program is byte-identical with tracing on or
/// off, and trace *content* (span tree, decisions, metrics) is identical
/// at any [`HloOptions::jobs`] value once timestamps are normalized away.
pub fn optimize_traced(
    p: &mut Program,
    profile: Option<&ProfileDb>,
    opts: &HloOptions,
    tracer: &mut Tracer,
) -> HloReport {
    optimize_partial(p, profile, opts, None, tracer).report
}

/// Sentinel base for function references into a cached partition's own
/// clones. When the daemon stores a partition's optimized bodies it
/// rewrites every reference to a clone the partition itself created as
/// `CLONE_REF_BASE + position` (position in creation order); at splice
/// time [`optimize_partial`] rebases those onto the ids the clones
/// actually receive in the new program. References below the base are
/// input-function ids, which are stable across edits of *other* cones.
pub const CLONE_REF_BASE: u32 = 0x8000_0000;

/// A cached partition's final state, as replayed by a [`PartitionAction::Reuse`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReusedPartition {
    /// `(input id, final optimized body, alive)` for every member, where
    /// `alive` records whether the function was still in its module's
    /// function list at the end of the build (deleted routines keep their
    /// id but leave the list).
    pub members: Vec<(FuncId, Function, bool)>,
    /// The clone bodies the partition created, in creation order, with
    /// their final alive bits. Function references into this list are
    /// stored as [`CLONE_REF_BASE`]`+ position` sentinels.
    pub clones: Vec<(Function, bool)>,
}

/// What [`optimize_partial`] should do with one cache partition.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionAction {
    /// Run the full multi-pass pipeline on the partition's members.
    Rebuild,
    /// Splice the stored final bodies in without optimizing anything.
    Reuse(ReusedPartition),
}

/// What a partial build did, in enough detail for the daemon to populate
/// its partition cache from a rebuild and to report counters.
#[derive(Debug, Clone, Default)]
pub struct BuildLog {
    /// Cache-partition membership, in partition order (input ids only).
    pub partitions: Vec<Vec<FuncId>>,
    /// Every clone in the final program as `(id, partition index)`, in
    /// creation order — spliced and freshly created alike.
    pub clones: Vec<(FuncId, usize)>,
    /// Each partition's budget limit (its share of the global budget).
    pub partition_limits: Vec<u64>,
    /// Whether each partition was rebuilt (`true`) or spliced (`false`).
    pub rebuilt: Vec<bool>,
    /// True when the build renamed or relinked a global (static-global
    /// promotion during inlining/cloning). Such a build mutates state
    /// outside its partitions' bodies, so the daemon must not populate
    /// its partition cache from it.
    pub globals_mutated: bool,
}

/// Result of [`optimize_partial`]: the usual report plus the build log.
#[derive(Debug, Clone, Default)]
pub struct PartialOutcome {
    /// The optimization report (same shape as [`optimize`]'s).
    pub report: HloReport,
    /// The partition-grain account of what happened.
    pub log: BuildLog,
}

/// Sum of `size^2` over the functions `mask` selects — the partition-local
/// analogue of [`Program::compile_cost`], used to recalibrate a
/// partition's budget without charging it for other partitions' growth.
pub(crate) fn masked_cost(p: &Program, mask: &[bool]) -> u64 {
    p.funcs
        .iter()
        .enumerate()
        .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
        .map(|(_, f)| {
            let s = f.size();
            s * s
        })
        .sum()
}

/// The partition-at-a-time driver underneath [`optimize_traced`].
///
/// The program is split into *cache partitions* — weakly connected
/// components of the direct call graph, with everything touching
/// indirection (indirect call sites, address-taken functions and their
/// takers) merged into one island — computed on the **input** program so
/// the optimization daemon, which keys its result cache on input cone
/// hashes, agrees with the driver about membership. After a masked global
/// prepass, each partition runs its complete multi-pass pipeline under its
/// **own** [`crate::budget::Budget`] (its proportional share of the global
/// budget), sequentially in partition order. Because no pipeline stage
/// edits a function outside the current partition, and clone ids allocate
/// contiguously per partition, each partition's final bodies are a pure
/// function of its own members, profile slice and budget share — which is
/// what makes function-grain result reuse sound:
///
/// * `plan = None` (a full build, what [`optimize`] does): every
///   partition is rebuilt.
/// * `plan = Some(actions)`, one action per partition: `Rebuild` runs the
///   pipeline, `Reuse` splices the stored final bodies byte-for-byte. The
///   result is byte-identical to a full build as long as every reused
///   entry really came from a byte-identical cone under the same options
///   and budget share.
///
/// Outline builds (`enable_outline`) are whole-program — outlining
/// creates functions before partitioning is useful — and reject a plan.
pub fn optimize_partial(
    p: &mut Program,
    profile: Option<&ProfileDb>,
    opts: &HloOptions,
    plan: Option<&[PartitionAction]>,
    tracer: &mut Tracer,
) -> PartialOutcome {
    let mut report = HloReport::default();
    let jobs = effective_jobs(opts.jobs);
    let span_base = tracer.span_count();
    let run_t = Instant::now();
    let root = tracer.push("optimize");
    let mut cache = CallGraphCache::new();

    // Static-global promotion renames globals program-wide; snapshot the
    // table so the build log can report any mutation.
    let globals_before: Vec<(String, Linkage)> = p
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.linkage))
        .collect();

    // Cache partitions come from the *input* program (outline builds get
    // one whole-program partition after outlining, below).
    let mut partitions: Vec<CallGraphPartition> = if opts.enable_outline {
        assert!(plan.is_none(), "outline builds are not partition-cacheable");
        Vec::new()
    } else {
        cache.graph(p).cache_partitions()
    };
    let mut rebuild_func = vec![true; p.funcs.len()];
    if let Some(plan) = plan {
        assert_eq!(
            plan.len(),
            partitions.len(),
            "plan must cover every cache partition"
        );
        for (part, action) in partitions.iter().zip(plan) {
            if matches!(action, PartitionAction::Reuse(_)) {
                for &f in &part.funcs {
                    rebuild_func[f.index()] = false;
                }
            }
        }
    }
    // The prepass mask: a full build touches everything (`None` keeps the
    // small-batch parallel paths on their unmasked fast path), a partial
    // build only prepasses functions it will rebuild — reused partitions
    // get their final bodies spliced in, so optimizing their inputs would
    // be wasted work (and the whole point of the cache).
    let prepass_mask = plan.map(|_| rebuild_func.clone());
    let pmask = prepass_mask.as_deref();

    // Verify-each: record the input program's pre-existing defects first,
    // so every later boundary only reports what a stage *introduced*.
    let mut ck = Checker::new(opts.check);
    ck.baseline(p);

    // Frequency annotation: PBO counts when available, the static
    // loop-depth heuristic otherwise. With a profile database, functions
    // never executed in training are cold, not unknown. The per-function
    // fallback fans out over the worker pool. (Reused partitions are
    // annotated too — harmless, their bodies are replaced at splice.)
    let t0 = Instant::now();
    report.profile_annotations = match profile {
        Some(db) => apply_profile(p, db) as u64,
        None => 0,
    };
    let seq = t0.elapsed();
    let has_profile = profile.is_some();
    let t1 = Instant::now();
    let out = par_map_funcs(jobs, p, |_, f| {
        if f.profile.is_none() {
            f.profile = Some(if has_profile {
                FuncProfile {
                    entry: 0.0,
                    blocks: vec![0.0; f.blocks.len()],
                }
            } else {
                estimate_static_profile(f)
            });
        }
    });
    tracer.leaf("annotate", seq + t1.elapsed(), seq + out.work);
    ck.check(p, "annotate");

    // Input-stage cleanup: classic optimizations "mainly to reduce size",
    // plus interprocedural side-effect deletion on the link-time path.
    optimize_all(
        p,
        opts,
        &mut ck,
        &mut cache,
        jobs,
        tracer,
        0,
        &mut report,
        pmask,
    );
    let t = Instant::now();
    report.deletions += delete_unreachable_masked(p, opts.scope, &mut cache, pmask);
    tracer.leaf_seq("delete", t.elapsed());
    ck.check(p, "delete");

    // Optional aggressive outlining (paper §5): shrink hot routines by
    // extracting cold return paths before any budget is computed, so the
    // freed budget goes to inlining the hot code. Outlining rewrites call
    // coordinates program-wide, so the whole cache is invalidated.
    if opts.enable_outline {
        // A structural span only — no stage leaf, so `stage_timings`
        // output is unchanged from the pre-tracer format.
        let t = Instant::now();
        let outline_span = tracer.push("outline");
        report.outlines = crate::outline_cold_regions_traced(p, &opts.outline, tracer);
        cache.invalidate_all();
        ck.check(p, "outline");
        if report.outlines > 0 {
            optimize_all(
                p,
                opts,
                &mut ck,
                &mut cache,
                jobs,
                tracer,
                0,
                &mut report,
                None,
            );
        }
        tracer.pop(outline_span, t.elapsed());
        partitions = vec![CallGraphPartition {
            funcs: p.func_ids().collect(),
            edge_indices: Vec::new(),
        }];
        rebuild_func = vec![true; p.funcs.len()];
    }

    let c0 = p.compile_cost();
    report.initial_cost = c0;
    // One budget per partition, each a pure function of the partition's
    // own post-prepass cost — the hierarchical split mirrors how the
    // parallel planner splits stage headroom proportionally. The limits
    // sum to the global budget (within integer truncation).
    let part_costs: Vec<u64> = partitions
        .iter()
        .map(|part| {
            part.funcs
                .iter()
                .map(|&f| {
                    let s = p.func(f).size();
                    s * s
                })
                .sum()
        })
        .collect();
    let mut budgets = BudgetSet::new(&part_costs, opts.budget_percent, &opts.stage_fractions);
    report.budget_limit = budgets.total_limit();

    let mut clone_db = CloneDb::default();
    let mut ops_left = opts.max_ops;
    let mut log = BuildLog {
        partitions: partitions.iter().map(|part| part.funcs.clone()).collect(),
        clones: Vec::new(),
        partition_limits: (0..partitions.len())
            .map(|i| budgets.get(i).limit())
            .collect(),
        rebuilt: Vec::new(),
        globals_mutated: false,
    };
    // Which functions the final straighten stage may touch: everything a
    // rebuild produced, nothing a splice restored (spliced bodies were
    // straightened by the build that cached them).
    let mut straighten_mask = rebuild_func;
    let mut pass_entered = vec![false; opts.passes];
    let mut pass_reports: Vec<PassReport> = (0..opts.passes)
        .map(|pass| PassReport {
            pass,
            ..Default::default()
        })
        .collect();

    for (pi, part) in partitions.iter().enumerate() {
        match plan.map_or(&PartitionAction::Rebuild, |pl| &pl[pi]) {
            PartitionAction::Reuse(stored) => {
                log.rebuilt.push(false);
                splice_partition(p, stored, pi, &mut log, &mut cache);
                straighten_mask.resize(p.funcs.len(), false);
            }
            PartitionAction::Rebuild => {
                log.rebuilt.push(true);
                let budget = budgets.get_mut(pi);
                let mut mask = vec![false; p.funcs.len()];
                for &f in &part.funcs {
                    mask[f.index()] = true;
                }
                for pass in 0..opts.passes {
                    if !budget.open() {
                        break;
                    }
                    if ops_left == Some(0) {
                        break;
                    }
                    pass_entered[pass] = true;
                    let pr = &mut pass_reports[pass];
                    let pass_t = Instant::now();
                    let pass_span = tracer.push(&format!("pass{pass}"));
                    if opts.enable_clone {
                        mask.resize(p.funcs.len(), false);
                        let r = clone_pass(
                            p,
                            budget,
                            pass,
                            opts,
                            Some(&mask),
                            &mut clone_db,
                            &mut ops_left,
                            &mut cache,
                            tracer,
                        );
                        for &id in &r.created_ids {
                            if mask.len() <= id.index() {
                                mask.resize(id.index() + 1, false);
                            }
                            mask[id.index()] = true;
                            log.clones.push((id, pi));
                        }
                        pr.clones_created += r.clones_created;
                        pr.clones_reused += r.clones_reused;
                        pr.clone_replacements += r.sites_replaced;
                        tracer.leaf("clone.plan", r.plan_wall, r.plan_work);
                        tracer.leaf("clone.apply", r.apply_wall, r.apply_work);
                        ck.check(p, &format!("clone@{pass}"));
                    }
                    if opts.enable_inline {
                        mask.resize(p.funcs.len(), false);
                        let r = inline_pass(
                            p,
                            budget,
                            pass,
                            opts,
                            Some(&mask),
                            &mut ops_left,
                            &mut cache,
                            tracer,
                        );
                        pr.inlines += r.inlines;
                        tracer.leaf("inline.plan", r.plan_wall, r.plan_work);
                        tracer.leaf("inline.apply", r.apply_wall, r.apply_work);
                        ck.check(p, &format!("inline@{pass}"));
                    }
                    let t = Instant::now();
                    pr.deletions +=
                        delete_unreachable_masked(p, opts.scope, &mut cache, Some(&mask));
                    tracer.leaf_seq("delete", t.elapsed());
                    ck.check(p, &format!("delete@{pass}"));
                    optimize_all(
                        p,
                        opts,
                        &mut ck,
                        &mut cache,
                        jobs,
                        tracer,
                        pass as u32,
                        &mut report,
                        Some(&mask),
                    );
                    let t = Instant::now();
                    pr.deletions +=
                        delete_unreachable_masked(p, opts.scope, &mut cache, Some(&mask));
                    tracer.leaf_seq("delete", t.elapsed());
                    ck.check(p, &format!("cleanup@{pass}"));
                    budget.recalibrate(masked_cost(p, &mask));
                    pr.cost_after += budget.current();
                    tracer.pop(pass_span, pass_t.elapsed());
                    // Note: a pass that changed nothing is not a reason to
                    // stop — sites deferred for budget reasons become
                    // affordable as later stages release more budget.
                }
                straighten_mask.resize(p.funcs.len(), true);
            }
        }
    }

    for (pass, pr) in pass_reports.into_iter().enumerate() {
        if pass_entered[pass] {
            report.inlines += pr.inlines;
            report.clones += pr.clones_created;
            report.clone_replacements += pr.clone_replacements;
            report.deletions += pr.deletions;
            report.passes.push(pr);
        }
    }

    // Final PBO code positioning: straighten hot paths so fall-throughs
    // replace jumps (does not change VM semantics, only layout quality).
    // Block reordering shifts every call-site coordinate.
    if opts.enable_straighten {
        let t = Instant::now();
        straighten_mask.resize(p.funcs.len(), true);
        report.straightened =
            hlo_opt::straighten::straighten_program_masked(p, Some(&straighten_mask));
        cache.invalidate_all();
        tracer.leaf_seq("straighten", t.elapsed());
        ck.check(p, "straighten");
    }

    tracer.pop(root, run_t.elapsed());
    report.final_cost = p.compile_cost();
    report.jobs = jobs as u64;
    report.stage_timings = tracer
        .stage_totals_since(span_base)
        .into_iter()
        .map(|(stage, wall_us, work_us)| StageTiming {
            stage,
            wall_us,
            work_us,
        })
        .collect();
    report.checks_run = ck.checks_run();
    report.lint_time_us = ck.elapsed().as_micros() as u64;
    report.diagnostics = ck.into_report().diags;

    log.globals_mutated = p.globals.len() != globals_before.len()
        || p.globals
            .iter()
            .zip(&globals_before)
            .any(|(g, (name, linkage))| g.name != *name || g.linkage != *linkage);

    PartialOutcome { report, log }
}

/// Extracts one partition's final state from a finished build, in the
/// form [`PartitionAction::Reuse`] replays: member bodies with alive bits,
/// clone bodies in creation order, and references to the partition's own
/// clones rewritten to [`CLONE_REF_BASE`] sentinels so they survive being
/// spliced into a program where the clones land on different ids.
///
/// # Panics
/// Panics (debug builds) if a stored body references a clone of *another*
/// partition — that would mean a pipeline stage edited across a cache
/// partition boundary, which the incremental scheme forbids.
pub fn extract_partition(p: &Program, log: &BuildLog, pi: usize) -> ReusedPartition {
    use std::collections::HashMap;
    let own_clone_pos: HashMap<FuncId, u32> = log
        .clones
        .iter()
        .filter(|(_, part)| *part == pi)
        .enumerate()
        .map(|(pos, (id, _))| (*id, pos as u32))
        .collect();
    let all_clones: std::collections::HashSet<FuncId> =
        log.clones.iter().map(|(id, _)| *id).collect();
    let encode = |func: &mut Function| {
        func.for_each_func_ref_mut(|fid| {
            if let Some(&pos) = own_clone_pos.get(fid) {
                fid.0 = CLONE_REF_BASE + pos;
            } else {
                debug_assert!(
                    !all_clones.contains(fid),
                    "partition {pi} references another partition's clone {fid:?}"
                );
            }
        });
    };
    let alive = |id: FuncId| p.module(p.func(id).module).funcs.contains(&id);
    let members = log.partitions[pi]
        .iter()
        .map(|&id| {
            let mut func = p.func(id).clone();
            encode(&mut func);
            (id, func, alive(id))
        })
        .collect();
    let clones = log
        .clones
        .iter()
        .filter(|(_, part)| *part == pi)
        .map(|&(id, _)| {
            let mut func = p.func(id).clone();
            encode(&mut func);
            (func, alive(id))
        })
        .collect();
    ReusedPartition { members, clones }
}

/// Splices one cached partition into `p`: members' final bodies overwrite
/// their input slots (dead ones leave their module list), clone bodies are
/// appended in creation order. Clone ids line up with what a rebuild would
/// have allocated because partitions are processed in order and earlier
/// partitions contribute identical clone counts either way.
fn splice_partition(
    p: &mut Program,
    stored: &ReusedPartition,
    pi: usize,
    log: &mut BuildLog,
    cache: &mut CallGraphCache,
) {
    let base = p.funcs.len() as u32;
    let rebase = |func: &mut Function| {
        func.for_each_func_ref_mut(|fid| {
            if fid.0 >= CLONE_REF_BASE {
                fid.0 = base + (fid.0 - CLONE_REF_BASE);
            }
        });
    };
    for (id, func, alive) in &stored.members {
        let mut func = func.clone();
        rebase(&mut func);
        let module = func.module;
        *p.func_mut(*id) = func;
        if !*alive {
            p.modules[module.index()].funcs.retain(|x| x != id);
        }
        cache.invalidate(*id);
    }
    for (func, alive) in &stored.clones {
        let mut func = func.clone();
        rebase(&mut func);
        let alive = *alive;
        let module = func.module;
        let id = p.push_function(func);
        if !alive {
            p.modules[module.index()].funcs.retain(|&x| x != id);
        }
        log.clones.push((id, pi));
    }
}

/// One parallel scalar-cleanup round: every function `mask` selects
/// (`None` = all) is optimized on the worker pool, each worker driving its
/// function's sub-pass boundaries through a forked child checker. Children
/// are absorbed in function order, reproducing the sequential run's
/// diagnostics exactly; functions whose bodies changed are invalidated in
/// the call-graph cache.
fn cleanup_round(
    p: &mut Program,
    ck: &mut Checker,
    cache: &mut CallGraphCache,
    jobs: usize,
    tracer: &mut Tracer,
    mask: Option<&[bool]>,
) {
    let t = Instant::now();
    let parent: &Checker = ck;
    let out = par_map_funcs(jobs, p, |id, f| {
        if !mask.is_none_or(|m| m.get(id.index()).copied().unwrap_or(false)) {
            return (None, false);
        }
        let mut child = parent.fork();
        let stats = hlo_opt::optimize_function_checked(f, &mut child);
        (Some(child), stats.changed)
    });
    let wall = t.elapsed();
    let work = out.work;
    for (i, (child, changed)) in out.results.into_iter().enumerate() {
        if let Some(child) = child {
            ck.absorb(child);
        }
        if changed {
            cache.invalidate(FuncId(i as u32));
        }
    }
    tracer.leaf("cleanup", wall, work);
}

/// A pure-call deletion / ipa-stage decision event in the canonical
/// site spelling (the instruction no longer exists, so the coordinates
/// are pre-deletion).
fn pure_call_event(
    p: &Program,
    pass: u32,
    caller: FuncId,
    block: usize,
    inst: usize,
    callee: FuncId,
    reason: &'static str,
) -> DecisionEvent {
    let caller = p.func(caller);
    DecisionEvent {
        pass,
        kind: DecisionKind::PureCall,
        site: format!("{}@b{}.i{}", caller.name, block, inst),
        callee: p.func(callee).name.clone(),
        verdict: Verdict::Performed,
        reason,
        benefit: 0.0,
        cost: 0,
        budget_before: 0,
        budget_after: 0,
        profile_weight: caller
            .profile
            .as_ref()
            .and_then(|pr| pr.blocks.get(block).copied())
            .unwrap_or(0.0),
    }
}

/// Optimizes every live function `mask` selects (`None` = all); on the
/// whole-program path also deletes calls to side-effect-free routines
/// (against the cached call graph) and, with [`HloOptions::ipa`] set, runs
/// the summary-driven cross-call stage. The global analyses (reachability,
/// purity, summaries) stay program-wide — the mask only limits which
/// functions are *edited*, and a masked function's facts depend only on
/// same-partition callees. Accumulates its counters into `report`. In
/// verify-each mode the checker runs after every scalar sub-pass, so
/// findings carry sub-pass origins like `cse` or `simplify_cfg`.
#[allow(clippy::too_many_arguments)] // internal driver plumbing
fn optimize_all(
    p: &mut Program,
    opts: &HloOptions,
    ck: &mut Checker,
    cache: &mut CallGraphCache,
    jobs: usize,
    tracer: &mut Tracer,
    pass: u32,
    report: &mut HloReport,
    mask: Option<&[bool]>,
) {
    cleanup_round(p, ck, cache, jobs, tracer, mask);
    if opts.scope != Scope::CrossModule {
        return;
    }
    let t = Instant::now();
    let removal = {
        let cg = cache.graph(p);
        hlo_opt::eliminate_pure_calls_with_masked(p, cg, mask)
    };
    for &f in &removal.changed {
        cache.invalidate(f);
    }
    tracer.leaf_seq("pure_calls", t.elapsed());
    ck.check(p, "pure_calls");
    if tracer.decisions_enabled() {
        for s in &removal.sites {
            tracer.decision(pure_call_event(
                p,
                pass,
                s.caller,
                s.block,
                s.inst,
                s.callee,
                "pure-call-removed",
            ));
        }
    }
    report.pure_calls_removed += removal.removed;
    if removal.removed > 0 {
        cleanup_round(p, ck, cache, jobs, tracer, mask);
    }

    // Summary-driven stage: fold constant returns, delete calls the
    // summaries prove removable (a strict superset of the syntactic set
    // above — only newly unlocked sites remain by now), then forward
    // stores across summary-screened calls. `ipa off` skips all of it and
    // reproduces the historical pipeline byte for byte.
    if opts.ipa {
        let t = Instant::now();
        let (summaries, syntactic) = {
            let cg = cache.graph(p);
            (
                hlo_ipa::Summaries::compute(p, cg),
                hlo_analysis::side_effect_free_funcs(p, cg),
            )
        };
        let folds = hlo_opt::fold_const_returns_masked(p, &summaries, mask);
        for fo in &folds {
            cache.invalidate(fo.caller);
        }
        let ipa_removal = hlo_opt::eliminate_calls_where_masked(p, &summaries.removable(), mask);
        for &f in &ipa_removal.changed {
            cache.invalidate(f);
        }
        let xstats = hlo_opt::forward_across_calls_masked(p, &summaries, mask);
        for &f in &xstats.changed {
            cache.invalidate(f);
        }
        tracer.leaf_seq("ipa", t.elapsed());
        ck.check(p, "ipa");
        if tracer.decisions_enabled() {
            for fo in &folds {
                tracer.decision(pure_call_event(
                    p,
                    pass,
                    fo.caller,
                    fo.block,
                    fo.inst,
                    fo.callee,
                    "ipa-ret-const",
                ));
            }
            for s in &ipa_removal.sites {
                let reason = if syntactic[s.callee.index()] {
                    "pure-call-removed"
                } else {
                    "ipa-pure-callee"
                };
                tracer.decision(pure_call_event(
                    p, pass, s.caller, s.block, s.inst, s.callee, reason,
                ));
            }
        }
        report.ipa_const_folds += folds.len() as u64;
        report.ipa_pure_calls += ipa_removal.removed;
        report.ipa_store_forwards += xstats.forwards + xstats.dead_stores;
        if !folds.is_empty() || ipa_removal.removed > 0 || xstats.forwards + xstats.dead_stores > 0
        {
            cleanup_round(p, ck, cache, jobs, tracer, mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;
    use hlo_profile::collect_profile;
    use hlo_vm::{run_program, ExecOptions};

    const INTERP_SRC: &str = r#"
        global prog[16] = {1, 5, 2, 3, 1, 7, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0};
        static fn op_add(acc, v) { return acc + v; }
        static fn op_mul(acc, v) { return acc * v; }
        fn step(acc, code, v) {
            if (code == 1) { return op_add(acc, v); }
            if (code == 2) { return op_mul(acc, v); }
            return acc;
        }
        fn main() {
            var acc = 0;
            for (var r = 0; r < 200; r = r + 1) {
                var i = 0;
                while (prog[i] != 0) {
                    acc = step(acc, prog[i], prog[i + 1]);
                    i = i + 2;
                }
            }
            return acc;
        }
    "#;

    #[test]
    fn end_to_end_preserves_semantics_and_speeds_up() {
        let p0 = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let before = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        let report = optimize(&mut p, None, &HloOptions::default());
        verify_program(&p).unwrap();
        let after = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(before.checksum, after.checksum);
        assert!(report.inlines > 0, "{report}");
        assert!(
            after.retired < before.retired,
            "expected speedup: {} -> {}",
            before.retired,
            after.retired
        );
    }

    #[test]
    fn budget_is_respected() {
        let mut p = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let opts = HloOptions {
            budget_percent: 100,
            ..Default::default()
        };
        let report = optimize(&mut p, None, &opts);
        // Allow slack for post-pass scalar optimization shrinking then
        // regrowing, but the order of magnitude must hold.
        assert!(
            report.final_cost <= report.budget_limit + report.initial_cost / 4,
            "{report}"
        );
    }

    #[test]
    fn profile_guided_beats_static_on_skewed_input() {
        let p0 = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let (db, _) = collect_profile(&p0, &[], &ExecOptions::default()).unwrap();

        let mut static_p = p0.clone();
        let tight = HloOptions {
            budget_percent: 30,
            ..Default::default()
        };
        let rs = optimize(&mut static_p, None, &tight);
        assert_eq!(rs.profile_annotations, 0);
        let mut pgo_p = p0.clone();
        let rg = optimize(&mut pgo_p, Some(&db), &tight);
        assert!(rg.profile_annotations >= 1, "{rg}");
        let s = run_program(&static_p, &[], &ExecOptions::default()).unwrap();
        let g = run_program(&pgo_p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(s.ret, g.ret);
        // PGO should never be (much) worse dynamically.
        assert!(
            g.retired <= s.retired + s.retired / 10,
            "pgo {} vs static {}",
            g.retired,
            s.retired
        );
    }

    #[test]
    fn staged_indirect_promotion_across_passes() {
        // handler address flows through a dispatcher's parameter; pass 1
        // clones, constprop promotes, pass 2 inlines.
        let src = r#"
            static fn handler(x) { return x * 3 + 1; }
            fn dispatch(f, x) { return f(x); }
            fn main() {
                var s = 0;
                for (var i = 0; i < 100; i = i + 1) { s = s + dispatch(&handler, i); }
                return s;
            }
        "#;
        let p0 = hlo_frontc::compile(&[("m", src)]).unwrap();
        let before = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        let report = optimize(&mut p, None, &HloOptions::default());
        verify_program(&p).unwrap();
        let after = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        assert!(report.clones >= 1, "{report}");
        assert!(after.retired < before.retired);
        // No indirect calls should remain on the hot path.
        let counts = hlo_analysis::classify_sites(&p);
        assert_eq!(counts.indirect, 0, "{counts:?}");
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let mut p = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let opts = HloOptions {
            enable_inline: false,
            enable_clone: false,
            ..Default::default()
        };
        let report = optimize(&mut p, None, &opts);
        assert_eq!(report.inlines, 0);
        assert_eq!(report.clones, 0);
    }

    #[test]
    fn max_ops_limits_total_operations() {
        let mut p = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let opts = HloOptions {
            max_ops: Some(2),
            ..Default::default()
        };
        let report = optimize(&mut p, None, &opts);
        assert!(report.operations() <= 2, "{report}");
        verify_program(&p).unwrap();
    }

    #[test]
    fn within_module_scope_blocks_cross_module_inlining() {
        let a = "fn main() { var s = 0; for (var i = 0; i < 50; i = i + 1) { s = s + util(i); } return s; }";
        let b = "fn util(x) { return x * 2 + 1; }";
        let p0 = hlo_frontc::compile(&[("a", a), ("b", b)]).unwrap();
        let mut within = p0.clone();
        let rw = optimize(
            &mut within,
            None,
            &HloOptions {
                scope: Scope::WithinModule,
                ..Default::default()
            },
        );
        assert_eq!(rw.inlines, 0, "{rw}");
        let mut cross = p0.clone();
        let rc = optimize(&mut cross, None, &HloOptions::default());
        assert!(rc.inlines >= 1, "{rc}");
        // and the cross-module build is dynamically cheaper
        let w = run_program(&within, &[], &ExecOptions::default()).unwrap();
        let c = run_program(&cross, &[], &ExecOptions::default()).unwrap();
        assert_eq!(w.ret, c.ret);
        assert!(c.retired < w.retired);
    }

    #[test]
    fn fully_inlined_static_routines_are_deleted() {
        let src = r#"
            static fn once(x) { return x + 2; }
            fn main() { return once(40); }
        "#;
        // ipa off: the site is spliced by the inliner and the fully
        // inlined static callee is deleted (the original mechanism).
        let mut p = hlo_frontc::compile(&[("m", src)]).unwrap();
        let opts = HloOptions {
            ipa: false,
            ..Default::default()
        };
        let report = optimize(&mut p, None, &opts);
        assert!(report.inlines >= 1);
        assert!(report.deletions >= 1, "{report}");
        // module list no longer contains `once`
        let m = &p.modules[0];
        assert!(m.funcs.iter().all(|&f| p.func(f).name != "once"));

        // ipa on (the default): the specialized call folds to its constant
        // return before the inliner needs to splice it — the static callee
        // is deleted all the same and main is a bare constant return.
        let mut p = hlo_frontc::compile(&[("m", src)]).unwrap();
        let report = optimize(&mut p, None, &HloOptions::default());
        assert!(report.deletions >= 1, "{report}");
        assert!(
            report.inlines + report.ipa_const_folds >= 1,
            "either path must claim the site: {report}"
        );
        let m = &p.modules[0];
        assert!(m.funcs.iter().all(|&f| p.func(f).name != "once"));
        let main = p.entry.unwrap();
        assert_eq!(p.func(main).size(), 1, "{}", p.func(main));
    }

    #[test]
    fn recursive_pass_through_cloning_specializes_recursion() {
        // Paper §2.2: "cloning a recursive procedure with a pass-through
        // parameter ... might be difficult to do correctly in a single
        // pass". Multi-pass + clone database: pass 1 clones power(base=3),
        // constant propagation re-materializes base=3 at the clone's own
        // recursive call, pass 2 finds that site, hits the database, and
        // redirects it — the clone ends up calling itself.
        let src = r#"
            fn power(base, n) {
                if (n <= 0) { return 1; }
                return base * power(base, n - 1);
            }
            fn main() {
                var s = 0;
                for (var i = 0; i < 8; i = i + 1) { s = s + power(3, i); }
                return s;
            }
        "#;
        let p0 = hlo_frontc::compile(&[("m", src)]).unwrap();
        let expect = run_program(&p0, &[], &ExecOptions::default()).unwrap().ret;
        let mut p = p0.clone();
        let opts = HloOptions {
            enable_inline: false, // isolate the cloning story
            budget_percent: 400,
            ..Default::default()
        };
        let report = optimize(&mut p, None, &opts);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
        assert!(report.clones >= 1, "{report}");
        assert!(report.clone_replacements >= 2, "{report}");
        // The specialized clone must be self-recursive.
        let clone = p
            .iter_funcs()
            .find(|(_, f)| f.name.contains("clone"))
            .map(|(i, _)| i)
            .expect("clone exists");
        let cg = hlo_analysis::CallGraph::build(&p);
        let sccs = cg.sccs();
        assert!(
            cg.in_recursion(&sccs, clone),
            "clone should call itself after pass-through specialization"
        );
    }

    #[test]
    fn outlining_is_reported_and_preserves_semantics() {
        let src = r#"
            global errs;
            fn work(n, mode) {
                var s = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (mode == 77) {
                        errs = errs + 1;
                        var penalty = mode * 1000 + n + errs * 3;
                        return 0 - penalty;
                    }
                    s = s + i * 2 + 1;
                }
                return s;
            }
            fn main() {
                var a = 0;
                for (var r = 0; r < 300; r = r + 1) { a = a + work(20, 1); }
                return a * 1000 + work(5, 77);
            }
        "#;
        let p0 = hlo_frontc::compile(&[("m", src)]).unwrap();
        let expect = run_program(&p0, &[], &ExecOptions::default()).unwrap().ret;
        let (db, _) = collect_profile(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        let opts = HloOptions {
            enable_outline: true,
            ..Default::default()
        };
        let report = optimize(&mut p, Some(&db), &opts);
        verify_program(&p).unwrap();
        assert!(report.outlines >= 1, "{report}");
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn report_tracks_passes() {
        let mut p = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let report = optimize(&mut p, None, &HloOptions::default());
        assert!(!report.passes.is_empty());
        assert_eq!(
            report.inlines,
            report.passes.iter().map(|q| q.inlines).sum::<u64>()
        );
    }

    #[test]
    fn any_job_count_produces_identical_output() {
        let p0 = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let mut base = p0.clone();
        let r1 = optimize(&mut base, None, &HloOptions::default());
        let base_text = hlo_ir::program_to_text(&base);
        for jobs in [2usize, 8] {
            let mut q = p0.clone();
            let r = optimize(
                &mut q,
                None,
                &HloOptions {
                    jobs,
                    ..Default::default()
                },
            );
            assert_eq!(base_text, hlo_ir::program_to_text(&q), "jobs={jobs}");
            assert_eq!(r.inlines, r1.inlines);
            assert_eq!(r.compile_time_units(), r1.compile_time_units());
            assert_eq!(r.operations(), r1.operations());
            assert_eq!(r.jobs, jobs as u64);
        }
        assert_eq!(r1.jobs, 1);
        assert!(!r1.stage_timings.is_empty());
        assert!(r1.stage_timings.iter().any(|s| s.stage == "cleanup"));
    }

    #[test]
    fn options_text_roundtrip() {
        let mut o = HloOptions {
            scope: Scope::WithinModule,
            budget_percent: 250,
            passes: 7,
            stage_fractions: vec![0.1, 0.5, 1.0],
            enable_inline: false,
            max_ops: Some(42),
            enable_outline: true,
            check: CheckLevel::Strict,
            jobs: 9,
            ..Default::default()
        };
        o.outline.cold_fraction = 0.125;
        let back = HloOptions::from_text(&o.to_text()).unwrap();
        assert_eq!(o, back);
        // Omitted keys keep defaults; unknown keys are rejected.
        assert_eq!(
            HloOptions::from_text("budget 30").unwrap().budget_percent,
            30
        );
        assert!(HloOptions::from_text("zzz 1").is_err());
        assert!(HloOptions::from_text("scope galaxy").is_err());
    }

    #[test]
    fn fingerprint_ignores_jobs_and_check_only() {
        let base = HloOptions::default();
        let mut same = base.clone();
        same.jobs = 16;
        same.check = CheckLevel::Strict;
        same.trace = TraceLevel::Decisions;
        assert_eq!(base.fingerprint(), same.fingerprint());
        let mut diff = base.clone();
        diff.budget_percent = 99;
        assert_ne!(base.fingerprint(), diff.fingerprint());
        let mut diff2 = base.clone();
        diff2.stage_fractions = vec![1.0];
        assert_ne!(base.fingerprint(), diff2.fingerprint());
    }

    #[test]
    fn traced_run_records_provenance_without_changing_output() {
        let p0 = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let opts = HloOptions {
            budget_percent: 30, // tight enough that some sites must defer
            ..Default::default()
        };
        let mut traced = p0.clone();
        let mut tracer = Tracer::new(TraceLevel::Decisions);
        let report = optimize_traced(&mut traced, None, &opts, &mut tracer);
        let mut plain = p0.clone();
        optimize(&mut plain, None, &opts);
        assert_eq!(
            hlo_ir::program_to_text(&traced),
            hlo_ir::program_to_text(&plain),
            "tracing must be pure observation"
        );
        let tree = tracer.span_tree_text();
        assert!(tree.starts_with("optimize\n"), "{tree}");
        assert!(tree.contains("pass0"), "{tree}");
        assert!(tree.contains("inline.plan"), "{tree}");
        let decisions = tracer.decision_report(None);
        assert!(
            decisions.contains("verdict=performed reason=accepted"),
            "{decisions}"
        );
        assert!(decisions.contains("reason=budget-deferred"), "{decisions}");
        // Stage timings now come from the tracer's leaves, same shape as
        // the old accumulator produced.
        assert!(report.stage_timings.iter().any(|s| s.stage == "cleanup"));
        assert!(report
            .stage_timings
            .iter()
            .any(|s| s.stage == "inline.plan"));
        // Metrics mirror the recorded decisions.
        assert!(tracer.metrics().expose().contains("decisions_total"));
    }

    /// Three modules with disjoint call graphs. Per-module scope keeps
    /// every public root alive, so the program has (at least) three live
    /// cache partitions.
    fn three_partition_modules() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "a",
                r#"
                static fn a_leaf(x) { return x * 2 + 1; }
                fn a_main() {
                    var s = 0;
                    for (var i = 0; i < 40; i = i + 1) { s = s + a_leaf(i); }
                    return s;
                }
                fn main() { return a_main(); }
                "#,
            ),
            (
                "b",
                r#"
                static fn b_leaf(k, x) { if (k == 1) { return x + 7; } return x; }
                fn b_main() {
                    var s = 0;
                    for (var i = 0; i < 30; i = i + 1) { s = s + b_leaf(1, i); }
                    return s;
                }
                "#,
            ),
            (
                "c",
                r#"
                static fn c_leaf(x) { return x * x; }
                fn c_main() {
                    var s = 0;
                    for (var i = 0; i < 20; i = i + 1) { s = s + c_leaf(i); }
                    return s;
                }
                "#,
            ),
        ]
    }

    fn module_opts() -> HloOptions {
        HloOptions {
            scope: Scope::WithinModule,
            ..Default::default()
        }
    }

    #[test]
    fn partial_reuse_splices_byte_identical_output() {
        let p0 = hlo_frontc::compile(&three_partition_modules()).unwrap();
        let opts = module_opts();
        let mut full = p0.clone();
        let out = optimize_partial(&mut full, None, &opts, None, &mut Tracer::disabled());
        assert!(out.log.rebuilt.iter().all(|&r| r));
        assert!(!out.log.globals_mutated);
        let nparts = out.log.partitions.len();
        assert!(nparts >= 3, "expected >= 3 partitions, got {nparts}");
        assert!(out.report.inlines >= 1, "{}", out.report);

        // Rebuild only the partition containing module b's functions and
        // splice the others from the finished build. The result must be
        // byte-identical at every job count.
        let target = p0.find_func("b", "b_main").unwrap();
        let full_text = hlo_ir::program_to_text(&full);
        for jobs in [1usize, 4, 8] {
            let plan: Vec<PartitionAction> = (0..nparts)
                .map(|pi| {
                    if out.log.partitions[pi].contains(&target) {
                        PartitionAction::Rebuild
                    } else {
                        PartitionAction::Reuse(extract_partition(&full, &out.log, pi))
                    }
                })
                .collect();
            let rebuilds = plan
                .iter()
                .filter(|a| matches!(a, PartitionAction::Rebuild))
                .count();
            assert!(rebuilds < nparts);
            let mut inc = p0.clone();
            let inc_opts = HloOptions {
                jobs,
                ..opts.clone()
            };
            let out2 = optimize_partial(
                &mut inc,
                None,
                &inc_opts,
                Some(&plan),
                &mut Tracer::disabled(),
            );
            assert_eq!(
                full_text,
                hlo_ir::program_to_text(&inc),
                "incremental output diverged at jobs={jobs}"
            );
            assert_eq!(
                out2.log.rebuilt.iter().filter(|&&r| r).count(),
                rebuilds,
                "only the planned partitions rebuild"
            );
            hlo_ir::verify_program(&inc).unwrap();
        }
    }

    #[test]
    fn partial_reuse_tracks_edited_function() {
        // Edit one function's body; splicing the *unedited* partitions
        // from the original build must reproduce the edited program's
        // from-scratch build byte for byte.
        let mut modules = three_partition_modules();
        let p0 = hlo_frontc::compile(&modules).unwrap();
        let opts = module_opts();
        let mut full0 = p0.clone();
        let out0 = optimize_partial(&mut full0, None, &opts, None, &mut Tracer::disabled());

        // The edit: module b's leaf gains a different constant.
        modules[1].1 = r#"
            static fn b_leaf(k, x) { if (k == 1) { return x + 9; } return x; }
            fn b_main() {
                var s = 0;
                for (var i = 0; i < 30; i = i + 1) { s = s + b_leaf(1, i); }
                return s;
            }
        "#;
        let p1 = hlo_frontc::compile(&modules).unwrap();
        let mut full1 = p1.clone();
        optimize_partial(&mut full1, None, &opts, None, &mut Tracer::disabled());

        let target = p1.find_func("b", "b_main").unwrap();
        let plan: Vec<PartitionAction> = (0..out0.log.partitions.len())
            .map(|pi| {
                if out0.log.partitions[pi].contains(&target) {
                    PartitionAction::Rebuild
                } else {
                    // Stale-by-id is fine: these cones are byte-identical
                    // between p0 and p1 (only module b changed).
                    PartitionAction::Reuse(extract_partition(&full0, &out0.log, pi))
                }
            })
            .collect();
        let mut inc = p1.clone();
        optimize_partial(&mut inc, None, &opts, Some(&plan), &mut Tracer::disabled());
        assert_eq!(
            hlo_ir::program_to_text(&full1),
            hlo_ir::program_to_text(&inc)
        );
    }

    #[test]
    fn zero_budget_partition_passes_bodies_through() {
        // Budget 0 closes every partition's budget: no pass runs anywhere,
        // so no inlining or cloning happens in any partition.
        let p0 = hlo_frontc::compile(&three_partition_modules()).unwrap();
        let mut p = p0.clone();
        let opts = HloOptions {
            budget_percent: 0,
            ..module_opts()
        };
        let report = optimize(&mut p, None, &opts);
        assert_eq!(report.inlines, 0, "{report}");
        assert_eq!(report.clones, 0);
        assert!(report.passes.is_empty());
        hlo_ir::verify_program(&p).unwrap();
    }

    #[test]
    fn small_batch_partitions_emit_decisions_in_partition_order() {
        // Three partitions at jobs=8 is below the pool's two-items-per-
        // worker floor, so planning falls back to the inline path; the
        // decision stream (the `--explain` output) must still come out in
        // partition order, identical to jobs=1.
        let p0 = hlo_frontc::compile(&three_partition_modules()).unwrap();
        let mut reports = Vec::new();
        for jobs in [1usize, 8] {
            let mut p = p0.clone();
            let opts = HloOptions {
                jobs,
                ..module_opts()
            };
            let mut tracer = Tracer::new(TraceLevel::Decisions);
            optimize_traced(&mut p, None, &opts, &mut tracer);
            reports.push((hlo_ir::program_to_text(&p), tracer.decision_report(None)));
        }
        assert_eq!(
            reports[0].0, reports[1].0,
            "program must not vary with jobs"
        );
        assert!(
            reports[0].1.contains("verdict=performed"),
            "expected decisions:\n{}",
            reports[0].1
        );
        assert_eq!(
            reports[0].1, reports[1].1,
            "decision order must not vary with jobs"
        );
    }

    #[test]
    fn strict_checking_is_deterministic_across_jobs() {
        let p0 = hlo_frontc::compile(&[("interp", INTERP_SRC)]).unwrap();
        let opts1 = HloOptions {
            check: CheckLevel::Strict,
            ..Default::default()
        };
        let mut a = p0.clone();
        let ra = optimize(&mut a, None, &opts1);
        let mut b = p0.clone();
        let rb = optimize(
            &mut b,
            None,
            &HloOptions {
                jobs: 4,
                ..opts1.clone()
            },
        );
        assert_eq!(hlo_ir::program_to_text(&a), hlo_ir::program_to_text(&b));
        assert_eq!(ra.diagnostics, rb.diagnostics);
        assert_eq!(ra.checks_run, rb.checks_run);
        assert_eq!(ra.introduced_diagnostics().count(), 0, "{ra}");
    }
}
