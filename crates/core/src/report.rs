//! Optimization reports — the raw material of the paper's Table 1.

/// Wall-clock vs cumulative-work time of one pipeline stage. For stages
/// that fan out over the worker pool, `work_us / wall_us` approximates the
/// effective parallelism (`≈ 1` at `jobs = 1`, `≈ N` on an
/// embarrassingly-parallel stage at `jobs = N`); sequential stages report
/// `work_us == wall_us`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageTiming {
    /// Stage name (`annotate`, `cleanup`, `inline.plan`, …). Per-pass
    /// stages are aggregated across passes under one name.
    pub stage: String,
    /// Elapsed wall-clock time, microseconds.
    pub wall_us: u64,
    /// Cumulative busy time summed over workers, microseconds.
    pub work_us: u64,
}

/// What one Clone+Inline pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassReport {
    /// Pass number (0-based).
    pub pass: usize,
    /// Inlines performed.
    pub inlines: u64,
    /// Clone bodies created.
    pub clones_created: u64,
    /// Clones reused from the database.
    pub clones_reused: u64,
    /// Call sites redirected to clones ("Clone Repls" in Table 1).
    pub clone_replacements: u64,
    /// Routines deleted after the pass.
    pub deletions: u64,
    /// Compile-cost estimate after the pass.
    pub cost_after: u64,
}

/// Aggregate report for one `optimize` run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HloReport {
    /// Total inlines (Table 1 "Inlines").
    pub inlines: u64,
    /// Total clone bodies created (Table 1 "Clones").
    pub clones: u64,
    /// Total call sites redirected to clones (Table 1 "Clone Repls").
    pub clone_replacements: u64,
    /// Total routines deleted (Table 1 "Deletions").
    pub deletions: u64,
    /// Calls to side-effect-free routines removed by interprocedural
    /// analysis (the 072.sc curses-stub effect).
    pub pure_calls_removed: u64,
    /// Additional unused-result calls removed because their callee's
    /// `hlo-ipa` summary proved it removable — sites the syntactic purity
    /// test above could not unlock (0 with `ipa off`).
    pub ipa_pure_calls: u64,
    /// Call results replaced by a constant because every return path of
    /// the callee yields it (`hlo-ipa` return-constancy; 0 with `ipa off`).
    pub ipa_const_folds: u64,
    /// Cross-call store-to-load forwards plus cross-call dead global
    /// stores deleted under summary alias screening (0 with `ipa off`).
    pub ipa_store_forwards: u64,
    /// Cold regions extracted by aggressive outlining (0 unless
    /// `enable_outline` is set).
    pub outlines: u64,
    /// Functions whose blocks were reordered by the final straightening
    /// step.
    pub straightened: u64,
    /// Compile-cost estimate before HLO ran (`Σ size²`).
    pub initial_cost: u64,
    /// Compile-cost estimate after HLO finished.
    pub final_cost: u64,
    /// The budget ceiling that was in force.
    pub budget_limit: u64,
    /// Per-pass breakdown.
    pub passes: Vec<PassReport>,
    /// Verify-each findings (empty when `HloOptions::check` is off, and on
    /// a healthy pipeline also when it is on). Findings with origin
    /// `"input"` were present before any pass ran.
    pub diagnostics: Vec<hlo_lint::Diagnostic>,
    /// How many pass boundaries the verify-each checker inspected.
    pub checks_run: u32,
    /// Time spent in verify-each batteries, in microseconds. Under
    /// parallel cleanup this is cumulative work across workers, not wall
    /// time.
    pub lint_time_us: u64,
    /// Functions annotated from the training-run profile database (0 for
    /// static-heuristic builds).
    pub profile_annotations: u64,
    /// The worker count the run actually used (after resolving
    /// `HloOptions::jobs == 0` to the hardware parallelism).
    pub jobs: u64,
    /// Per-stage wall-clock vs cumulative-work timings; the parallel
    /// speedup is `work_us / wall_us` per stage.
    pub stage_timings: Vec<StageTiming>,
    /// Wire-form keys [`HloReport::from_text`] did not recognize and
    /// skipped. Never serialized: a fresh report always has 0, and a
    /// round-trip through `to_text` resets it. Non-zero means the sender
    /// speaks a newer dialect — the skipped lines are counted, not lost
    /// silently.
    pub unknown_keys: u64,
}

impl HloReport {
    /// Modeled compile time in cost units: the final `Σ size²` (the
    /// quantity the budget limits). Callers measuring a P-scope compile
    /// add the instrumented compile and training-run cost on top.
    pub fn compile_time_units(&self) -> u64 {
        self.final_cost
    }

    /// Total inline + clone-replacement operations (the x-axis of the
    /// paper's Figure 8).
    pub fn operations(&self) -> u64 {
        self.inlines + self.clone_replacements
    }

    /// Verify-each findings attributed to a pipeline stage (excluding
    /// defects already present in the input program).
    pub fn introduced_diagnostics(&self) -> impl Iterator<Item = &hlo_lint::Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.pass_origin.as_deref() != Some(hlo_lint::INPUT_ORIGIN))
    }
}

impl HloReport {
    /// Serializes the report to the line-oriented wire form the
    /// optimization service ships back with cached results. Diagnostics
    /// are **elided** (only their count travels): the daemon runs with
    /// checking off by default, and a `Diagnostic` is a display artifact,
    /// not something a remote client replays.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("hlo-report v1\n");
        let mut n = |k: &str, v: u64| {
            let _ = writeln!(s, "{k} {v}");
        };
        n("inlines", self.inlines);
        n("clones", self.clones);
        n("clone_replacements", self.clone_replacements);
        n("deletions", self.deletions);
        n("pure_calls_removed", self.pure_calls_removed);
        n("ipa_pure_calls", self.ipa_pure_calls);
        n("ipa_const_folds", self.ipa_const_folds);
        n("ipa_store_forwards", self.ipa_store_forwards);
        n("outlines", self.outlines);
        n("straightened", self.straightened);
        n("initial_cost", self.initial_cost);
        n("final_cost", self.final_cost);
        n("budget_limit", self.budget_limit);
        n("checks_run", self.checks_run as u64);
        n("lint_time_us", self.lint_time_us);
        n("profile_annotations", self.profile_annotations);
        n("jobs", self.jobs);
        n("diagnostics_elided", self.diagnostics.len() as u64);
        for p in &self.passes {
            let _ = writeln!(
                s,
                "pass {} {} {} {} {} {} {}",
                p.pass,
                p.inlines,
                p.clones_created,
                p.clones_reused,
                p.clone_replacements,
                p.deletions,
                p.cost_after
            );
        }
        for t in &self.stage_timings {
            let _ = writeln!(s, "stage {} {} {}", t.stage, t.wall_us, t.work_us);
        }
        s.push_str("end\n");
        s
    }

    /// Parses [`HloReport::to_text`] output. The elided diagnostics come
    /// back as an empty list regardless of `diagnostics_elided`. Unknown
    /// keys are skipped and tallied in [`HloReport::unknown_keys`], so a
    /// newer daemon's report (with fields this build does not know) still
    /// parses; malformed values under *known* keys remain hard errors.
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("hlo-report v1") {
            return Err("missing `hlo-report v1` header".to_string());
        }
        let mut r = HloReport::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            let num = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("bad count `{v}` in `{line}`"))
            };
            match key {
                "inlines" => r.inlines = num(val)?,
                "clones" => r.clones = num(val)?,
                "clone_replacements" => r.clone_replacements = num(val)?,
                "deletions" => r.deletions = num(val)?,
                "pure_calls_removed" => r.pure_calls_removed = num(val)?,
                "ipa_pure_calls" => r.ipa_pure_calls = num(val)?,
                "ipa_const_folds" => r.ipa_const_folds = num(val)?,
                "ipa_store_forwards" => r.ipa_store_forwards = num(val)?,
                "outlines" => r.outlines = num(val)?,
                "straightened" => r.straightened = num(val)?,
                "initial_cost" => r.initial_cost = num(val)?,
                "final_cost" => r.final_cost = num(val)?,
                "budget_limit" => r.budget_limit = num(val)?,
                "checks_run" => r.checks_run = num(val)? as u32,
                "lint_time_us" => r.lint_time_us = num(val)?,
                "profile_annotations" => r.profile_annotations = num(val)?,
                "jobs" => r.jobs = num(val)?,
                "diagnostics_elided" => {}
                "pass" => {
                    let f: Vec<u64> = val.split_whitespace().map(num).collect::<Result<_, _>>()?;
                    if f.len() != 7 {
                        return Err(format!("pass record needs 7 fields: `{line}`"));
                    }
                    r.passes.push(PassReport {
                        pass: f[0] as usize,
                        inlines: f[1],
                        clones_created: f[2],
                        clones_reused: f[3],
                        clone_replacements: f[4],
                        deletions: f[5],
                        cost_after: f[6],
                    });
                }
                "stage" => {
                    let mut parts = val.split_whitespace();
                    let stage = parts.next().unwrap_or_default().to_string();
                    let wall_us = num(parts.next().ok_or("stage needs wall_us")?)?;
                    let work_us = num(parts.next().ok_or("stage needs work_us")?)?;
                    r.stage_timings.push(StageTiming {
                        stage,
                        wall_us,
                        work_us,
                    });
                }
                "end" => break,
                _ => r.unknown_keys += 1,
            }
        }
        Ok(r)
    }
}

impl std::fmt::Display for HloReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "HLO: {} inlines, {} clones ({} repls), {} deletions, {} pure calls removed",
            self.inlines,
            self.clones,
            self.clone_replacements,
            self.deletions,
            self.pure_calls_removed
        )?;
        if self.ipa_pure_calls + self.ipa_const_folds + self.ipa_store_forwards > 0 {
            writeln!(
                f,
                "ipa: {} summary-unlocked pure calls, {} const returns folded, {} cross-call forwards",
                self.ipa_pure_calls, self.ipa_const_folds, self.ipa_store_forwards
            )?;
        }
        write!(
            f,
            "cost {} -> {} (budget {})",
            self.initial_cost, self.final_cost, self.budget_limit
        )?;
        if self.jobs > 1 {
            let wall: u64 = self.stage_timings.iter().map(|s| s.wall_us).sum();
            let work: u64 = self.stage_timings.iter().map(|s| s.work_us).sum();
            write!(
                f,
                "\njobs {}: {} us wall, {} us work ({:.2}x effective)",
                self.jobs,
                wall,
                work,
                if wall > 0 {
                    work as f64 / wall as f64
                } else {
                    1.0
                }
            )?;
        }
        if self.checks_run > 0 {
            write!(
                f,
                "\nverify-each: {} boundaries checked in {} us, {} diagnostics",
                self.checks_run,
                self.lint_time_us,
                self.diagnostics.len()
            )?;
            for d in &self.diagnostics {
                write!(f, "\n  {d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_counts_inlines_and_replacements() {
        let r = HloReport {
            inlines: 3,
            clone_replacements: 2,
            ..Default::default()
        };
        assert_eq!(r.operations(), 5);
    }

    #[test]
    fn wire_text_roundtrip() {
        let r = HloReport {
            inlines: 12,
            clones: 3,
            clone_replacements: 5,
            deletions: 2,
            pure_calls_removed: 1,
            initial_cost: 1000,
            final_cost: 1900,
            budget_limit: 2000,
            checks_run: 4,
            lint_time_us: 77,
            profile_annotations: 6,
            jobs: 2,
            passes: vec![PassReport {
                pass: 0,
                inlines: 12,
                clones_created: 3,
                clones_reused: 1,
                clone_replacements: 5,
                deletions: 2,
                cost_after: 1900,
            }],
            stage_timings: vec![StageTiming {
                stage: "inline.plan".to_string(),
                wall_us: 10,
                work_us: 30,
            }],
            ..Default::default()
        };
        let back = HloReport::from_text(&r.to_text()).unwrap();
        assert_eq!(r, back);
        assert!(HloReport::from_text("not a report").is_err());
    }

    #[test]
    fn unknown_keys_are_counted_not_fatal() {
        let r =
            HloReport::from_text("hlo-report v1\nbogus 3\ninlines 2\nfuture_field a b c\nend\n")
                .unwrap();
        assert_eq!(r.inlines, 2);
        assert_eq!(r.unknown_keys, 2);
        // Malformed values under known keys are still hard errors.
        assert!(HloReport::from_text("hlo-report v1\ninlines zebra\nend").is_err());
        // A fresh serialization never carries the tally.
        let mut tallied = HloReport::default();
        tallied.unknown_keys = 9;
        assert_eq!(
            HloReport::from_text(&tallied.to_text())
                .unwrap()
                .unknown_keys,
            0
        );
    }

    #[test]
    fn display_is_informative() {
        let r = HloReport {
            inlines: 1,
            initial_cost: 10,
            final_cost: 15,
            budget_limit: 20,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("1 inlines"));
        assert!(s.contains("10 -> 15"));
    }
}
