//! Optimization reports — the raw material of the paper's Table 1.

/// Wall-clock vs cumulative-work time of one pipeline stage. For stages
/// that fan out over the worker pool, `work_us / wall_us` approximates the
/// effective parallelism (`≈ 1` at `jobs = 1`, `≈ N` on an
/// embarrassingly-parallel stage at `jobs = N`); sequential stages report
/// `work_us == wall_us`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageTiming {
    /// Stage name (`annotate`, `cleanup`, `inline.plan`, …). Per-pass
    /// stages are aggregated across passes under one name.
    pub stage: String,
    /// Elapsed wall-clock time, microseconds.
    pub wall_us: u64,
    /// Cumulative busy time summed over workers, microseconds.
    pub work_us: u64,
}

/// What one Clone+Inline pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassReport {
    /// Pass number (0-based).
    pub pass: usize,
    /// Inlines performed.
    pub inlines: u64,
    /// Clone bodies created.
    pub clones_created: u64,
    /// Clones reused from the database.
    pub clones_reused: u64,
    /// Call sites redirected to clones ("Clone Repls" in Table 1).
    pub clone_replacements: u64,
    /// Routines deleted after the pass.
    pub deletions: u64,
    /// Compile-cost estimate after the pass.
    pub cost_after: u64,
}

/// Aggregate report for one `optimize` run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HloReport {
    /// Total inlines (Table 1 "Inlines").
    pub inlines: u64,
    /// Total clone bodies created (Table 1 "Clones").
    pub clones: u64,
    /// Total call sites redirected to clones (Table 1 "Clone Repls").
    pub clone_replacements: u64,
    /// Total routines deleted (Table 1 "Deletions").
    pub deletions: u64,
    /// Calls to side-effect-free routines removed by interprocedural
    /// analysis (the 072.sc curses-stub effect).
    pub pure_calls_removed: u64,
    /// Cold regions extracted by aggressive outlining (0 unless
    /// `enable_outline` is set).
    pub outlines: u64,
    /// Functions whose blocks were reordered by the final straightening
    /// step.
    pub straightened: u64,
    /// Compile-cost estimate before HLO ran (`Σ size²`).
    pub initial_cost: u64,
    /// Compile-cost estimate after HLO finished.
    pub final_cost: u64,
    /// The budget ceiling that was in force.
    pub budget_limit: u64,
    /// Per-pass breakdown.
    pub passes: Vec<PassReport>,
    /// Verify-each findings (empty when `HloOptions::check` is off, and on
    /// a healthy pipeline also when it is on). Findings with origin
    /// `"input"` were present before any pass ran.
    pub diagnostics: Vec<hlo_lint::Diagnostic>,
    /// How many pass boundaries the verify-each checker inspected.
    pub checks_run: u32,
    /// Time spent in verify-each batteries, in microseconds. Under
    /// parallel cleanup this is cumulative work across workers, not wall
    /// time.
    pub lint_time_us: u64,
    /// Functions annotated from the training-run profile database (0 for
    /// static-heuristic builds).
    pub profile_annotations: u64,
    /// The worker count the run actually used (after resolving
    /// `HloOptions::jobs == 0` to the hardware parallelism).
    pub jobs: u64,
    /// Per-stage wall-clock vs cumulative-work timings; the parallel
    /// speedup is `work_us / wall_us` per stage.
    pub stage_timings: Vec<StageTiming>,
}

impl HloReport {
    /// Modeled compile time in cost units: the final `Σ size²` (the
    /// quantity the budget limits). Callers measuring a P-scope compile
    /// add the instrumented compile and training-run cost on top.
    pub fn compile_time_units(&self) -> u64 {
        self.final_cost
    }

    /// Total inline + clone-replacement operations (the x-axis of the
    /// paper's Figure 8).
    pub fn operations(&self) -> u64 {
        self.inlines + self.clone_replacements
    }

    /// Verify-each findings attributed to a pipeline stage (excluding
    /// defects already present in the input program).
    pub fn introduced_diagnostics(&self) -> impl Iterator<Item = &hlo_lint::Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.pass_origin.as_deref() != Some(hlo_lint::INPUT_ORIGIN))
    }
}

impl std::fmt::Display for HloReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "HLO: {} inlines, {} clones ({} repls), {} deletions, {} pure calls removed",
            self.inlines,
            self.clones,
            self.clone_replacements,
            self.deletions,
            self.pure_calls_removed
        )?;
        write!(
            f,
            "cost {} -> {} (budget {})",
            self.initial_cost, self.final_cost, self.budget_limit
        )?;
        if self.jobs > 1 {
            let wall: u64 = self.stage_timings.iter().map(|s| s.wall_us).sum();
            let work: u64 = self.stage_timings.iter().map(|s| s.work_us).sum();
            write!(
                f,
                "\njobs {}: {} us wall, {} us work ({:.2}x effective)",
                self.jobs,
                wall,
                work,
                if wall > 0 {
                    work as f64 / wall as f64
                } else {
                    1.0
                }
            )?;
        }
        if self.checks_run > 0 {
            write!(
                f,
                "\nverify-each: {} boundaries checked in {} us, {} diagnostics",
                self.checks_run,
                self.lint_time_us,
                self.diagnostics.len()
            )?;
            for d in &self.diagnostics {
                write!(f, "\n  {d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_counts_inlines_and_replacements() {
        let r = HloReport {
            inlines: 3,
            clone_replacements: 2,
            ..Default::default()
        };
        assert_eq!(r.operations(), 5);
    }

    #[test]
    fn display_is_informative() {
        let r = HloReport {
            inlines: 1,
            initial_cost: 10,
            final_cost: 15,
            budget_limit: 20,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("1 inlines"));
        assert!(s.contains("10 -> 15"));
    }
}
