//! A dependency-free scoped worker pool for the parallel HLO pipeline.
//!
//! The registry is offline, so no rayon: this is `std::thread::scope` plus
//! an atomic work counter. Determinism is the design constraint — every
//! helper returns results **in input order** regardless of which worker
//! claimed which item, so a caller that merges results index-by-index
//! produces byte-identical output at any job count. Each helper also
//! reports *cumulative work* (the sum of per-worker busy time) next to the
//! caller's wall clock, which is how [`crate::HloReport`] makes the
//! parallel speedup observable: `work / wall ≈ effective parallelism`.

use hlo_ir::{FuncId, Program};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resolves a requested job count: `0` means "use all available
/// hardware parallelism", anything else is taken literally.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Results of one parallel stage: per-item outputs in input order, plus
/// the cumulative busy time across workers.
#[derive(Debug)]
pub struct ParOutcome<R> {
    /// One result per input item, in input order.
    pub results: Vec<R>,
    /// Total busy time summed over workers (≈ `jobs ×` wall time when the
    /// stage scales perfectly; == wall time when `jobs == 1`).
    pub work: Duration,
}

/// Below this many items per requested worker a stage runs inline: with
/// fewer than two items to amortize each spawned thread, pool spin-up
/// costs more wall time than it saves (BENCH_parallel.json measured the
/// `annotate` stage at ~2.4 ms wall for ~70 µs of work — pure overhead).
/// The sequential and parallel paths produce identical results, so the
/// cutover is invisible except in wall time.
const MIN_ITEMS_PER_WORKER: usize = 2;

/// True when a stage of `n` items should skip the pool and run inline.
fn too_small_for_pool(jobs: usize, n: usize) -> bool {
    jobs <= 1 || n <= 1 || n < jobs * MIN_ITEMS_PER_WORKER
}

/// Maps `f` over `items` with up to `jobs` workers. Results come back in
/// input order; `f` receives the item index. Small batches (`jobs <= 1`,
/// one item, or fewer than two items per worker) run inline with zero
/// thread overhead.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if too_small_for_pool(jobs, n) {
        let start = Instant::now();
        let results = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        return ParOutcome {
            results,
            work: start.elapsed(),
        };
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut work = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let start = Instant::now();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    (local, start.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (local, busy) = match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            work += busy;
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });
    ParOutcome {
        results: slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect(),
        work,
    }
}

/// A raw pointer to the function table that workers index *disjointly*.
/// Soundness: each index is claimed by exactly one worker via the atomic
/// counter (or the indices are distinct by construction in
/// [`par_funcs_mut`]), so no `&mut Function` aliases another.
struct FuncTablePtr(*mut hlo_ir::Function);
unsafe impl Sync for FuncTablePtr {}

/// Maps `f` mutably over every function of `p` with up to `jobs` workers.
/// Each function is visited by exactly one worker; results come back in
/// function order.
pub fn par_map_funcs<R, F>(jobs: usize, p: &mut Program, f: F) -> ParOutcome<R>
where
    R: Send,
    F: Fn(FuncId, &mut hlo_ir::Function) -> R + Sync,
{
    let all: Vec<FuncId> = (0..p.funcs.len()).map(|i| FuncId(i as u32)).collect();
    par_funcs_mut(jobs, p, &all, f)
}

/// Maps `f` mutably over the distinct functions named by `ids` with up to
/// `jobs` workers. Results come back in `ids` order.
///
/// # Panics
/// Panics (debug builds) if `ids` contains duplicates — disjointness is
/// what makes the parallel mutable access sound.
pub fn par_funcs_mut<R, F>(jobs: usize, p: &mut Program, ids: &[FuncId], f: F) -> ParOutcome<R>
where
    R: Send,
    F: Fn(FuncId, &mut hlo_ir::Function) -> R + Sync,
{
    debug_assert!(
        {
            let mut seen = ids.to_vec();
            seen.sort();
            seen.windows(2).all(|w| w[0] != w[1])
        },
        "par_funcs_mut requires distinct function ids"
    );
    let n = ids.len();
    if too_small_for_pool(jobs, n) {
        let start = Instant::now();
        let results = ids.iter().map(|&id| f(id, p.func_mut(id))).collect();
        return ParOutcome {
            results,
            work: start.elapsed(),
        };
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let table = FuncTablePtr(p.funcs.as_mut_ptr());
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut work = Duration::ZERO;
    std::thread::scope(|s| {
        let table = &table;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let start = Instant::now();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let id = ids[i];
                        // SAFETY: `ids` are distinct and each list index is
                        // claimed by exactly one worker, so this `&mut` does
                        // not alias any other worker's. The table itself is
                        // not resized while the scope is alive (we hold the
                        // only `&mut Program`).
                        let func = unsafe { &mut *table.0.add(id.index()) };
                        local.push((i, f(id, func)));
                    }
                    (local, start.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (local, busy) = match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            work += busy;
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });
    ParOutcome {
        results: slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect(),
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        for jobs in [1, 2, 4, 8] {
            let out = par_map(jobs, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out.results.len(), items.len());
            for (i, r) in out.results.iter().enumerate() {
                assert_eq!(*r, (i * i) as u64);
            }
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).results.is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1).results, vec![8]);
    }

    #[test]
    fn small_batches_run_inline_with_identical_results() {
        // 7 items at jobs=8 is below the 2-items-per-worker floor: the
        // stage must run inline (work == wall, no pool) and still return
        // the same results as the pooled path.
        assert!(too_small_for_pool(8, 7));
        assert!(!too_small_for_pool(4, 8));
        let items: Vec<u64> = (0..7).collect();
        let out = par_map(8, &items, |_, &x| x + 1);
        assert_eq!(out.results, (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn effective_jobs_zero_means_hardware() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn par_funcs_mut_touches_each_function_once() {
        let p = test_program(9);
        for jobs in [1, 2, 8] {
            let mut q = p.clone();
            let ids: Vec<FuncId> = (0..q.funcs.len()).map(|i| FuncId(i as u32)).collect();
            let out = par_funcs_mut(jobs, &mut q, &ids, |id, f| {
                f.num_regs += 1;
                id.index() as u64
            });
            assert_eq!(out.results, (0..9u64).collect::<Vec<_>>());
            for (i, f) in q.funcs.iter().enumerate() {
                assert_eq!(f.num_regs, p.funcs[i].num_regs + 1);
            }
        }
    }

    #[test]
    fn par_map_funcs_matches_sequential_result() {
        let p0 = test_program(17);
        let mut seq = p0.clone();
        let seq_out = par_map_funcs(1, &mut seq, |id, f| {
            f.num_regs += id.0;
            f.num_regs
        });
        let mut par = p0;
        let par_out = par_map_funcs(8, &mut par, |id, f| {
            f.num_regs += id.0;
            f.num_regs
        });
        assert_eq!(seq_out.results, par_out.results);
        for (a, b) in seq.funcs.iter().zip(par.funcs.iter()) {
            assert_eq!(a.num_regs, b.num_regs);
        }
    }

    fn test_program(n: u32) -> Program {
        use hlo_ir::{FunctionBuilder, Linkage, ProgramBuilder, Type};
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        for i in 0..n {
            let mut f = FunctionBuilder::new(format!("f{i}"), m, 0);
            let e = f.entry_block();
            f.ret(e, None);
            pb.add_function(f.finish(Linkage::Public, Type::Void));
        }
        pb.finish(Some(FuncId(0)))
    }
}
