//! The cloning pass (paper §2.3, Figure 3), partitioned for the
//! parallel pipeline.
//!
//! Clone groups are built per call-graph partition (a group's sites all
//! call one callee, and a callee and its callers share a partition by
//! construction), so group building fans out over the worker pool without
//! any cross-partition coordination. Selection and materialization stay
//! sequential in partition order: they mutate the program, the clone
//! database and the budget, and sequential order is what keeps `FuncId`
//! allocation — and therefore the printed program — byte-identical at any
//! worker count.

use crate::budget::Budget;
use crate::driver::{HloOptions, Scope};
use crate::inliner::site_str;
use crate::legality::clone_restriction;
use crate::par::{effective_jobs, par_map};
use crate::transform::{make_clone, redirect_site_to_clone, scale_profile};
use hlo_analysis::{CallGraph, CallGraphCache, CallGraphPartition, CallSiteRef};
use hlo_ir::{Callee, ConstVal, FuncId, Function, Inst, Linkage, Operand, Program};
use hlo_trace::{DecisionEvent, DecisionKind, Tracer, Verdict};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// A clone specification: the callee plus the `(parameter, constant)`
/// bindings the clone hard-wires. Bindings are sorted by parameter index,
/// making the spec a canonical clone-database key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CloneSpec {
    /// The routine to clone.
    pub callee: FuncId,
    /// Sorted `(param index, constant)` bindings.
    pub bindings: Vec<(u32, ConstVal)>,
}

impl CloneSpec {
    /// The constant bound to parameter `i`, if any.
    pub fn binding(&self, i: u32) -> Option<ConstVal> {
        self.bindings.iter().find(|(p, _)| *p == i).map(|(_, c)| *c)
    }
}

/// The clone database: specs already materialized in earlier passes are
/// reused instead of duplicated (paper §2.3 — "if a given clone exists in
/// the database then it is simply reused").
pub type CloneDb = HashMap<CloneSpec, FuncId>;

/// Result of one cloning pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClonePassResult {
    /// New clone bodies created.
    pub clones_created: u64,
    /// Ids of the clone bodies created this pass, in creation order. The
    /// incremental driver uses these to extend its partition mask so the
    /// rest of the partition's pipeline sees the new functions.
    pub created_ids: Vec<FuncId>,
    /// Clones found ready-made in the database.
    pub clones_reused: u64,
    /// Call sites redirected to clones.
    pub sites_replaced: u64,
    /// Wall-clock time of usage analysis + group building.
    pub plan_wall: Duration,
    /// Cumulative planning work summed over workers.
    pub plan_work: Duration,
    /// Wall-clock time of selection + materialization (sequential).
    pub apply_wall: Duration,
    /// Apply work (== wall; materialization is sequential).
    pub apply_work: Duration,
}

/// Parameter-usage weights: how much a routine would benefit from knowing
/// each formal is a constant. Uses are weighed by the importance of the
/// use and the block's frequency relative to the entry, with "special
/// emphasis ... on parameter values that reach the function position at an
/// indirect call site" (paper §2.3).
pub(crate) fn param_usage(f: &Function) -> Vec<f64> {
    let mut w = vec![0.0; f.params as usize];
    for (bid, block) in f.iter_blocks() {
        let rf = f.rel_freq(bid);
        for inst in &block.insts {
            let weight_of_use = |op: &Operand, base: f64, acc: &mut Vec<f64>| {
                if let Operand::Reg(r) = op {
                    if r.0 < f.params {
                        acc[r.index()] += base * rf;
                    }
                }
            };
            match inst {
                Inst::Br { cond, .. } => weight_of_use(cond, 8.0, &mut w),
                Inst::Bin { op, a, b, .. } => {
                    let cmp = matches!(
                        op,
                        hlo_ir::BinOp::Eq
                            | hlo_ir::BinOp::Ne
                            | hlo_ir::BinOp::Lt
                            | hlo_ir::BinOp::Le
                            | hlo_ir::BinOp::Gt
                            | hlo_ir::BinOp::Ge
                    );
                    let with_const =
                        matches!(a, Operand::Const(_)) || matches!(b, Operand::Const(_));
                    let base = match (cmp, with_const) {
                        (true, true) => 6.0, // foldable test: kills a branch
                        (true, false) => 1.0,
                        (false, true) => 2.0, // foldable arithmetic
                        (false, false) => 0.5,
                    };
                    weight_of_use(a, base, &mut w);
                    weight_of_use(b, base, &mut w);
                }
                Inst::Call { callee, args, .. } => {
                    if let Callee::Indirect(op) = callee {
                        // The emphasized case: a constant here makes the
                        // call direct and later inlinable.
                        weight_of_use(op, 20.0, &mut w);
                    }
                    for a in args {
                        // Pass-through constants are not modeled
                        // interprocedurally (paper: "we do not model
                        // interprocedural effects").
                        weight_of_use(a, 0.2, &mut w);
                    }
                }
                Inst::Load { base, offset, .. } => {
                    weight_of_use(base, 1.0, &mut w);
                    weight_of_use(offset, 1.0, &mut w);
                }
                Inst::Store {
                    base,
                    offset,
                    value,
                } => {
                    weight_of_use(base, 1.0, &mut w);
                    weight_of_use(offset, 1.0, &mut w);
                    weight_of_use(value, 0.2, &mut w);
                }
                other => {
                    other.for_each_use(|op| weight_of_use(op, 0.5, &mut w));
                }
            }
        }
    }
    w
}

/// Minimum per-parameter usefulness for a binding to enter a clone spec.
const MIN_USE_WEIGHT: f64 = 0.5;

/// One clone group: a spec plus every compatible call site (Figure 3).
#[derive(Debug, Clone)]
struct CloneGroup {
    spec: CloneSpec,
    sites: Vec<CallSiteRef>,
    benefit: f64,
    /// Whether redirecting every site provably retires the clonee, making
    /// the group's compile-time cost zero.
    retires_clonee: bool,
}

/// Per-edge calling context: constant actuals.
fn context_of(p: &Program, site: &CallSiteRef) -> Vec<Option<ConstVal>> {
    match &p.func(site.caller).blocks[site.block.index()].insts[site.inst] {
        Inst::Call { args, .. } => args
            .iter()
            .map(|a| match a {
                Operand::Const(c) => Some(*c),
                Operand::Reg(_) => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Builds one partition's clone groups greedily (Figure 3 "build clone
/// groups"), scanning only the partition's own edges. Read-only; when
/// `explain` is set, legality rejections come back as decision events
/// (seed-loop only, so each restricted edge reports exactly once).
#[allow(clippy::too_many_arguments)] // mirrors the pass plumbing
fn build_groups(
    p: &Program,
    cg: &CallGraph,
    part: &CallGraphPartition,
    usage: &[Vec<f64>],
    summaries: Option<&hlo_ipa::Summaries>,
    opts: &HloOptions,
    pass: u32,
    explain: bool,
) -> (Vec<CloneGroup>, Vec<DecisionEvent>) {
    let mut claimed: HashSet<usize> = HashSet::new();
    let mut groups: Vec<CloneGroup> = Vec::new();
    let mut events: Vec<DecisionEvent> = Vec::new();
    for &ei in &part.edge_indices {
        if claimed.contains(&ei) {
            continue;
        }
        let edge = &cg.edges[ei];
        if let Some(r) = clone_restriction(p, &edge.site, opts.scope) {
            if explain {
                events.push(DecisionEvent {
                    pass,
                    kind: DecisionKind::Clone,
                    site: site_str(p, &edge.site),
                    callee: p.func(edge.callee).name.clone(),
                    verdict: Verdict::Rejected,
                    reason: r.code(),
                    benefit: 0.0,
                    cost: 0,
                    budget_before: 0,
                    budget_after: 0,
                    profile_weight: site_weight(p, &edge.site),
                });
            }
            continue;
        }
        let callee = edge.callee;
        let ctx = context_of(p, &edge.site);
        let use_w = &usage[callee.index()];
        let mut bindings: Vec<(u32, ConstVal)> = Vec::new();
        for (i, c) in ctx.iter().enumerate() {
            if let Some(c) = c {
                if use_w.get(i).copied().unwrap_or(0.0) >= MIN_USE_WEIGHT {
                    bindings.push((i as u32, *c));
                }
            }
        }
        if bindings.is_empty() {
            continue;
        }
        let spec = CloneSpec { callee, bindings };

        // Gather all compatible edges into the group. Every edge calling
        // this callee lives in this partition, so the partition-local scan
        // sees exactly what a whole-program scan would.
        let mut sites = Vec::new();
        let mut member_edges = Vec::new();
        for &ej in &part.edge_indices {
            if claimed.contains(&ej) {
                continue;
            }
            let other = &cg.edges[ej];
            if other.callee != callee {
                continue;
            }
            if clone_restriction(p, &other.site, opts.scope).is_some() {
                continue;
            }
            let octx = context_of(p, &other.site);
            let matches = spec
                .bindings
                .iter()
                .all(|(i, c)| octx.get(*i as usize).copied().flatten() == Some(*c));
            if matches {
                sites.push(other.site);
                member_edges.push(ej);
            }
        }
        debug_assert!(!sites.is_empty());
        for ej in member_edges {
            claimed.insert(ej);
        }

        // Benefit: calls redirected × value of the bound context.
        let value: f64 = spec.bindings.iter().map(|(i, _)| use_w[*i as usize]).sum();
        let calls: f64 = sites
            .iter()
            .map(|s| {
                p.func(s.caller)
                    .profile
                    .as_ref()
                    .map(|pr| pr.blocks[s.block.index()])
                    .unwrap_or(1.0)
            })
            .sum();
        let mut benefit = calls * value;
        // A removable clonee's specialized body folds without any effect
        // ordering to respect — same bonus the inliner applies.
        if summaries.is_some_and(|s| s.funcs[callee.index()].removable()) {
            benefit *= crate::inliner::IPA_PURE_BONUS;
        }

        // Does the group retire the clonee? (All direct edges redirected,
        // no address taken, deletable linkage under this scope.)
        let callee_fn = p.func(callee);
        let all_edges_of_callee = cg.callers_of[callee.index()].len();
        let deletable_linkage =
            callee_fn.linkage == Linkage::Static || opts.scope == Scope::CrossModule;
        let retires_clonee = sites.len() == all_edges_of_callee
            && !cg.address_taken[callee.index()]
            && Some(callee) != p.entry
            && deletable_linkage;

        groups.push(CloneGroup {
            spec,
            sites,
            benefit,
            retires_clonee,
        });
    }
    (groups, events)
}

/// The profile count of a call site's block (1.0 when unannotated).
fn site_weight(p: &Program, site: &CallSiteRef) -> f64 {
    p.func(site.caller)
        .profile
        .as_ref()
        .map(|pr| pr.blocks[site.block.index()])
        .unwrap_or(1.0)
}

/// One partition's ranked groups plus its slice of the stage budget.
struct PartitionGroups {
    groups: Vec<CloneGroup>,
    cost: u64,
    share: u64,
}

/// Runs one cloning pass under the stage budget. `ops_left` is the
/// Figure 8 knob: each site replacement consumes one operation.
#[allow(clippy::too_many_arguments)] // mirrors `inline_pass` plus the cross-pass clone database
pub fn clone_pass(
    p: &mut Program,
    budget: &mut Budget,
    pass: usize,
    opts: &HloOptions,
    mask: Option<&[bool]>,
    db: &mut CloneDb,
    ops_left: &mut Option<u64>,
    cache: &mut CallGraphCache,
    tracer: &mut Tracer,
) -> ClonePassResult {
    let mut result = ClonePassResult::default();
    let jobs = effective_jobs(opts.jobs);
    let explain = tracer.decisions_enabled();
    let plan_start = Instant::now();
    let mut par_work = Duration::ZERO;
    let mut par_wall = Duration::ZERO;

    // Per-routine parameter usage (Figure 3 "setup"), one function per
    // work item.
    let t = Instant::now();
    let usage_out = par_map(jobs, &p.funcs, |_, f| param_usage(f));
    par_wall += t.elapsed();
    let usage = usage_out.results;
    par_work += usage_out.work;

    // Build clone groups, one partition per work item. The workers'
    // legality-rejection events are absorbed sequentially in partition
    // order — the order a sequential run would emit them.
    let mut parts: Vec<PartitionGroups> = {
        let cg = cache.graph(p);
        // Under a cache-partition mask, drop whole live components up
        // front: a live component never straddles cache partitions, so
        // its first member decides for all of them.
        let partitions: Vec<_> = cg
            .partitions()
            .into_iter()
            .filter(|part| {
                let selected =
                    mask.is_none_or(|m| m.get(part.funcs[0].index()).copied().unwrap_or(false));
                debug_assert!(
                    mask.is_none()
                        || !selected
                        || part.funcs.iter().all(|&f| mask
                            .unwrap()
                            .get(f.index())
                            .copied()
                            .unwrap_or(false))
                );
                selected
            })
            .collect();
        let p_ref: &Program = p;
        let summaries = opts.ipa.then(|| hlo_ipa::Summaries::compute(p_ref, cg));
        let t = Instant::now();
        let out = par_map(jobs, &partitions, |_, part| {
            build_groups(
                p_ref,
                cg,
                part,
                &usage,
                summaries.as_ref(),
                opts,
                pass as u32,
                explain,
            )
        });
        par_wall += t.elapsed();
        par_work += out.work;
        let mut parts = Vec::new();
        for (part, (mut groups, events)) in partitions.iter().zip(out.results) {
            for e in events {
                tracer.decision(e);
            }
            if groups.is_empty() {
                continue;
            }
            // Rank by benefit (Figure 3 "select clones"); the stable
            // sort breaks ties by discovery (edge) order.
            groups.sort_by(|a, b| {
                b.benefit
                    .partial_cmp(&a.benefit)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let cost = part
                .funcs
                .iter()
                .map(|&f| {
                    let s = p_ref.func(f).size();
                    s * s
                })
                .sum();
            parts.push(PartitionGroups {
                groups,
                cost,
                share: 0,
            });
        }
        parts
    };

    // Split the stage headroom proportionally to partition compile cost
    // (floor division: shares never sum past the headroom; one active
    // partition gets it all, reproducing the unpartitioned behaviour).
    let headroom = budget.stage_limit(pass).saturating_sub(budget.current());
    let total_cost: u64 = parts.iter().map(|t| t.cost).sum();
    for t in &mut parts {
        t.share = ((headroom as u128 * t.cost as u128) / total_cost.max(1) as u128) as u64;
    }
    result.plan_wall = plan_start.elapsed();
    // Work = the sequential remainder (graph query, ranking, shares) plus
    // the parallel sections' cumulative worker time.
    result.plan_work = result.plan_wall.saturating_sub(par_wall) + par_work;

    // Select under the stage budget, sequentially in partition order.
    let apply_start = Instant::now();
    'parts: for part in parts {
        let mut spent = 0u64;
        for g in part.groups {
            if let Some(0) = ops_left {
                break 'parts;
            }
            // A database entry is only reusable while the clone is still
            // live: a clone whose callers were all inlined or deleted gets
            // reaped by routine deletion, and its emptied husk must never
            // be resurrected (it no longer has the clonee's behaviour).
            let db_hit = opts.clone_db_reuse
                && db
                    .get(&g.spec)
                    .is_some_and(|&id| p.module(p.func(id).module).funcs.contains(&id));
            let callee_size = p.func(g.spec.callee).size();
            let cost = if g.retires_clonee || db_hit {
                0
            } else {
                callee_size * callee_size
            };
            if spent.saturating_add(cost) > part.share || !budget.fits(pass, cost) {
                if explain {
                    tracer.decision(DecisionEvent {
                        pass: pass as u32,
                        kind: DecisionKind::Clone,
                        site: site_str(p, &g.sites[0]),
                        callee: p.func(g.spec.callee).name.clone(),
                        verdict: Verdict::Deferred,
                        reason: "budget-discarded",
                        benefit: g.benefit,
                        cost,
                        budget_before: budget.current(),
                        budget_after: budget.current(),
                        profile_weight: site_weight(p, &g.sites[0]),
                    });
                }
                continue; // discarded; may be recreated next pass
            }
            let budget_before = budget.current();
            let first_site = g.sites[0];

            // Materialize through the database.
            let mut created = false;
            let clone_id = match db.get(&g.spec) {
                Some(&id) if db_hit => {
                    result.clones_reused += 1;
                    id
                }
                _ => {
                    let id = make_clone(p, &g.spec);
                    db.insert(g.spec.clone(), id);
                    result.clones_created += 1;
                    // Split the clonee's profile between clone and original
                    // by the group's share of entries.
                    let group_calls: f64 = g
                        .sites
                        .iter()
                        .map(|s| {
                            p.func(s.caller)
                                .profile
                                .as_ref()
                                .map(|pr| pr.blocks[s.block.index()])
                                .unwrap_or(1.0)
                        })
                        .sum();
                    let entry = p
                        .func(g.spec.callee)
                        .entry_count()
                        .filter(|&e| e > 0.0)
                        .unwrap_or_else(|| group_calls.max(1.0));
                    let share = (group_calls / entry).clamp(0.0, 1.0);
                    scale_profile(&mut p.func_mut(id).profile, share);
                    scale_profile(&mut p.func_mut(g.spec.callee).profile, 1.0 - share);
                    result.created_ids.push(id);
                    created = true;
                    id
                }
            };

            // Redirect the group's call sites; each rewritten caller's
            // cached scan goes stale. (New clone bodies need no
            // invalidation — the cache picks up appended functions.)
            for site in &g.sites {
                if let Some(left) = ops_left {
                    if *left == 0 {
                        break;
                    }
                    *left -= 1;
                }
                redirect_site_to_clone(p, site, &g.spec, clone_id);
                cache.invalidate(site.caller);
                result.sites_replaced += 1;
            }

            // Optimize the new clone so the bound constants take effect
            // before costing (Figure 3 "optimize clones and recalibrate").
            // Reused clones were already paid for when they were created.
            let mut charged = 0u64;
            if created {
                hlo_opt::optimize_function(p.func_mut(clone_id));
                let s = p.func(clone_id).size();
                budget.charge(s * s);
                spent = spent.saturating_add(s * s);
                charged = s * s;
            }
            if explain {
                // One event per group: the first site stands for the
                // group, the cost is what was actually charged.
                tracer.decision(DecisionEvent {
                    pass: pass as u32,
                    kind: DecisionKind::Clone,
                    site: site_str(p, &first_site),
                    callee: p.func(clone_id).name.clone(),
                    verdict: Verdict::Performed,
                    reason: if db_hit {
                        "db-reuse"
                    } else if g.retires_clonee {
                        "retires-clonee"
                    } else {
                        "accepted"
                    },
                    benefit: g.benefit,
                    cost: charged,
                    budget_before,
                    budget_after: budget.current(),
                    profile_weight: site_weight(p, &first_site),
                });
            }
        }
    }
    result.apply_wall = apply_start.elapsed();
    result.apply_work = result.apply_wall;

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    fn annotate_static(p: &mut Program) {
        for f in &mut p.funcs {
            if f.profile.is_none() {
                f.profile = Some(hlo_analysis::estimate_static_profile(f));
            }
        }
    }

    #[test]
    fn param_usage_emphasizes_indirect_call_position() {
        let p = hlo_frontc::compile(&[(
            "m",
            "fn apply(f, x) { return f(x); } fn main() { return apply(&main, 0); }",
        )])
        .unwrap();
        let apply = p.find_func("m", "apply").unwrap();
        let w = param_usage(p.func(apply));
        assert!(w[0] > w[1], "function-position param must dominate: {w:?}");
        assert!(w[0] >= 20.0);
    }

    #[test]
    fn param_usage_values_branch_tests() {
        let p = hlo_frontc::compile(&[(
            "m",
            "fn f(k, x) { if (k == 0) { return x; } return x + k; } fn main() { return f(0, 1); }",
        )])
        .unwrap();
        let f = p.find_func("m", "f").unwrap();
        let w = param_usage(p.func(f));
        assert!(w[0] > w[1]);
    }

    fn run_clone_pass(p: &mut Program) -> ClonePassResult {
        annotate_static(p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 100, &[1.0]);
        let mut db = CloneDb::default();
        let mut cache = CallGraphCache::new();
        clone_pass(
            p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut db,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        )
    }

    #[test]
    fn cloning_specializes_constant_dispatch() {
        let src = &[(
            "m",
            r#"
            fn op(kind, x) {
                if (kind == 0) { return x + 1; }
                if (kind == 1) { return x * 2; }
                return x - 1;
            }
            fn main() {
                var s = 0;
                for (var i = 0; i < 10; i = i + 1) { s = s + op(1, i); }
                return s;
            }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_clone_pass(&mut p);
        assert!(r.clones_created >= 1, "{r:?}");
        assert!(r.sites_replaced >= 1);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
        // The optimized clone must have folded the dispatch: it is smaller
        // than the original.
        let orig = p.find_func("m", "op").unwrap();
        let clone = p
            .iter_funcs()
            .find(|(_, f)| f.name.contains("clone"))
            .map(|(i, _)| i)
            .unwrap();
        assert!(p.func(clone).size() < p.func(orig).size());
    }

    #[test]
    fn group_collects_multiple_compatible_sites() {
        let src = &[(
            "m",
            r#"
            fn f(k, x) { if (k == 7) { return x * 2; } return x; }
            fn a() { return f(7, 1); }
            fn b() { return f(7, 2); }
            fn main() { return a() + b() + f(9, 3); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let r = run_clone_pass(&mut p);
        // k=7 group has two sites; k=9 gets its own group (budget allows).
        assert!(r.sites_replaced >= 2, "{r:?}");
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn clone_database_reuses_across_passes() {
        // Two sites share the spec {k=1} (x is a run-time value at both).
        // Pass 1 is allowed a single operation, so it redirects one site;
        // pass 2 finds the remaining site and must REUSE the clone from
        // the database instead of materializing a second body.
        let src = &[(
            "m",
            r#"
            fn f(k, x) { if (k == 1) { return x + 1; } return x; }
            fn main() {
                var s = 0;
                for (var i = 0; i < 4; i = i + 1) { s = s + f(1, i); }
                for (var i = 0; i < 4; i = i + 1) { s = s + f(1, s); }
                return s;
            }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate_static(&mut p);
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 1000, &[1.0]);
        let mut db = CloneDb::default();
        let mut cache = CallGraphCache::new();
        let opts = HloOptions::default();
        let mut ops = Some(1u64);
        let r1 = clone_pass(
            &mut p,
            &mut budget,
            0,
            &opts,
            None,
            &mut db,
            &mut ops,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert_eq!(r1.clones_created, 1, "{r1:?}");
        assert_eq!(r1.sites_replaced, 1);
        let r2 = clone_pass(
            &mut p,
            &mut budget,
            1,
            &opts,
            None,
            &mut db,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert_eq!(r2.clones_created, 0, "{r2:?}");
        assert_eq!(r2.clones_reused, 1);
        assert_eq!(r2.sites_replaced, 1);
        verify_program(&p).unwrap();
        assert_eq!(
            run_program(&p, &[], &ExecOptions::default()).unwrap().ret,
            expect
        );
    }

    #[test]
    fn zero_budget_blocks_cloning_unless_retiring() {
        let src = &[(
            "m",
            r#"
            fn f(k, x) { if (k == 1) { return x + 1; } return x; }
            fn keep() { return f(2, 1); }
            fn main() { return f(1, 2) + keep(); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate_static(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 0, &[1.0]);
        let mut db = CloneDb::default();
        let mut cache = CallGraphCache::new();
        let r = clone_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut db,
            &mut None,
            &mut cache,
            &mut Tracer::disabled(),
        );
        // f has another caller with a different constant, so neither group
        // retires the clonee; zero budget ⇒ nothing happens.
        assert_eq!(r.clones_created, 0);
        assert_eq!(r.sites_replaced, 0);
    }

    #[test]
    fn deleted_clone_is_not_resurrected_from_database() {
        // Regression test: clone A's only caller is itself cloned in the
        // same pass (copying the pre-redirect call), so A is deleted as
        // unreachable. The next pass must NOT reuse A's emptied husk for
        // the copied call site — it must build a fresh clone.
        let src = &[(
            "m",
            r#"
            global t;
            fn init(n) { t = n; return 0; }
            fn run(len) {
                init(4096);
                var s = 0;
                for (var i = 0; i < len; i = i + 1) { s = s + t; }
                return s;
            }
            fn main() { return run(10) / 41; }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        let expect = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        let opts = HloOptions {
            budget_percent: 1000,
            enable_inline: false,
            ..Default::default()
        };
        let report = crate::optimize(&mut p, None, &opts);
        verify_program(&p).unwrap();
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, expect, "{report}");
    }

    #[test]
    fn ops_limit_stops_replacements() {
        let src = &[(
            "m",
            r#"
            fn f(k, x) { if (k == 1) { return x + 1; } return x; }
            fn main() { return f(1, 2) + f(1, 3) + f(1, 4); }
            "#,
        )];
        let mut p = hlo_frontc::compile(src).unwrap();
        annotate_static(&mut p);
        let c0 = p.compile_cost();
        let mut budget = Budget::new(c0, 1000, &[1.0]);
        let mut db = CloneDb::default();
        let mut ops = Some(2u64);
        let mut cache = CallGraphCache::new();
        let r = clone_pass(
            &mut p,
            &mut budget,
            0,
            &HloOptions::default(),
            None,
            &mut db,
            &mut ops,
            &mut cache,
            &mut Tracer::disabled(),
        );
        assert_eq!(r.sites_replaced, 2);
        assert_eq!(ops, Some(0));
        verify_program(&p).unwrap();
        // program still runs correctly with a partial redirection
        run_program(&p, &[], &ExecOptions::default()).unwrap();
    }
}
