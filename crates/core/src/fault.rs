//! Deliberate fault injection for exercising the verification stack.
//!
//! The differential fuzzer (`hlo-fuzz`) and the shrinker-soundness tests
//! need a *known-bad* optimizer to prove the oracle actually catches
//! miscompiles and that the shrinker preserves them while minimizing.
//! This module provides that: when armed, [`inline_call`] corrupts the
//! first integer `Add` it splices into a caller (it becomes a `Sub`) — a
//! realistic single-operator transcription bug.
//!
//! The switch is thread-local and **off by default**, so production code
//! paths are unaffected; arming it only perturbs optimizations performed
//! on the arming thread (the inline/clone apply stages run sequentially on
//! the calling thread, so `--jobs` does not leak faults across tests).
//!
//! [`inline_call`]: crate::inline_call

use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Arms or disarms fault injection on the current thread.
pub fn arm(on: bool) {
    ARMED.with(|a| a.set(on));
}

/// Whether fault injection is currently armed on this thread.
pub fn armed() -> bool {
    ARMED.with(|a| a.get())
}

/// RAII guard: arms fault injection for its lifetime, disarming on drop
/// (including on panic, so a failing test cannot poison its thread).
#[derive(Debug)]
pub struct FaultGuard(());

impl FaultGuard {
    /// Arms fault injection until the guard is dropped.
    pub fn arm() -> Self {
        arm(true);
        FaultGuard(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        arm(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_arms_and_disarms() {
        assert!(!armed());
        {
            let _g = FaultGuard::arm();
            assert!(armed());
        }
        assert!(!armed());
    }
}
