//! The compile-time budget and its staging (paper §2.2, Figure 2).

/// Tracks the compile-time cost estimate `C = Σ size(R)²` against the
/// budget `B = C₀ · (1 + β/100)`, apportioned across passes so "not all of
/// the budget is used up in the first pass".
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    initial: u64,
    limit: u64,
    current: u64,
    stages: Vec<u64>,
}

impl Budget {
    /// Creates a budget from the initial cost, the growth percentage
    /// (the paper's default is 100; Figure 8 sweeps 25–1000) and the
    /// cumulative per-pass fractions (e.g. `[0.25, 0.5, 0.75, 1.0]`).
    ///
    /// # Panics
    /// Panics if `stage_fractions` is empty.
    pub fn new(initial_cost: u64, budget_percent: u64, stage_fractions: &[f64]) -> Self {
        assert!(
            !stage_fractions.is_empty(),
            "at least one budget stage is required"
        );
        let headroom = (initial_cost as f64) * (budget_percent as f64 / 100.0);
        let limit = initial_cost + headroom as u64;
        let stages = stage_fractions
            .iter()
            .map(|f| initial_cost + (headroom * f.clamp(0.0, 1.0)) as u64)
            .collect();
        Budget {
            initial: initial_cost,
            limit,
            current: initial_cost,
            stages,
        }
    }

    /// Cost when optimization started.
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// The overall ceiling `B`.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The ceiling for pass `p` (clamped to the last stage).
    pub fn stage_limit(&self, pass: usize) -> u64 {
        self.stages[pass.min(self.stages.len() - 1)]
    }

    /// Current cost estimate `C`.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// True while `C < B` — the driver's loop condition.
    pub fn open(&self) -> bool {
        self.current < self.limit
    }

    /// Whether adding `delta` keeps `C` within the stage ceiling for
    /// `pass`.
    pub fn fits(&self, pass: usize, delta: u64) -> bool {
        self.current.saturating_add(delta) <= self.stage_limit(pass)
    }

    /// Records `delta` of new cost.
    pub fn charge(&mut self, delta: u64) {
        self.current = self.current.saturating_add(delta);
    }

    /// Replaces the running estimate with a freshly measured cost (the
    /// driver recalibrates from real sizes after each pass, as the paper's
    /// "optimize and recalibrate" steps do).
    pub fn recalibrate(&mut self, measured: u64) {
        self.current = measured;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_doubles_cost() {
        let b = Budget::new(1000, 100, &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(b.limit(), 2000);
        assert_eq!(b.stage_limit(0), 1250);
        assert_eq!(b.stage_limit(3), 2000);
        assert_eq!(b.stage_limit(9), 2000); // clamped
    }

    #[test]
    fn fits_respects_stage_not_total() {
        let mut b = Budget::new(1000, 100, &[0.2, 1.0]);
        assert!(b.fits(0, 200));
        assert!(!b.fits(0, 201));
        assert!(b.fits(1, 1000));
        b.charge(200);
        assert!(!b.fits(0, 1));
        assert!(b.fits(1, 800));
    }

    #[test]
    fn open_tracks_limit() {
        let mut b = Budget::new(100, 50, &[1.0]);
        assert!(b.open());
        b.charge(50);
        assert!(!b.open());
    }

    #[test]
    fn recalibrate_replaces_estimate() {
        let mut b = Budget::new(100, 100, &[1.0]);
        b.charge(75);
        b.recalibrate(120);
        assert_eq!(b.current(), 120);
        assert!(b.open());
    }

    #[test]
    fn zero_percent_budget_blocks_everything() {
        let b = Budget::new(100, 0, &[1.0]);
        assert!(!b.open());
        assert!(!b.fits(0, 1));
        assert!(b.fits(0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one budget stage")]
    fn empty_stages_panic() {
        let _ = Budget::new(1, 1, &[]);
    }
}
