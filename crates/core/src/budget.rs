//! The compile-time budget and its staging (paper §2.2, Figure 2).

/// Tracks the compile-time cost estimate `C = Σ size(R)²` against the
/// budget `B = C₀ · (1 + β/100)`, apportioned across passes so "not all of
/// the budget is used up in the first pass".
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    initial: u64,
    limit: u64,
    current: u64,
    stages: Vec<u64>,
}

impl Budget {
    /// Creates a budget from the initial cost, the growth percentage
    /// (the paper's default is 100; Figure 8 sweeps 25–1000) and the
    /// cumulative per-pass fractions (e.g. `[0.25, 0.5, 0.75, 1.0]`).
    ///
    /// # Panics
    /// Panics if `stage_fractions` is empty.
    pub fn new(initial_cost: u64, budget_percent: u64, stage_fractions: &[f64]) -> Self {
        assert!(
            !stage_fractions.is_empty(),
            "at least one budget stage is required"
        );
        let headroom = (initial_cost as f64) * (budget_percent as f64 / 100.0);
        let limit = initial_cost + headroom as u64;
        let stages = stage_fractions
            .iter()
            .map(|f| initial_cost + (headroom * f.clamp(0.0, 1.0)) as u64)
            .collect();
        Budget {
            initial: initial_cost,
            limit,
            current: initial_cost,
            stages,
        }
    }

    /// Cost when optimization started.
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// The overall ceiling `B`.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The ceiling for pass `p` (clamped to the last stage).
    pub fn stage_limit(&self, pass: usize) -> u64 {
        self.stages[pass.min(self.stages.len() - 1)]
    }

    /// Current cost estimate `C`.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// True while `C < B` — the driver's loop condition.
    pub fn open(&self) -> bool {
        self.current < self.limit
    }

    /// Whether adding `delta` keeps `C` within the stage ceiling for
    /// `pass`.
    pub fn fits(&self, pass: usize, delta: u64) -> bool {
        self.current.saturating_add(delta) <= self.stage_limit(pass)
    }

    /// Records `delta` of new cost.
    pub fn charge(&mut self, delta: u64) {
        self.current = self.current.saturating_add(delta);
    }

    /// Replaces the running estimate with a freshly measured cost (the
    /// driver recalibrates from real sizes after each pass, as the paper's
    /// "optimize and recalibrate" steps do).
    pub fn recalibrate(&mut self, measured: u64) {
        self.current = measured;
    }
}

/// The hierarchical budget: one independent [`Budget`] per cache
/// partition, each sized from that partition's own share of the program
/// cost. The driver optimizes partitions one at a time against their own
/// budget, so a partition's plan is a pure function of its members — the
/// precondition for function-grain result reuse.
///
/// The split mirrors the proportional headroom split the parallel
/// planner applies within a pass: every partition gets the same growth
/// *percentage*, so headroom is proportional to partition cost and the
/// per-partition limits sum to (within integer truncation of) the
/// whole-program limit.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSet {
    budgets: Vec<Budget>,
}

impl BudgetSet {
    /// One budget per partition: `costs[i]` is partition `i`'s current
    /// compile cost `Σ size(R)²` over its members. Percentage and stage
    /// fractions are shared — the split depends only on each partition's
    /// own cost, never on visit order.
    pub fn new(costs: &[u64], budget_percent: u64, stage_fractions: &[f64]) -> Self {
        BudgetSet {
            budgets: costs
                .iter()
                .map(|&c| Budget::new(c, budget_percent, stage_fractions))
                .collect(),
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Partition `i`'s budget.
    pub fn get(&self, i: usize) -> &Budget {
        &self.budgets[i]
    }

    /// Partition `i`'s budget, mutable.
    pub fn get_mut(&mut self, i: usize) -> &mut Budget {
        &mut self.budgets[i]
    }

    /// Sum of the per-partition ceilings — the hierarchical analogue of
    /// the whole-program `B` reported to the user.
    pub fn total_limit(&self) -> u64 {
        self.budgets.iter().map(|b| b.limit()).sum()
    }

    /// Sum of the per-partition initial costs.
    pub fn total_initial(&self) -> u64 {
        self.budgets.iter().map(|b| b.initial()).sum()
    }

    /// Sum of the per-partition current estimates.
    pub fn total_current(&self) -> u64 {
        self.budgets.iter().map(|b| b.current()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_doubles_cost() {
        let b = Budget::new(1000, 100, &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(b.limit(), 2000);
        assert_eq!(b.stage_limit(0), 1250);
        assert_eq!(b.stage_limit(3), 2000);
        assert_eq!(b.stage_limit(9), 2000); // clamped
    }

    #[test]
    fn fits_respects_stage_not_total() {
        let mut b = Budget::new(1000, 100, &[0.2, 1.0]);
        assert!(b.fits(0, 200));
        assert!(!b.fits(0, 201));
        assert!(b.fits(1, 1000));
        b.charge(200);
        assert!(!b.fits(0, 1));
        assert!(b.fits(1, 800));
    }

    #[test]
    fn open_tracks_limit() {
        let mut b = Budget::new(100, 50, &[1.0]);
        assert!(b.open());
        b.charge(50);
        assert!(!b.open());
    }

    #[test]
    fn recalibrate_replaces_estimate() {
        let mut b = Budget::new(100, 100, &[1.0]);
        b.charge(75);
        b.recalibrate(120);
        assert_eq!(b.current(), 120);
        assert!(b.open());
    }

    #[test]
    fn zero_percent_budget_blocks_everything() {
        let b = Budget::new(100, 0, &[1.0]);
        assert!(!b.open());
        assert!(!b.fits(0, 1));
        assert!(b.fits(0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one budget stage")]
    fn empty_stages_panic() {
        let _ = Budget::new(1, 1, &[]);
    }

    /// Per-partition headroom is `cost_i · β/100` truncated, so the sum of
    /// partition limits equals the whole-program limit up to one unit of
    /// truncation per partition — and exactly when costs divide evenly.
    #[test]
    fn partition_shares_sum_to_global_budget() {
        let costs = [1000u64, 2500, 400, 100];
        let set = BudgetSet::new(&costs, 100, &[0.25, 0.5, 0.75, 1.0]);
        let total: u64 = costs.iter().sum();
        let global = Budget::new(total, 100, &[0.25, 0.5, 0.75, 1.0]);
        // β=100 doubles every cost exactly: no truncation anywhere.
        assert_eq!(set.total_limit(), global.limit());
        assert_eq!(set.total_initial(), total);
        // A non-integral β may truncate per partition, but never by more
        // than one unit each.
        let set33 = BudgetSet::new(&costs, 33, &[1.0]);
        let global33 = Budget::new(total, 33, &[1.0]);
        assert!(set33.total_limit() <= global33.limit());
        assert!(set33.total_limit() + costs.len() as u64 > global33.limit());
    }

    /// Each partition's budget is a pure function of its own cost: permuting
    /// the partition order permutes the budgets and nothing else.
    #[test]
    fn partition_shares_independent_of_visit_order() {
        let costs = [700u64, 50, 1300, 9, 9];
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let forward = BudgetSet::new(&costs, 150, &fractions);
        let mut rev = costs;
        rev.reverse();
        let backward = BudgetSet::new(&rev, 150, &fractions);
        for i in 0..costs.len() {
            assert_eq!(forward.get(i), backward.get(costs.len() - 1 - i));
        }
        assert_eq!(forward.total_limit(), backward.total_limit());
    }

    /// A partition with zero headroom admits no growth at any stage.
    #[test]
    fn zero_budget_partition_is_closed() {
        let set = BudgetSet::new(&[500, 0], 100, &[0.5, 1.0]);
        let empty = set.get(1);
        assert!(!empty.open());
        assert!(empty.fits(0, 0));
        assert!(!empty.fits(1, 1));
        // The sibling partition is unaffected.
        assert!(set.get(0).open());
        assert!(set.get(0).fits(0, 250));
    }
}
