#![warn(missing_docs)]
//! **HLO** — the budgeted, multi-pass, cross-module inliner and cloner of
//! *Aggressive Inlining* (Ayers, Gottlieb & Schooler, PLDI 1997).
//!
//! The optimizer alternates cloning and inlining passes under a global
//! compile-time budget (paper Figure 2):
//!
//! * the **budget** models compile time as `Σ size(routine)²` (the HP back
//!   end has quadratic algorithms) and by default allows a 100% increase;
//!   it is *staged* so early passes cannot consume everything;
//! * a **cloning pass** (Figure 3) intersects caller-supplied constants
//!   with callee parameter usage into *clone specs*, greedily builds
//!   *clone groups* over compatible call sites, ranks groups by estimated
//!   run-time benefit, and materializes clones through a cross-pass
//!   *clone database*;
//! * an **inlining pass** (Figure 4) screens sites for legal, technical,
//!   pragmatic and user restrictions, ranks the survivors by profile
//!   frequency (with a penalty for sites colder than their caller's
//!   entry), schedules accepted inlines bottom-up over the call graph with
//!   cascaded cost accounting, and splices bodies;
//! * after each pass, routines made unreachable (fully inlined statics,
//!   fully replaced clonees) are **deleted**, and the scalar optimizer
//!   (crate `hlo-opt`) re-sharpens the code so the next pass sees new
//!   facts — this is what lets a cloned function-pointer argument become a
//!   direct call and then be inlined one pass later (§3.1).
//!
//! # Quick start
//!
//! ```
//! use hlo::{optimize, HloOptions, Scope};
//!
//! let mut program = hlo_frontc::compile(&[(
//!     "m",
//!     "fn sq(x) { return x * x; }
//!      fn main() { var s = 0;
//!          for (var i = 0; i < 100; i = i + 1) { s = s + sq(i); }
//!          return s; }",
//! )]).unwrap();
//! let report = optimize(&mut program, None, &HloOptions::default());
//! assert!(report.inlines >= 1);
//! # assert_eq!(
//! #     hlo_vm::run_program(&program, &[], &hlo_vm::ExecOptions::default()).unwrap().ret,
//! #     (0..100).map(|i| i * i).sum::<i64>());
//! ```

mod budget;
mod cloner;
mod delete;
mod driver;
pub mod fault;
mod inliner;
mod legality;
mod outline;
pub mod par;
mod report;
mod transform;

pub use budget::{Budget, BudgetSet};
pub use cloner::{CloneDb, CloneSpec};
pub use delete::{delete_unreachable, delete_unreachable_masked};
pub use driver::{
    extract_partition, optimize, optimize_partial, optimize_traced, BuildLog, HloOptions,
    PartialOutcome, PartitionAction, ReusedPartition, Scope, CLONE_REF_BASE,
};
pub use hlo_analysis::CallGraphCache;
pub use hlo_lint::{CheckLevel, Checker, Diagnostic, LintReport, Severity};
pub use hlo_trace::json as trace_json;
pub use hlo_trace::{
    chrome_trace_json, normalize_log, parse_exposition, parse_flight_dump, validate_chrome_trace,
    DecisionEvent, DecisionKind, Event, EventLevel, EventLog, FlightRecord, FlightRecorder,
    MetricsRegistry, QuantileSketch, TraceLevel, Tracer, Verdict, DRIFT_BUCKETS_MILLIS,
    LATENCY_BUCKETS_US, SKETCH_ERROR_PERCENT,
};
pub use inliner::inline_pass;
pub use legality::{clone_restriction, inline_restriction, Restriction};
pub use outline::{outline_cold_regions, outline_cold_regions_traced, OutlineOptions};
pub use report::{HloReport, PassReport, StageTiming};
pub use transform::{inline_call, make_clone, redirect_site_to_clone, InlineSplice};

/// Every stable reason code the optimizer can emit in decision provenance
/// ([`DecisionEvent::reason`]). The DESIGN.md §11 table documents each;
/// `cargo tier2` checks that no code listed here is missing from it, so
/// adding a reason without documenting it fails the gate.
pub fn all_reason_codes() -> &'static [&'static str] {
    &[
        // Verdicts of the ranking/selection machinery.
        "accepted",
        "budget-deferred",
        "budget-discarded",
        "db-reuse",
        "retires-clonee",
        "cold-region",
        // Pure-call deletion and the summary-driven scalar stage.
        "pure-call-removed",
        "ipa-pure-callee",
        "ipa-ret-const",
        // Interprocedural screening.
        "ipa-escape-blocked",
        // Legality/technical/pragmatic/user restrictions.
        "arity-mismatch",
        "type-mismatch",
        "varargs",
        "strict-fp-mix",
        "dyn-alloca",
        "user-noinline",
        "self-call",
        "out-of-scope",
        "entry-callee",
        "not-direct",
        // Continuous PGO: why the daemon rebuilt (or kept) a cached
        // server-mode result. Emitted by `hlo-pgo`'s drift reports.
        "pgo-cold-start",
        "pgo-drift-exceeded",
        "pgo-churn-exceeded",
        "pgo-profile-stable",
        // Function-grain incremental recompilation: per-partition cache
        // outcomes of a warm daemon build, and the whole-request fallback
        // to a full rebuild when a request is not partition-cacheable.
        "incr-partition-hit",
        "incr-partition-rebuild",
        "incr-fallback",
    ]
}
