//! Deletion of unreachable routines (paper §2.3/§3.2 "Deletions").

use crate::driver::Scope;
use hlo_analysis::{reachable_funcs, CallGraphCache};
use hlo_ir::{Block, FuncId, Inst, Program};

/// Removes routines that can no longer be called: file-scope functions
/// whose calls were all inlined, and clonees fully replaced by clones.
/// Under `Scope::CrossModule` (the link-time path) unused public routines
/// are deletable too, since the whole program is visible.
///
/// Reachability is computed over the cached call graph (the driver shares
/// one [`CallGraphCache`] across the whole pipeline); each deleted routine
/// is invalidated in the cache, since emptying its body drops its
/// out-edges.
///
/// Deleted functions keep their `FuncId` (ids are never reused) but their
/// bodies are emptied and they leave their module's function list, so code
/// layout, classification and cost models no longer see them. Returns the
/// number of routines deleted.
pub fn delete_unreachable(p: &mut Program, scope: Scope, cache: &mut CallGraphCache) -> u64 {
    delete_unreachable_masked(p, scope, cache, None)
}

/// [`delete_unreachable`] restricted to functions `mask` selects (`None`
/// = all). Reachability is still computed program-wide; the mask only
/// limits which unreachable functions are emptied — the incremental
/// driver deletes one cache partition at a time, and a function's
/// liveness never depends on another cache partition (direct edges never
/// cross partitions, and every address-taken root shares the indirect
/// island's partition).
pub fn delete_unreachable_masked(
    p: &mut Program,
    scope: Scope,
    cache: &mut CallGraphCache,
    mask: Option<&[bool]>,
) -> u64 {
    let reach = {
        let cg = cache.graph(p);
        reachable_funcs(p, cg, scope == Scope::CrossModule)
    };
    let mut deleted = 0;
    for (fi, alive) in reach.iter().enumerate() {
        if *alive {
            continue;
        }
        if !mask.is_none_or(|m| m.get(fi).copied().unwrap_or(false)) {
            continue;
        }
        let id = FuncId(fi as u32);
        let module = p.func(id).module;
        let in_module_list = p.module(module).funcs.contains(&id);
        if !in_module_list {
            continue; // already deleted in an earlier pass
        }
        let f = p.func_mut(id);
        f.blocks = vec![Block {
            insts: vec![Inst::Ret { value: None }],
        }];
        f.num_regs = f.params;
        f.slots.clear();
        f.profile = None;
        let m = &mut p.modules[module.index()];
        m.funcs.retain(|&x| x != id);
        cache.invalidate(id);
        deleted += 1;
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;

    fn delete(p: &mut Program, scope: Scope) -> u64 {
        delete_unreachable(p, scope, &mut CallGraphCache::new())
    }

    #[test]
    fn deletes_orphaned_static_keeps_public_in_module_scope() {
        let p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn orphan_static() { return 1; }
            fn orphan_public() { return 2; }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        let mut per_module = p.clone();
        assert_eq!(delete(&mut per_module, Scope::WithinModule), 1);
        verify_program(&per_module).unwrap();
        let mut whole = p;
        assert_eq!(delete(&mut whole, Scope::CrossModule), 2);
        verify_program(&whole).unwrap();
    }

    #[test]
    fn address_taken_functions_survive() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn cb() { return 3; }
            fn main() { var f = &cb; return f(); }
            "#,
        )])
        .unwrap();
        assert_eq!(delete(&mut p, Scope::CrossModule), 0);
    }

    #[test]
    fn second_deletion_pass_counts_nothing_twice() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            "static fn dead() { return 1; } fn main() { return 0; }",
        )])
        .unwrap();
        // One shared cache across both queries, exercising invalidation.
        let mut cache = CallGraphCache::new();
        assert_eq!(
            delete_unreachable(&mut p, Scope::CrossModule, &mut cache),
            1
        );
        assert_eq!(
            delete_unreachable(&mut p, Scope::CrossModule, &mut cache),
            0
        );
    }

    #[test]
    fn deletion_cascades_through_call_chains() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn leaf() { return 1; }
            static fn mid() { return leaf(); }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        // mid and leaf are both unreachable: a single pass removes both.
        assert_eq!(delete(&mut p, Scope::CrossModule), 2);
    }

    #[test]
    fn deleted_function_shrinks_compile_cost() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn big(x) { var s = 0;
                for (var i = 0; i < x; i = i + 1) { s = s + i * i; }
                return s; }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        let before = p.compile_cost();
        delete(&mut p, Scope::CrossModule);
        assert!(p.compile_cost() < before);
    }

    #[test]
    fn stale_cache_entries_do_not_resurrect_deleted_callees() {
        // After deleting `mid` (which called `leaf`), a cached graph must
        // not still show the mid -> leaf edge: a second query sees leaf as
        // unreachable too only because mid's scan was invalidated.
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn leaf() { return 1; }
            fn mid() { return leaf(); }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        let mut cache = CallGraphCache::new();
        // Per-module scope keeps public `mid` alive, so only nothing dies
        // yet; then cross-module deletes mid, and leaf must cascade within
        // the same cache.
        assert_eq!(
            delete_unreachable(&mut p, Scope::WithinModule, &mut cache),
            0
        );
        assert_eq!(
            delete_unreachable(&mut p, Scope::CrossModule, &mut cache),
            2
        );
        let cg = cache.graph(&p);
        let mid = p.find_func("m", "mid").unwrap();
        assert!(cg.callees_of[mid.index()].is_empty());
    }
}
