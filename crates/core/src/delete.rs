//! Deletion of unreachable routines (paper §2.3/§3.2 "Deletions").

use crate::driver::Scope;
use hlo_analysis::{reachable_funcs, CallGraph};
use hlo_ir::{Block, FuncId, Inst, Program};

/// Removes routines that can no longer be called: file-scope functions
/// whose calls were all inlined, and clonees fully replaced by clones.
/// Under `Scope::CrossModule` (the link-time path) unused public routines
/// are deletable too, since the whole program is visible.
///
/// Deleted functions keep their `FuncId` (ids are never reused) but their
/// bodies are emptied and they leave their module's function list, so code
/// layout, classification and cost models no longer see them. Returns the
/// number of routines deleted.
pub fn delete_unreachable(p: &mut Program, scope: Scope) -> u64 {
    let cg = CallGraph::build(p);
    let reach = reachable_funcs(p, &cg, scope == Scope::CrossModule);
    let mut deleted = 0;
    for (fi, alive) in reach.iter().enumerate() {
        if *alive {
            continue;
        }
        let id = FuncId(fi as u32);
        let module = p.func(id).module;
        let in_module_list = p.module(module).funcs.contains(&id);
        if !in_module_list {
            continue; // already deleted in an earlier pass
        }
        let f = p.func_mut(id);
        f.blocks = vec![Block {
            insts: vec![Inst::Ret { value: None }],
        }];
        f.num_regs = f.params;
        f.slots.clear();
        f.profile = None;
        let m = &mut p.modules[module.index()];
        m.funcs.retain(|&x| x != id);
        deleted += 1;
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::verify_program;

    #[test]
    fn deletes_orphaned_static_keeps_public_in_module_scope() {
        let p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn orphan_static() { return 1; }
            fn orphan_public() { return 2; }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        let mut per_module = p.clone();
        assert_eq!(delete_unreachable(&mut per_module, Scope::WithinModule), 1);
        verify_program(&per_module).unwrap();
        let mut whole = p;
        assert_eq!(delete_unreachable(&mut whole, Scope::CrossModule), 2);
        verify_program(&whole).unwrap();
    }

    #[test]
    fn address_taken_functions_survive() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn cb() { return 3; }
            fn main() { var f = &cb; return f(); }
            "#,
        )])
        .unwrap();
        assert_eq!(delete_unreachable(&mut p, Scope::CrossModule), 0);
    }

    #[test]
    fn second_deletion_pass_counts_nothing_twice() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            "static fn dead() { return 1; } fn main() { return 0; }",
        )])
        .unwrap();
        assert_eq!(delete_unreachable(&mut p, Scope::CrossModule), 1);
        assert_eq!(delete_unreachable(&mut p, Scope::CrossModule), 0);
    }

    #[test]
    fn deletion_cascades_through_call_chains() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn leaf() { return 1; }
            static fn mid() { return leaf(); }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        // mid and leaf are both unreachable: a single pass removes both.
        assert_eq!(delete_unreachable(&mut p, Scope::CrossModule), 2);
    }

    #[test]
    fn deleted_function_shrinks_compile_cost() {
        let mut p = hlo_frontc::compile(&[(
            "m",
            r#"
            static fn big(x) { var s = 0;
                for (var i = 0; i < x; i = i + 1) { s = s + i * i; }
                return s; }
            fn main() { return 0; }
            "#,
        )])
        .unwrap();
        let before = p.compile_cost();
        delete_unreachable(&mut p, Scope::CrossModule);
        assert!(p.compile_cost() < before);
    }
}
