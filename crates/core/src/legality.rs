//! Site screening: the paper's legal, technical, pragmatic and user
//! restrictions (§2.4, and the cloning legality tests of §2.3).

use crate::driver::Scope;
use hlo_analysis::CallSiteRef;
use hlo_ir::{Callee, Inst, Program, Type};

/// Why a call site may not be inlined or cloned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restriction {
    /// Caller and callee disagree on the number of arguments ("argument
    /// arity differences" — illegal).
    ArityMismatch,
    /// The caller expects a value from a `void` callee ("gross type
    /// mismatches" — illegal).
    TypeMismatch,
    /// The callee is declared varargs (illegal).
    Varargs,
    /// Caller and callee disagree on floating-point strictness (the
    /// technical restriction: reassociation constraints cannot be
    /// represented in the merged body).
    StrictFpMix,
    /// The callee dynamically allocates stack with `alloca` (pragmatic:
    /// the allocation's lifetime would change).
    DynAlloca,
    /// The user forbade inlining this callee (`#[noinline]`).
    UserNoinline,
    /// A direct self-call: inlining it is just one loop unrolling, handled
    /// across passes instead.
    SelfCall,
    /// The site crosses a module boundary but the compilation scope is
    /// per-module.
    OutOfScope,
    /// The callee is the program entry (cloning it can never retire the
    /// original).
    EntryCallee,
    /// The call site is not a direct call (indirect sites are promoted by
    /// constant propagation first; external callees have no body).
    NotDirect,
}

impl Restriction {
    /// The stable kebab-case reason code used in decision provenance
    /// ([`hlo_trace::DecisionEvent::reason`]) and the DESIGN.md §11 table.
    pub fn code(&self) -> &'static str {
        match self {
            Restriction::ArityMismatch => "arity-mismatch",
            Restriction::TypeMismatch => "type-mismatch",
            Restriction::Varargs => "varargs",
            Restriction::StrictFpMix => "strict-fp-mix",
            Restriction::DynAlloca => "dyn-alloca",
            Restriction::UserNoinline => "user-noinline",
            Restriction::SelfCall => "self-call",
            Restriction::OutOfScope => "out-of-scope",
            Restriction::EntryCallee => "entry-callee",
            Restriction::NotDirect => "not-direct",
        }
    }
}

impl std::fmt::Display for Restriction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Restriction::ArityMismatch => "argument arity mismatch",
            Restriction::TypeMismatch => "gross type mismatch",
            Restriction::Varargs => "varargs callee",
            Restriction::StrictFpMix => "floating-point strictness mismatch",
            Restriction::DynAlloca => "callee uses dynamic alloca",
            Restriction::UserNoinline => "user noinline pragma",
            Restriction::SelfCall => "direct self-recursion",
            Restriction::OutOfScope => "cross-module site in per-module scope",
            Restriction::EntryCallee => "callee is the program entry",
            Restriction::NotDirect => "not a direct call",
        };
        f.write_str(s)
    }
}

fn site_inst<'p>(p: &'p Program, site: &CallSiteRef) -> &'p Inst {
    &p.func(site.caller).blocks[site.block.index()].insts[site.inst]
}

fn direct_parts(p: &Program, site: &CallSiteRef) -> Option<(hlo_ir::FuncId, usize, bool)> {
    match site_inst(p, site) {
        Inst::Call {
            callee: Callee::Func(t),
            args,
            dst,
        } => Some((*t, args.len(), dst.is_some())),
        _ => None,
    }
}

/// Checks whether the direct call at `site` may be inlined. Returns the
/// first restriction found, or `None` when the site is viable.
pub fn inline_restriction(p: &Program, site: &CallSiteRef, scope: Scope) -> Option<Restriction> {
    let (target, n_args, wants_value) = match direct_parts(p, site) {
        Some(x) => x,
        None => return Some(Restriction::NotDirect),
    };
    let caller = p.func(site.caller);
    let callee = p.func(target);
    if target == site.caller {
        return Some(Restriction::SelfCall);
    }
    if callee.flags.varargs {
        return Some(Restriction::Varargs);
    }
    if n_args != callee.params as usize {
        return Some(Restriction::ArityMismatch);
    }
    if wants_value && callee.ret == Type::Void {
        return Some(Restriction::TypeMismatch);
    }
    if caller.flags.strict_fp != callee.flags.strict_fp
        && (caller.uses_float() || callee.uses_float())
    {
        return Some(Restriction::StrictFpMix);
    }
    if callee.has_dynamic_alloca() {
        return Some(Restriction::DynAlloca);
    }
    if callee.flags.noinline {
        return Some(Restriction::UserNoinline);
    }
    if scope == Scope::WithinModule && caller.module != callee.module {
        return Some(Restriction::OutOfScope);
    }
    None
}

/// Checks whether the direct call at `site` may be redirected to a clone.
pub fn clone_restriction(p: &Program, site: &CallSiteRef, scope: Scope) -> Option<Restriction> {
    let (target, n_args, wants_value) = match direct_parts(p, site) {
        Some(x) => x,
        None => return Some(Restriction::NotDirect),
    };
    let caller = p.func(site.caller);
    let callee = p.func(target);
    if callee.flags.varargs {
        return Some(Restriction::Varargs);
    }
    if n_args != callee.params as usize {
        return Some(Restriction::ArityMismatch);
    }
    if wants_value && callee.ret == Type::Void {
        return Some(Restriction::TypeMismatch);
    }
    if Some(target) == p.entry {
        return Some(Restriction::EntryCallee);
    }
    if scope == Scope::WithinModule && caller.module != callee.module {
        return Some(Restriction::OutOfScope);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_analysis::CallGraph;
    use hlo_ir::Program;

    fn site_of(p: &Program, caller: &str, nth: usize) -> CallSiteRef {
        let cg = CallGraph::build(p);
        let id = p.find_public_func(caller).or_else(|| {
            p.iter_funcs()
                .find(|(_, f)| f.name == caller)
                .map(|(i, _)| i)
        });
        let id = id.unwrap();
        cg.edges
            .iter()
            .filter(|e| e.site.caller == id)
            .nth(nth)
            .unwrap()
            .site
    }

    #[test]
    fn clean_site_is_unrestricted() {
        let p = hlo_frontc::compile(&[("m", "fn f(x) { return x; } fn main() { return f(1); }")])
            .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(inline_restriction(&p, &s, Scope::CrossModule), None);
        assert_eq!(clone_restriction(&p, &s, Scope::CrossModule), None);
    }

    #[test]
    fn arity_mismatch_is_illegal() {
        let p = hlo_frontc::compile(&[(
            "m",
            "fn f(a, b) { return a + b; } fn main() { return f(1); }",
        )])
        .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(
            inline_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::ArityMismatch)
        );
        assert_eq!(
            clone_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::ArityMismatch)
        );
    }

    #[test]
    fn void_result_use_is_type_mismatch() {
        let p = hlo_frontc::compile(&[("m", "fn v(x) { sink(x); } fn main() { return v(1); }")])
            .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(
            inline_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::TypeMismatch)
        );
    }

    #[test]
    fn noinline_and_alloca_restrictions() {
        let p = hlo_frontc::compile(&[(
            "m",
            r#"
            #[noinline] fn ni(x) { return x; }
            fn al(n) { var p = __alloca(n); p[0] = 1; return p[0]; }
            fn main() { return ni(1) + al(8); }
            "#,
        )])
        .unwrap();
        let s0 = site_of(&p, "main", 0);
        let s1 = site_of(&p, "main", 1);
        assert_eq!(
            inline_restriction(&p, &s0, Scope::CrossModule),
            Some(Restriction::UserNoinline)
        );
        assert_eq!(
            inline_restriction(&p, &s1, Scope::CrossModule),
            Some(Restriction::DynAlloca)
        );
        // Cloning does not care about either.
        assert_eq!(clone_restriction(&p, &s0, Scope::CrossModule), None);
        assert_eq!(clone_restriction(&p, &s1, Scope::CrossModule), None);
    }

    #[test]
    fn strict_fp_mix_restriction() {
        let p = hlo_frontc::compile(&[(
            "m",
            r#"
            #[strict_fp] fn fsum(a, b) { return __ftoi(__fadd(__itof(a), __itof(b))); }
            fn main() { return fsum(1, 2); }
            "#,
        )])
        .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(
            inline_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::StrictFpMix)
        );
    }

    #[test]
    fn strict_fp_without_float_ops_is_fine() {
        let p = hlo_frontc::compile(&[(
            "m",
            "#[strict_fp] fn f(x) { return x + 1; } fn main() { return f(1); }",
        )])
        .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(inline_restriction(&p, &s, Scope::CrossModule), None);
    }

    #[test]
    fn scope_restriction_on_cross_module_sites() {
        let p = hlo_frontc::compile(&[
            ("a", "fn main() { return f(1); }"),
            ("b", "fn f(x) { return x; }"),
        ])
        .unwrap();
        let s = site_of(&p, "main", 0);
        assert_eq!(
            inline_restriction(&p, &s, Scope::WithinModule),
            Some(Restriction::OutOfScope)
        );
        assert_eq!(inline_restriction(&p, &s, Scope::CrossModule), None);
    }

    #[test]
    fn self_call_restricted_for_inline_not_clone() {
        let p = hlo_frontc::compile(&[(
            "m",
            "fn r(n) { if (n <= 0) { return 0; } return r(n - 1); } fn main() { return r(3); }",
        )])
        .unwrap();
        // the self-call site inside r
        let s = site_of(&p, "r", 0);
        assert_eq!(
            inline_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::SelfCall)
        );
        assert_eq!(clone_restriction(&p, &s, Scope::CrossModule), None);
    }

    #[test]
    fn entry_cannot_be_cloned() {
        let p = hlo_frontc::compile(&[(
            "m",
            "fn helper() { return main(); } fn main() { return 0; }",
        )])
        .unwrap();
        let s = site_of(&p, "helper", 0);
        assert_eq!(
            clone_restriction(&p, &s, Scope::CrossModule),
            Some(Restriction::EntryCallee)
        );
    }
}
