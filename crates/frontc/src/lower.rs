//! AST → IR lowering and cross-module linking.
//!
//! Linking resolves names the way a C toolchain does: definitions in the
//! same module win (including `static` ones), then public definitions in
//! other modules, then declared externs, then — for calls only — an
//! implicit external (library code the optimizer cannot see into).

use crate::ast::*;
use crate::FrontError;
use hlo_ir::{
    BinOp, BlockId, ConstVal, ExternId, FuncId, FunctionBuilder, GlobalId, Linkage, ModuleId,
    Operand, Program, ProgramBuilder, Reg, SlotId, Type, UnOp,
};
use std::collections::HashMap;

/// Links parsed modules into a whole [`Program`].
///
/// # Errors
/// Reports duplicate definitions, unresolved names used as values, misuse
/// of intrinsics, and `break`/`continue` outside loops.
pub fn link(modules: &[ModuleAst]) -> Result<Program, FrontError> {
    let mut pb = ProgramBuilder::new();
    let module_ids: Vec<ModuleId> = modules.iter().map(|m| pb.add_module(&m.name)).collect();

    // --- collect definitions and assign ids ---------------------------
    let mut fn_defs: Vec<(usize, &FnDef)> = Vec::new(); // (module idx, def)
    let mut public_fns: HashMap<&str, FuncId> = HashMap::new();
    let mut local_fns: Vec<HashMap<&str, FuncId>> = vec![HashMap::new(); modules.len()];
    let mut public_globals: HashMap<&str, GlobalId> = HashMap::new();
    let mut local_globals: Vec<HashMap<&str, GlobalId>> = vec![HashMap::new(); modules.len()];
    let mut declared_externs: Vec<HashMap<&str, ExternId>> = vec![HashMap::new(); modules.len()];

    let err = |m: &ModuleAst, line: u32, msg: String| FrontError {
        module: m.name.clone(),
        line,
        col: 1,
        msg,
    };

    let mut next_fn = 0u32;
    for (mi, m) in modules.iter().enumerate() {
        for item in &m.items {
            match item {
                Item::Fn(f) => {
                    let id = FuncId(next_fn);
                    next_fn += 1;
                    if local_fns[mi].insert(&f.name, id).is_some() {
                        return Err(err(
                            m,
                            f.line,
                            format!("duplicate function `{}` in module", f.name),
                        ));
                    }
                    if !f.is_static && public_fns.insert(&f.name, id).is_some() {
                        return Err(err(
                            m,
                            f.line,
                            format!("duplicate public function `{}`", f.name),
                        ));
                    }
                    fn_defs.push((mi, f));
                }
                Item::Global(g) => {
                    let linkage = if g.is_static {
                        Linkage::Static
                    } else {
                        Linkage::Public
                    };
                    let id =
                        pb.add_global(&g.name, module_ids[mi], linkage, g.words, g.init.clone());
                    if local_globals[mi].insert(&g.name, id).is_some() {
                        return Err(err(
                            m,
                            g.line,
                            format!("duplicate global `{}` in module", g.name),
                        ));
                    }
                    if !g.is_static && public_globals.insert(&g.name, id).is_some() {
                        return Err(err(
                            m,
                            g.line,
                            format!("duplicate public global `{}`", g.name),
                        ));
                    }
                }
                Item::Extern(e) => {
                    let id = pb.declare_extern(&e.name, Some(e.arity), true);
                    declared_externs[mi].insert(&e.name, id);
                }
            }
        }
    }

    // --- lower bodies ---------------------------------------------------
    for &(mi, def) in &fn_defs {
        let resolver = Resolver {
            module: mi,
            local_fns: &local_fns,
            public_fns: &public_fns,
            local_globals: &local_globals,
            public_globals: &public_globals,
            declared_externs: &declared_externs,
        };
        let func = lower_fn(&mut pb, modules, module_ids[mi], def, &resolver)?;
        let got = pb.add_function(func);
        debug_assert_eq!(got, local_fns[mi][def.name.as_str()]);
    }

    let entry = pb.program().find_public_func("main");
    Ok(pb.finish(entry))
}

struct Resolver<'a> {
    module: usize,
    local_fns: &'a [HashMap<&'a str, FuncId>],
    public_fns: &'a HashMap<&'a str, FuncId>,
    local_globals: &'a [HashMap<&'a str, GlobalId>],
    public_globals: &'a HashMap<&'a str, GlobalId>,
    declared_externs: &'a [HashMap<&'a str, ExternId>],
}

impl Resolver<'_> {
    fn func(&self, name: &str) -> Option<FuncId> {
        self.local_fns[self.module]
            .get(name)
            .or_else(|| self.public_fns.get(name))
            .copied()
    }

    fn global(&self, name: &str) -> Option<GlobalId> {
        self.local_globals[self.module]
            .get(name)
            .or_else(|| self.public_globals.get(name))
            .copied()
    }

    fn declared_extern(&self, name: &str) -> Option<ExternId> {
        self.declared_externs[self.module].get(name).copied()
    }
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(Reg),
    Array(SlotId),
}

struct Lower<'a, 'b> {
    pb: &'a mut ProgramBuilder,
    fb: FunctionBuilder,
    cur: BlockId,
    scopes: Vec<HashMap<String, Binding>>,
    /// (continue target, break target)
    loops: Vec<(BlockId, BlockId)>,
    resolver: &'a Resolver<'b>,
    module_name: &'a str,
    fn_line: u32,
    returns_value: bool,
}

impl Lower<'_, '_> {
    fn err(&self, msg: impl Into<String>) -> FrontError {
        FrontError {
            module: self.module_name.to_string(),
            line: self.fn_line,
            col: 1,
            msg: msg.into(),
        }
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn declare(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string(), b);
    }

    // --- statements ---------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), FrontError> {
        match s {
            Stmt::VarDecl { name, init } => {
                let r = self.fb.new_reg();
                let v = match init {
                    Some(e) => self.expr(e)?,
                    None => Operand::imm(0),
                };
                self.fb.copy_to(self.cur, r, v);
                self.declare(name, Binding::Scalar(r));
            }
            Stmt::ArrayDecl { name, words } => {
                let slot = self.fb.new_slot(words * 8);
                self.declare(name, Binding::Array(slot));
            }
            Stmt::Assign { target, value } => match target {
                LValue::Name(n) => {
                    let v = self.expr(value)?;
                    if let Some(Binding::Scalar(r)) = self.lookup(n) {
                        self.fb.copy_to(self.cur, r, v);
                    } else if let Some(Binding::Array(_)) = self.lookup(n) {
                        return Err(self.err(format!("cannot assign to array `{n}`")));
                    } else if let Some(g) = self.resolver.global(n) {
                        self.fb.store(
                            self.cur,
                            Operand::Const(ConstVal::GlobalAddr(g)),
                            Operand::imm(0),
                            v,
                        );
                    } else {
                        return Err(self.err(format!("assignment to undefined variable `{n}`")));
                    }
                }
                LValue::Index(base, idx) => {
                    let b = self.expr(base)?;
                    let i = self.expr(idx)?;
                    let off = self.scaled_offset(i);
                    let v = self.expr(value)?;
                    self.fb.store(self.cur, b, off, v);
                }
            },
            Stmt::Expr(e) => {
                self.expr_for_effect(e)?;
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.expr(cond)?;
                let tb = self.fb.new_block();
                let eb = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.br(self.cur, c, tb, eb);
                self.cur = tb;
                self.stmts(then_)?;
                self.fb.jump(self.cur, join);
                self.cur = eb;
                self.stmts(else_)?;
                self.fb.jump(self.cur, join);
                self.cur = join;
            }
            Stmt::While { cond, body } => {
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jump(self.cur, header);
                self.cur = header;
                let c = self.expr(cond)?;
                self.fb.br(self.cur, c, body_b, exit);
                self.cur = body_b;
                self.loops.push((header, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.fb.jump(self.cur, header);
                self.cur = exit;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for-scope covers the init declaration and the body.
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let step_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jump(self.cur, header);
                self.cur = header;
                let c = match cond {
                    Some(e) => self.expr(e)?,
                    None => Operand::imm(1),
                };
                self.fb.br(self.cur, c, body_b, exit);
                self.cur = body_b;
                self.loops.push((step_b, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.fb.jump(self.cur, step_b);
                self.cur = step_b;
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.fb.jump(self.cur, header);
                self.cur = exit;
                self.scopes.pop();
            }
            Stmt::Return(v) => {
                let val = match v {
                    Some(e) => Some(self.expr(e)?),
                    None => {
                        if self.returns_value {
                            Some(Operand::imm(0))
                        } else {
                            None
                        }
                    }
                };
                self.fb.ret(self.cur, val);
                // Code after a return in the same block is unreachable;
                // park it in a fresh block for simplify_cfg to collect.
                self.cur = self.fb.new_block();
            }
            Stmt::Break => {
                let (_, brk) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.err("`break` outside loop"))?;
                self.fb.jump(self.cur, brk);
                self.cur = self.fb.new_block();
            }
            Stmt::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.err("`continue` outside loop"))?;
                self.fb.jump(self.cur, cont);
                self.cur = self.fb.new_block();
            }
        }
        Ok(())
    }

    // --- expressions ----------------------------------------------------

    fn scaled_offset(&mut self, idx: Operand) -> Operand {
        match idx {
            Operand::Const(ConstVal::I64(v)) => Operand::imm(v.wrapping_mul(8)),
            other => {
                let r = self.fb.bin(self.cur, BinOp::Shl, other, Operand::imm(3));
                Operand::Reg(r)
            }
        }
    }

    fn expr_for_effect(&mut self, e: &Expr) -> Result<(), FrontError> {
        if let Expr::Call(callee, args) = e {
            self.lower_call(callee, args, false)?;
            return Ok(());
        }
        self.expr(e)?;
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, FrontError> {
        match e {
            Expr::Int(v) => Ok(Operand::imm(*v)),
            Expr::Name(n) => {
                if let Some(b) = self.lookup(n) {
                    return Ok(match b {
                        Binding::Scalar(r) => Operand::Reg(r),
                        Binding::Array(s) => {
                            let r = self.fb.frame_addr(self.cur, s);
                            Operand::Reg(r)
                        }
                    });
                }
                if let Some(g) = self.resolver.global(n) {
                    let words = self.pb.program().global(g).words;
                    if words == 1 {
                        let r = self.fb.load(
                            self.cur,
                            Operand::Const(ConstVal::GlobalAddr(g)),
                            Operand::imm(0),
                        );
                        return Ok(Operand::Reg(r));
                    }
                    // Arrays decay to their address.
                    return Ok(Operand::Const(ConstVal::GlobalAddr(g)));
                }
                if let Some(f) = self.resolver.func(n) {
                    // Function names decay to function pointers.
                    return Ok(Operand::Const(ConstVal::FuncAddr(f)));
                }
                Err(self.err(format!("undefined name `{n}`")))
            }
            Expr::AddrOf(n) => {
                if let Some(Binding::Array(s)) = self.lookup(n) {
                    let r = self.fb.frame_addr(self.cur, s);
                    return Ok(Operand::Reg(r));
                }
                if let Some(f) = self.resolver.func(n) {
                    return Ok(Operand::Const(ConstVal::FuncAddr(f)));
                }
                if let Some(g) = self.resolver.global(n) {
                    return Ok(Operand::Const(ConstVal::GlobalAddr(g)));
                }
                Err(self.err(format!("cannot take address of `{n}`")))
            }
            Expr::Un(op, a) => {
                let v = self.expr(a)?;
                let r = match op {
                    UnAst::Neg => self.fb.un(self.cur, UnOp::Neg, v),
                    UnAst::Not => self.fb.un(self.cur, UnOp::Not, v),
                    UnAst::LogNot => self.fb.bin(self.cur, BinOp::Eq, v, Operand::imm(0)),
                };
                Ok(Operand::Reg(r))
            }
            Expr::Bin(op, a, b) => match op {
                BinAst::LogAnd | BinAst::LogOr => self.short_circuit(*op, a, b),
                _ => {
                    let x = self.expr(a)?;
                    let y = self.expr(b)?;
                    let ir = match op {
                        BinAst::Add => BinOp::Add,
                        BinAst::Sub => BinOp::Sub,
                        BinAst::Mul => BinOp::Mul,
                        BinAst::Div => BinOp::Div,
                        BinAst::Rem => BinOp::Rem,
                        BinAst::And => BinOp::And,
                        BinAst::Or => BinOp::Or,
                        BinAst::Xor => BinOp::Xor,
                        BinAst::Shl => BinOp::Shl,
                        BinAst::Shr => BinOp::Shr,
                        BinAst::Lt => BinOp::Lt,
                        BinAst::Le => BinOp::Le,
                        BinAst::Gt => BinOp::Gt,
                        BinAst::Ge => BinOp::Ge,
                        BinAst::Eq => BinOp::Eq,
                        BinAst::Ne => BinOp::Ne,
                        BinAst::LogAnd | BinAst::LogOr => unreachable!(),
                    };
                    Ok(Operand::Reg(self.fb.bin(self.cur, ir, x, y)))
                }
            },
            Expr::Ternary(c, a, b) => {
                let cv = self.expr(c)?;
                let r = self.fb.new_reg();
                let tb = self.fb.new_block();
                let eb = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.br(self.cur, cv, tb, eb);
                self.cur = tb;
                let av = self.expr(a)?;
                self.fb.copy_to(self.cur, r, av);
                self.fb.jump(self.cur, join);
                self.cur = eb;
                let bv = self.expr(b)?;
                self.fb.copy_to(self.cur, r, bv);
                self.fb.jump(self.cur, join);
                self.cur = join;
                Ok(Operand::Reg(r))
            }
            Expr::Index(base, idx) => {
                let b = self.expr(base)?;
                let i = self.expr(idx)?;
                let off = self.scaled_offset(i);
                Ok(Operand::Reg(self.fb.load(self.cur, b, off)))
            }
            Expr::Call(callee, args) => {
                let r = self.lower_call(callee, args, true)?;
                Ok(Operand::Reg(r.expect("wanted result")))
            }
            Expr::Intrinsic(name, args) => self.intrinsic(name, args),
        }
    }

    fn short_circuit(&mut self, op: BinAst, a: &Expr, b: &Expr) -> Result<Operand, FrontError> {
        let r = self.fb.new_reg();
        let av = self.expr(a)?;
        let a_bool = self.fb.bin(self.cur, BinOp::Ne, av, Operand::imm(0));
        self.fb.copy_to(self.cur, r, Operand::Reg(a_bool));
        let rhs = self.fb.new_block();
        let join = self.fb.new_block();
        match op {
            BinAst::LogAnd => self.fb.br(self.cur, Operand::Reg(a_bool), rhs, join),
            BinAst::LogOr => self.fb.br(self.cur, Operand::Reg(a_bool), join, rhs),
            _ => unreachable!(),
        }
        self.cur = rhs;
        let bv = self.expr(b)?;
        let b_bool = self.fb.bin(self.cur, BinOp::Ne, bv, Operand::imm(0));
        self.fb.copy_to(self.cur, r, Operand::Reg(b_bool));
        self.fb.jump(self.cur, join);
        self.cur = join;
        Ok(Operand::Reg(r))
    }

    fn lower_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        want: bool,
    ) -> Result<Option<Reg>, FrontError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.expr(a)?);
        }
        // A bare name that is *not* a local variable resolves to a direct
        // or external callee; anything else is an indirect call.
        if let Expr::Name(n) = callee {
            if self.lookup(n).is_none() {
                if let Some(f) = self.resolver.func(n) {
                    let dst = want.then(|| self.fb.new_reg());
                    self.fb.push(
                        self.cur,
                        hlo_ir::Inst::Call {
                            dst,
                            callee: hlo_ir::Callee::Func(f),
                            args: argv,
                        },
                    );
                    return Ok(dst);
                }
                // declared extern, builtin, or implicit external library
                let e = match self.resolver.declared_extern(n) {
                    Some(e) => e,
                    None => self.pb.declare_extern(n.clone(), builtin_arity(n), true),
                };
                let dst = want.then(|| self.fb.new_reg());
                self.fb.push(
                    self.cur,
                    hlo_ir::Inst::Call {
                        dst,
                        callee: hlo_ir::Callee::Extern(e),
                        args: argv,
                    },
                );
                return Ok(dst);
            }
        }
        let fp = self.expr(callee)?;
        let dst = want.then(|| self.fb.new_reg());
        self.fb.push(
            self.cur,
            hlo_ir::Inst::Call {
                dst,
                callee: hlo_ir::Callee::Indirect(fp),
                args: argv,
            },
        );
        Ok(dst)
    }

    fn intrinsic(&mut self, name: &str, args: &[Expr]) -> Result<Operand, FrontError> {
        let need = |n: usize| -> Result<(), FrontError> {
            if args.len() != n {
                Err(self.err(format!("`{name}` expects {n} argument(s)")))
            } else {
                Ok(())
            }
        };
        match name {
            "__alloca" => {
                need(1)?;
                let n = self.expr(&args[0])?;
                let dst = self.fb.new_reg();
                self.fb
                    .push(self.cur, hlo_ir::Inst::Alloca { dst, bytes: n });
                Ok(Operand::Reg(dst))
            }
            "__itof" | "__ftoi" | "__fneg" => {
                need(1)?;
                let a = self.expr(&args[0])?;
                let op = match name {
                    "__itof" => UnOp::IToF,
                    "__ftoi" => UnOp::FToI,
                    _ => UnOp::FNeg,
                };
                Ok(Operand::Reg(self.fb.un(self.cur, op, a)))
            }
            "__fadd" | "__fsub" | "__fmul" | "__fdiv" | "__flt" | "__feq" => {
                need(2)?;
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                let op = match name {
                    "__fadd" => BinOp::FAdd,
                    "__fsub" => BinOp::FSub,
                    "__fmul" => BinOp::FMul,
                    "__fdiv" => BinOp::FDiv,
                    "__flt" => BinOp::FLt,
                    _ => BinOp::FEq,
                };
                Ok(Operand::Reg(self.fb.bin(self.cur, op, a, b)))
            }
            other => Err(self.err(format!("unknown intrinsic `{other}`"))),
        }
    }
}

fn builtin_arity(name: &str) -> Option<u32> {
    match name {
        "print_i64" | "sink" => Some(1),
        "checksum" | "abort" | "nop_lib" => Some(0),
        _ => None, // unknown library routine: varargs
    }
}

fn body_returns_value(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return(v) => v.is_some(),
        Stmt::If { then_, else_, .. } => body_returns_value(then_) || body_returns_value(else_),
        Stmt::While { body, .. } => body_returns_value(body),
        Stmt::For { body, .. } => body_returns_value(body),
        _ => false,
    })
}

fn lower_fn(
    pb: &mut ProgramBuilder,
    modules: &[ModuleAst],
    module: ModuleId,
    def: &FnDef,
    resolver: &Resolver<'_>,
) -> Result<hlo_ir::Function, FrontError> {
    let mut fb = FunctionBuilder::new(&def.name, module, def.params.len() as u32);
    fb.flags_mut().noinline = def.attrs.noinline;
    fb.flags_mut().inline_hint = def.attrs.inline_hint;
    fb.flags_mut().strict_fp = def.attrs.strict_fp;
    let entry = fb.entry_block();
    let returns_value = body_returns_value(&def.body);
    let mut scopes = vec![HashMap::new()];
    for (i, p) in def.params.iter().enumerate() {
        scopes[0].insert(p.clone(), Binding::Scalar(Reg(i as u32)));
    }
    let mut lower = Lower {
        pb,
        fb,
        cur: entry,
        scopes,
        loops: Vec::new(),
        resolver,
        module_name: &modules[resolver.module].name,
        fn_line: def.line,
        returns_value,
    };
    for s in &def.body {
        lower.stmt(s)?;
    }
    // Implicit return at the end of the body.
    let tail = if returns_value {
        Some(Operand::imm(0))
    } else {
        None
    };
    lower.fb.ret(lower.cur, tail);
    let linkage = if def.is_static {
        Linkage::Static
    } else {
        Linkage::Public
    };
    let ret = if returns_value { Type::I64 } else { Type::Void };
    Ok(lower.fb.finish(linkage, ret))
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use hlo_ir::verify_program;
    use hlo_vm::{run_program, ExecOptions};

    fn run(sources: &[(&str, &str)]) -> i64 {
        let p = compile(sources).unwrap();
        verify_program(&p).unwrap();
        run_program(&p, &[], &ExecOptions::default()).unwrap().ret
    }

    #[test]
    fn arithmetic_and_calls() {
        assert_eq!(
            run(&[(
                "m",
                "fn sq(x) { return x * x; } fn main() { return sq(5) + sq(2) * 2 - 3 % 2; }"
            )]),
            32
        );
    }

    #[test]
    fn loops_and_arrays() {
        let src = r#"
            global acc;
            fn main() {
                var t[10];
                for (var i = 0; i < 10; i = i + 1) { t[i] = i * i; }
                acc = 0;
                for (var i = 0; i < 10; i = i + 1) { acc = acc + t[i]; }
                return acc;
            }
        "#;
        assert_eq!(run(&[("m", src)]), 285);
    }

    #[test]
    fn cross_module_and_static_shadowing() {
        let a = r#"
            static fn helper() { return 1; }
            fn main() { return helper() + other(); }
        "#;
        let b = r#"
            static fn helper() { return 100; }
            fn other() { return helper() + 10; }
        "#;
        assert_eq!(run(&[("a", a), ("b", b)]), 111);
    }

    #[test]
    fn function_pointers_and_indirect_calls() {
        let src = r#"
            fn inc(x) { return x + 1; }
            fn dec(x) { return x - 1; }
            fn apply(f, x) { return f(x); }
            fn main() { return apply(&inc, 10) * apply(&dec, 10); }
        "#;
        assert_eq!(run(&[("m", src)]), 99);
    }

    #[test]
    fn function_name_decays_to_pointer() {
        let src = r#"
            fn id(x) { return x; }
            fn main() { var f = id; return f(7); }
        "#;
        assert_eq!(run(&[("m", src)]), 7);
    }

    #[test]
    fn short_circuit_evaluation() {
        let src = r#"
            global hits;
            fn bump() { hits = hits + 1; return 1; }
            fn main() {
                hits = 0;
                var a = 0 && bump();
                var b = 1 || bump();
                var c = 1 && bump();
                return hits * 100 + a + b * 10 + c;
            }
        "#;
        assert_eq!(run(&[("m", src)]), 111);
    }

    #[test]
    fn ternary_and_logical_not() {
        assert_eq!(run(&[("m", "fn main() { return !0 ? 4 : 9; }")]), 4);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            fn main() {
                var s = 0;
                for (var i = 0; i < 100; i = i + 1) {
                    if (i == 7) { break; }
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        "#;
        assert_eq!(run(&[("m", src)]), 9); // 1 + 3 + 5
    }

    #[test]
    fn globals_with_initializers() {
        let src = r#"
            global tab[4] = {10, 20, 30, 40};
            global scale = 2;
            fn main() { return tab[2] * scale; }
        "#;
        assert_eq!(run(&[("m", src)]), 60);
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fn main() { return fib(12); }";
        assert_eq!(run(&[("m", src)]), 144);
    }

    #[test]
    fn extern_calls_reach_builtins() {
        let p = compile(&[(
            "m",
            "fn main() { print_i64(5); sink(6); return checksum() != 0; }",
        )])
        .unwrap();
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.output, vec![5]);
        assert_eq!(out.ret, 1);
    }

    #[test]
    fn undeclared_call_becomes_external_site() {
        let p = compile(&[("m", "fn main() { return mystery_lib(1, 2, 3); }")]).unwrap();
        assert!(p.find_extern("mystery_lib").is_some());
    }

    #[test]
    fn intrinsics_float_and_alloca() {
        let src = r#"
            fn main() {
                var p = __alloca(16);
                p[0] = 11;
                var f = __fmul(__itof(3), __itof(5));
                return p[0] + __ftoi(f);
            }
        "#;
        assert_eq!(run(&[("m", src)]), 26);
    }

    #[test]
    fn attributes_reach_ir_flags() {
        let p = compile(&[(
            "m",
            "#[noinline] fn a() { return 0; } #[strict_fp] fn b() { return 0; } fn main() { return a() + b(); }",
        )])
        .unwrap();
        let a = p.find_func("m", "a").unwrap();
        let b = p.find_func("m", "b").unwrap();
        assert!(p.func(a).flags.noinline);
        assert!(p.func(b).flags.strict_fp);
    }

    #[test]
    fn duplicate_public_function_rejected() {
        let e =
            compile(&[("a", "fn f() { return 1; }"), ("b", "fn f() { return 2; }")]).unwrap_err();
        assert!(e.msg.contains("duplicate public function"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile(&[("m", "fn main() { break; }")]).unwrap_err();
        assert!(e.msg.contains("outside loop"));
    }

    #[test]
    fn undefined_name_rejected() {
        let e = compile(&[("m", "fn main() { return nope + 1; }")]).unwrap_err();
        assert!(e.msg.contains("undefined name"));
    }

    #[test]
    fn while_loop_with_global_state() {
        let src = r#"
            global n = 10;
            fn main() {
                var s = 0;
                while (n > 0) { s = s + n; n = n - 1; }
                return s;
            }
        "#;
        assert_eq!(run(&[("m", src)]), 55);
    }

    #[test]
    fn main_entry_is_detected() {
        let p = compile(&[("m", "fn main() { return 0; }")]).unwrap();
        assert!(p.entry.is_some());
        let p2 = compile(&[("m", "fn not_main() { return 0; }")]).unwrap();
        assert!(p2.entry.is_none());
    }

    #[test]
    fn arity_mismatch_is_representable() {
        // Calling a 2-param function with 1 arg parses, links and runs on
        // the VM (missing args read as 0), but the structural verifier
        // rejects it — such sites are inline-illegal (paper §2.3).
        let src = "fn two(a, b) { return a + b; } fn main() { return two(5); }";
        let p = compile(&[("m", src)]).unwrap();
        assert!(matches!(
            verify_program(&p),
            Err(hlo_ir::VerifyError::ArityMismatch { .. })
        ));
        let ret = run_program(&p, &[], &ExecOptions::default()).unwrap().ret;
        assert_eq!(ret, 5);
    }
}
