//! MinC lexer.

use crate::FrontError;

/// Token categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Identifier or keyword.
    Ident(String),
    /// `fn`.
    Fn,
    /// `static`.
    Static,
    /// `global`.
    Global,
    /// `extern`.
    Extern,
    /// `var`.
    Var,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `&&`.
    AmpAmp,
    /// `|`.
    Pipe,
    /// `||`.
    PipePipe,
    /// `^`.
    Caret,
    /// `!`.
    Bang,
    /// `~`.
    Tilde,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `?`.
    Question,
    /// `:`.
    Colon,
    /// `#[`, introducing an attribute.
    HashBracket,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Category and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Streaming tokenizer over MinC source.
#[derive(Debug)]
pub struct Lexer<'a> {
    module: &'a str,
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer for `src`, attributing errors to `module`.
    pub fn new(module: &'a str, src: &'a str) -> Self {
        Lexer {
            module,
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input (with a trailing [`TokenKind::Eof`]).
    ///
    /// # Errors
    /// Returns a positioned error on unknown characters or malformed
    /// literals.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.lex_int()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'{' => self.one(TokenKind::LBrace),
                b'}' => self.one(TokenKind::RBrace),
                b'[' => self.one(TokenKind::LBracket),
                b']' => self.one(TokenKind::RBracket),
                b',' => self.one(TokenKind::Comma),
                b';' => self.one(TokenKind::Semi),
                b'+' => self.one(TokenKind::Plus),
                b'-' => self.one(TokenKind::Minus),
                b'*' => self.one(TokenKind::Star),
                b'/' => self.one(TokenKind::Slash),
                b'%' => self.one(TokenKind::Percent),
                b'^' => self.one(TokenKind::Caret),
                b'~' => self.one(TokenKind::Tilde),
                b'?' => self.one(TokenKind::Question),
                b':' => self.one(TokenKind::Colon),
                b'&' => self.pair(b'&', TokenKind::AmpAmp, TokenKind::Amp),
                b'|' => self.pair(b'|', TokenKind::PipePipe, TokenKind::Pipe),
                b'=' => self.pair(b'=', TokenKind::EqEq, TokenKind::Assign),
                b'!' => self.pair(b'=', TokenKind::NotEq, TokenKind::Bang),
                b'<' => {
                    if self.peek2() == Some(b'<') {
                        self.advance();
                        self.one(TokenKind::Shl)
                    } else {
                        self.pair(b'=', TokenKind::Le, TokenKind::Lt)
                    }
                }
                b'>' => {
                    if self.peek2() == Some(b'>') {
                        self.advance();
                        self.one(TokenKind::Shr)
                    } else {
                        self.pair(b'=', TokenKind::Ge, TokenKind::Gt)
                    }
                }
                b'#' => {
                    if self.peek2() == Some(b'[') {
                        self.advance();
                        self.one(TokenKind::HashBracket)
                    } else {
                        return Err(self.err(line, col, "stray `#`"));
                    }
                }
                other => {
                    return Err(self.err(
                        line,
                        col,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(Token { kind, line, col });
        }
    }

    fn err(&self, line: u32, col: u32, msg: impl Into<String>) -> FrontError {
        FrontError {
            module: self.module.to_string(),
            line,
            col,
            msg: msg.into(),
        }
    }

    fn advance(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn one(&mut self, k: TokenKind) -> TokenKind {
        self.advance();
        k
    }

    fn pair(&mut self, second: u8, double: TokenKind, single: TokenKind) -> TokenKind {
        self.advance();
        if self.src.get(self.pos) == Some(&second) {
            self.advance();
            double
        } else {
            single
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.advance(),
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while self.src.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.advance();
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_int(&mut self) -> Result<TokenKind, FrontError> {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        // hex?
        if self.src[self.pos] == b'0' && self.peek2() == Some(b'x') {
            self.advance();
            self.advance();
            let hs = self.pos;
            while self
                .src
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_hexdigit())
            {
                self.advance();
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).expect("ascii");
            return u64::from_str_radix(text, 16)
                .map(|v| TokenKind::Int(v as i64))
                .map_err(|_| self.err(line, col, "malformed hex literal"));
        }
        while self.src.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.advance();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| self.err(line, col, "integer literal out of range"))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.advance();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        match text {
            "fn" => TokenKind::Fn,
            "static" => TokenKind::Static,
            "global" => TokenKind::Global,
            "extern" => TokenKind::Extern,
            "var" => TokenKind::Var,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            _ => TokenKind::Ident(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new("t", src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_operators_and_keywords() {
        let k = kinds("fn f() { return 1 << 2 >= 3 && x; }");
        assert!(k.contains(&TokenKind::Fn));
        assert!(k.contains(&TokenKind::Shl));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::AmpAmp));
        assert!(k.contains(&TokenKind::Ident("x".into())));
        assert_eq!(k.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn lexes_hex_and_decimal() {
        assert_eq!(
            kinds("0x10 42")[..2],
            [TokenKind::Int(16), TokenKind::Int(42)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("1 // comment with fn and junk $\n2");
        assert_eq!(k[..2], [TokenKind::Int(1), TokenKind::Int(2)]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = Lexer::new("t", "a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn attribute_token() {
        let k = kinds("#[noinline]");
        assert_eq!(k[0], TokenKind::HashBracket);
        assert_eq!(k[1], TokenKind::Ident("noinline".into()));
        assert_eq!(k[2], TokenKind::RBracket);
    }

    #[test]
    fn unknown_char_errors_with_position() {
        let e = Lexer::new("m", "a $").tokenize().unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 3);
        assert_eq!(e.module, "m");
    }
}
