//! MinC abstract syntax.

/// A parsed module (one source file).
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAst {
    /// Module (file) name.
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Function definition.
    Fn(FnDef),
    /// Global variable definition.
    Global(GlobalDef),
    /// External routine declaration: `extern fn name(arity);`.
    Extern(ExternDecl),
}

/// Function attributes from `#[...]` pragmas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FnAttrs {
    /// `#[noinline]` — the user forbids inlining this callee.
    pub noinline: bool,
    /// `#[inline]` — ranking bonus.
    pub inline_hint: bool,
    /// `#[strict_fp]` — no floating-point reassociation; bodies with
    /// different strictness may not be mixed by inlining.
    pub strict_fp: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Name (unique within the module).
    pub name: String,
    /// `static` (module-local) or public.
    pub is_static: bool,
    /// Attributes.
    pub attrs: FnAttrs,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A global definition: scalar or array with optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// `static` (module-local) or public.
    pub is_static: bool,
    /// Number of words (1 for scalars).
    pub words: u32,
    /// Initial values for the leading words.
    pub init: Vec<i64>,
    /// Source line.
    pub line: u32,
}

/// `extern fn name(n);` — declares a library routine of arity `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Name.
    pub name: String,
    /// Declared arity.
    pub arity: u32,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = e;` or `var x;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Optional initializer (defaults to 0).
        init: Option<Expr>,
    },
    /// `var a[N];` — local array of N words.
    ArrayDecl {
        /// Array name.
        name: String,
        /// Array size in words.
        words: u32,
    },
    /// `lhs = e;` where lhs is a variable or index expression.
    Assign {
        /// Where the value goes.
        target: LValue,
        /// The value expression.
        value: Expr,
    },
    /// Bare expression (for side effects).
    Expr(Expr),
    /// `if (c) {..} else {..}`
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then branch.
        then_: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_: Vec<Stmt>,
    },
    /// `while (c) {..}`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) {..}` — each part optional.
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent = always true).
        cond: Option<Expr>,
        /// Step statement, run after each iteration.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable (local or global).
    Name(String),
    /// `base[index]` where base is an array name or pointer expression.
    Index(Box<Expr>, Box<Expr>),
}

/// Binary operators (surface level; `&&`/`||` lower to control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinAst {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `&`.
    And,
    /// `|`.
    Or,
    /// `^`.
    Xor,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&&` (short-circuit).
    LogAnd,
    /// `||` (short-circuit).
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnAst {
    /// unary `-`.
    Neg,
    /// `~`.
    Not,
    /// `!`.
    LogNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference (local scalar value, global scalar value, or
    /// array/function name decaying to an address).
    Name(String),
    /// `&f` — address of a function (or of a global, for array bases).
    AddrOf(String),
    /// Unary operation.
    Un(UnAst, Box<Expr>),
    /// Binary operation.
    Bin(BinAst, Box<Expr>, Box<Expr>),
    /// `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `base[index]` load.
    Index(Box<Expr>, Box<Expr>),
    /// `callee(args...)`; `callee` may be a name (direct if it resolves to
    /// a function) or any expression (indirect).
    Call(Box<Expr>, Vec<Expr>),
    /// Compiler intrinsics (`__alloca`, `__itof`, ...).
    Intrinsic(String, Vec<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_are_constructible() {
        let e = Expr::Bin(
            BinAst::Add,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Name("x".into())),
        );
        assert_eq!(
            e,
            Expr::Bin(
                BinAst::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Name("x".into()))
            )
        );
    }
}
