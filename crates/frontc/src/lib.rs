#![warn(missing_docs)]
//! MinC: a miniature C-like front end producing `hlo-ir` programs.
//!
//! The paper's HLO consumes *ucode* produced by HP's C, C++ and Fortran
//! front ends; MinC plays that role here. It is deliberately small but
//! covers everything the evaluation needs to exercise:
//!
//! * multiple modules with C-style linkage (`static fn` / `static global`),
//!   so programs have genuine cross-module and within-module call sites;
//! * function pointers (`&f`, calls through variables), giving indirect
//!   call sites that the staged clone→constprop→inline pipeline can
//!   promote;
//! * recursion, loops, globals, local arrays;
//! * user pragmas `#[noinline]`, `#[inline]`, `#[strict_fp]` (the paper's
//!   user restrictions and the floating-point "technical restriction");
//! * `__alloca(n)` (the paper's pragmatic restriction) and float
//!   intrinsics `__itof/__ftoi/__fadd/__fsub/__fmul/__fdiv/__flt`;
//! * calls to undeclared names resolve to externals — library code the
//!   optimizer cannot see (Figure 5's "external" category).
//!
//! All values are 64-bit words, as in the underlying IR.
//!
//! # Example
//!
//! ```
//! let program = hlo_frontc::compile(&[(
//!     "main",
//!     r#"
//!     fn add(a, b) { return a + b; }
//!     fn main() { return add(40, 2); }
//!     "#,
//! )])?;
//! let out = hlo_vm::run_program(&program, &[], &hlo_vm::ExecOptions::default()).unwrap();
//! assert_eq!(out.ret, 42);
//! # Ok::<(), hlo_frontc::FrontError>(())
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::link;
pub use parser::parse_module;

use hlo_ir::Program;

/// A source-level error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// Module (file) name.
    pub module: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.module, self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for FrontError {}

/// Compiles and links a set of `(module name, source)` pairs into a whole
/// [`Program`]. The entry point is the public function named `main` (the
/// program is still valid without one, but cannot be executed).
///
/// # Errors
/// Returns the first syntax or resolution error encountered.
pub fn compile(sources: &[(&str, &str)]) -> Result<Program, FrontError> {
    let mut modules = Vec::with_capacity(sources.len());
    for (name, src) in sources {
        modules.push(parse_module(name, src)?);
    }
    link(&modules)
}
