//! MinC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::FrontError;

/// Parses one module's source into an AST.
///
/// # Errors
/// Returns the first syntax error, with position.
pub fn parse_module(name: &str, src: &str) -> Result<ModuleAst, FrontError> {
    let tokens = Lexer::new(name, src).tokenize()?;
    let mut p = Parser {
        module: name.to_string(),
        tokens,
        pos: 0,
    };
    let mut items = Vec::new();
    while !p.at(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(ModuleAst {
        name: name.to_string(),
        items,
    })
}

struct Parser {
    module: String,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: impl Into<String>) -> FrontError {
        let t = &self.tokens[self.pos];
        FrontError {
            module: self.module.clone(),
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, k: TokenKind, what: &str) -> Result<(), FrontError> {
        if self.at(&k) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, FrontError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn const_int(&mut self) -> Result<i64, FrontError> {
        let neg = if self.at(&TokenKind::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { v.wrapping_neg() } else { v })
            }
            other => Err(self.err(format!("expected integer constant, found {other:?}"))),
        }
    }

    // ----- items -----

    fn item(&mut self) -> Result<Item, FrontError> {
        let mut attrs = FnAttrs::default();
        while self.at(&TokenKind::HashBracket) {
            self.bump();
            let name = self.ident("attribute name")?;
            match name.as_str() {
                "noinline" => attrs.noinline = true,
                "inline" => attrs.inline_hint = true,
                "strict_fp" => attrs.strict_fp = true,
                other => return Err(self.err(format!("unknown attribute `{other}`"))),
            }
            self.expect(TokenKind::RBracket, "`]`")?;
        }
        let is_static = if self.at(&TokenKind::Static) {
            self.bump();
            true
        } else {
            false
        };
        match self.peek() {
            TokenKind::Fn => self.fn_def(is_static, attrs).map(Item::Fn),
            TokenKind::Global => {
                if attrs != FnAttrs::default() {
                    return Err(self.err("attributes are only valid on functions"));
                }
                self.global_def(is_static).map(Item::Global)
            }
            TokenKind::Extern => {
                if is_static || attrs != FnAttrs::default() {
                    return Err(self.err("extern declarations take no modifiers"));
                }
                self.extern_decl().map(Item::Extern)
            }
            other => Err(self.err(format!(
                "expected `fn`, `global` or `extern`, found {other:?}"
            ))),
        }
    }

    fn fn_def(&mut self, is_static: bool, attrs: FnAttrs) -> Result<FnDef, FrontError> {
        let line = self.tokens[self.pos].line;
        self.expect(TokenKind::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            is_static,
            attrs,
            params,
            body,
            line,
        })
    }

    fn global_def(&mut self, is_static: bool) -> Result<GlobalDef, FrontError> {
        let line = self.tokens[self.pos].line;
        self.expect(TokenKind::Global, "`global`")?;
        let name = self.ident("global name")?;
        let words = if self.at(&TokenKind::LBracket) {
            self.bump();
            let n = self.const_int()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            if n <= 0 {
                return Err(self.err("array size must be positive"));
            }
            n as u32
        } else {
            1
        };
        let mut init = Vec::new();
        if self.at(&TokenKind::Assign) {
            self.bump();
            if self.at(&TokenKind::LBrace) {
                self.bump();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        init.push(self.const_int()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBrace, "`}`")?;
            } else {
                init.push(self.const_int()?);
            }
        }
        self.expect(TokenKind::Semi, "`;`")?;
        if init.len() > words as usize {
            return Err(self.err("more initializers than array words"));
        }
        Ok(GlobalDef {
            name,
            is_static,
            words,
            init,
            line,
        })
    }

    fn extern_decl(&mut self) -> Result<ExternDecl, FrontError> {
        self.expect(TokenKind::Extern, "`extern`")?;
        self.expect(TokenKind::Fn, "`fn`")?;
        let name = self.ident("extern name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let arity = if self.at(&TokenKind::RParen) {
            0
        } else {
            let n = self.const_int()?;
            if n < 0 {
                return Err(self.err("arity must be non-negative"));
            }
            n as u32
        };
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(ExternDecl { name, arity })
    }

    // ----- statements -----

    fn block(&mut self) -> Result<Vec<Stmt>, FrontError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        match self.peek().clone() {
            TokenKind::Var => {
                self.bump();
                let name = self.ident("variable name")?;
                if self.at(&TokenKind::LBracket) {
                    self.bump();
                    let n = self.const_int()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    if n <= 0 {
                        return Err(self.err("array size must be positive"));
                    }
                    Ok(Stmt::ArrayDecl {
                        name,
                        words: n as u32,
                    })
                } else {
                    let init = if self.at(&TokenKind::Assign) {
                        self.bump();
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(TokenKind::Semi, "`;`")?;
                    Ok(Stmt::VarDecl { name, init })
                }
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_ = self.block()?;
                let else_ = if self.at(&TokenKind::Else) {
                    self.bump();
                    if self.at(&TokenKind::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_, else_ })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::For => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let init = if self.at(&TokenKind::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt_no_semi()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    Some(Box::new(s))
                };
                let cond = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;`")?;
                let step = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::Return => {
                self.bump();
                let v = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Return(v))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    /// Assignment or expression statement without the trailing `;`
    /// (shared by `for` headers and plain statements). `var` declarations
    /// are also allowed in `for` initializers.
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, FrontError> {
        if self.at(&TokenKind::Var) {
            self.bump();
            let name = self.ident("variable name")?;
            self.expect(TokenKind::Assign, "`=`")?;
            let init = Some(self.expr()?);
            return Ok(Stmt::VarDecl { name, init });
        }
        let e = self.expr()?;
        if self.at(&TokenKind::Assign) {
            self.bump();
            let value = self.expr()?;
            let target = match e {
                Expr::Name(n) => LValue::Name(n),
                Expr::Index(b, i) => LValue::Index(b, i),
                _ => return Err(self.err("invalid assignment target")),
            };
            Ok(Stmt::Assign { target, value })
        } else {
            Ok(Stmt::Expr(e))
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, FrontError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, FrontError> {
        let c = self.binary(0)?;
        if self.at(&TokenKind::Question) {
            self.bump();
            let a = self.expr()?;
            self.expect(TokenKind::Colon, "`:`")?;
            let b = self.ternary()?;
            Ok(Expr::Ternary(Box::new(c), Box::new(a), Box::new(b)))
        } else {
            Ok(c)
        }
    }

    fn bin_op_of(k: &TokenKind) -> Option<(BinAst, u8)> {
        Some(match k {
            TokenKind::PipePipe => (BinAst::LogOr, 1),
            TokenKind::AmpAmp => (BinAst::LogAnd, 2),
            TokenKind::Pipe => (BinAst::Or, 3),
            TokenKind::Caret => (BinAst::Xor, 4),
            TokenKind::Amp => (BinAst::And, 5),
            TokenKind::EqEq => (BinAst::Eq, 6),
            TokenKind::NotEq => (BinAst::Ne, 6),
            TokenKind::Lt => (BinAst::Lt, 7),
            TokenKind::Le => (BinAst::Le, 7),
            TokenKind::Gt => (BinAst::Gt, 7),
            TokenKind::Ge => (BinAst::Ge, 7),
            TokenKind::Shl => (BinAst::Shl, 8),
            TokenKind::Shr => (BinAst::Shr, 8),
            TokenKind::Plus => (BinAst::Add, 9),
            TokenKind::Minus => (BinAst::Sub, 9),
            TokenKind::Star => (BinAst::Mul, 10),
            TokenKind::Slash => (BinAst::Div, 10),
            TokenKind::Percent => (BinAst::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, FrontError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FrontError> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Un(UnAst::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Un(UnAst::Not, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Un(UnAst::LogNot, Box::new(self.unary()?)))
            }
            TokenKind::Amp => {
                self.bump();
                let name = self.ident("symbol after `&`")?;
                Ok(Expr::AddrOf(name))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, FrontError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at(&TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen, "`)`")?;
                    e = match e {
                        Expr::Name(n) if n.starts_with("__") => Expr::Intrinsic(n, args),
                        other => Expr::Call(Box::new(other), args),
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Ident(n) => {
                self.bump();
                Ok(Expr::Name(n))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ModuleAst {
        parse_module("t", src).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let m = parse("fn add(a, b) { return a + b; }");
        match &m.items[0] {
            Item::Fn(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let m = parse("fn f() { return 1 + 2 * 3; }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        match &f.body[0] {
            Stmt::Return(Some(Expr::Bin(BinAst::Add, _, rhs))) => {
                assert!(matches!(**rhs, Expr::Bin(BinAst::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_globals_with_initializers() {
        let m = parse("global x = 5; static global tab[3] = {1, 2, 3}; global z;");
        assert_eq!(m.items.len(), 3);
        match &m.items[1] {
            Item::Global(g) => {
                assert!(g.is_static);
                assert_eq!(g.words, 3);
                assert_eq!(g.init, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let m = parse(
            "fn f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { if (i % 2 == 0) { s = s + i; } else { continue; } } while (s > 100) { s = s - 1; } return s; }",
        );
        let Item::Fn(f) = &m.items[0] else { panic!() };
        assert_eq!(f.body.len(), 4);
    }

    #[test]
    fn parses_function_pointers_and_indirect_calls() {
        let m = parse("fn f(g) { var h = &f; return g(1) + h(2); }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        match &f.body[0] {
            Stmt::VarDecl { init: Some(e), .. } => {
                assert_eq!(*e, Expr::AddrOf("f".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_attributes_and_static() {
        let m = parse("#[noinline] #[strict_fp] static fn f() { return 0; }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        assert!(f.is_static);
        assert!(f.attrs.noinline);
        assert!(f.attrs.strict_fp);
        assert!(!f.attrs.inline_hint);
    }

    #[test]
    fn parses_extern_decl() {
        let m = parse("extern fn curses_move(2);");
        assert_eq!(
            m.items[0],
            Item::Extern(ExternDecl {
                name: "curses_move".into(),
                arity: 2
            })
        );
    }

    #[test]
    fn intrinsics_parse_as_intrinsic_nodes() {
        let m = parse("fn f(n) { return __alloca(n); }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        match &f.body[0] {
            Stmt::Return(Some(Expr::Intrinsic(n, args))) => {
                assert_eq!(n, "__alloca");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_and_logical_ops() {
        let m = parse("fn f(a, b) { return a && b ? a : b || 1; }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::Return(Some(Expr::Ternary(..)))));
    }

    #[test]
    fn error_has_position() {
        let e = parse_module("m", "fn f( { }").unwrap_err();
        assert_eq!(e.module, "m");
        assert!(e.msg.contains("expected"));
    }

    #[test]
    fn chained_calls_and_indexing() {
        let m = parse("fn f(t) { return t[0](1)[2]; }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::Return(Some(Expr::Index(..)))));
    }

    #[test]
    fn else_if_chains() {
        let m = parse("fn f(x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } }");
        let Item::Fn(f) = &m.items[0] else { panic!() };
        match &f.body[0] {
            Stmt::If { else_, .. } => assert!(matches!(else_[0], Stmt::If { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }
}
