//! Per-tier execution counters recorded into a `hlo-trace`
//! [`MetricsRegistry`].
//!
//! Metric names (tier label = [`Tier::as_str`]):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `vm_runs_total{tier=…}` | counter | executions started |
//! | `vm_instructions_total{tier=…}` | counter | instructions retired (successful runs) |
//! | `vm_dispatch_total{tier=…}` | counter | dispatch-loop iterations (tree: = retired) |
//! | `vm_exec_us{tier=…}` | histogram | wall time of the run |
//! | `vm_bytecode_compile_us` | histogram | bytecode tier's compile step |
//!
//! Tier throughput in instructions/second is
//! `vm_instructions_total / vm_exec_us.sum`.

use crate::bytecode::BytecodeProgram;
use crate::exec::run_counted;
use crate::interp::{run_tree, ExecOptions, ExecOutcome, Tier};
use crate::monitor::ExecMonitor;
use crate::Trap;
use hlo_ir::Program;
use hlo_trace::{MetricsRegistry, LATENCY_BUCKETS_US};
use std::time::Instant;

/// [`crate::run_with_monitor`] with tier counters recorded into
/// `metrics`. Semantics are identical to the unmetered entry points.
///
/// # Errors
/// Returns a [`Trap`] exactly as [`crate::run_with_monitor`] does; the
/// run is still counted (instruction totals only advance on success,
/// since a trap carries no retired count).
pub fn run_with_monitor_metrics<M: ExecMonitor>(
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
    metrics: &MetricsRegistry,
) -> Result<ExecOutcome, Trap> {
    match opts.tier {
        Tier::Tree => {
            let t0 = Instant::now();
            let res = run_tree(p, args, opts, monitor);
            let retired = res.as_ref().map(|o| o.retired).unwrap_or(0);
            // The tree-walker's dispatch count equals its retired count.
            record(metrics, Tier::Tree, t0.elapsed(), retired, retired);
            res
        }
        Tier::Bytecode => {
            let c0 = Instant::now();
            let bc = BytecodeProgram::compile(p);
            metrics.observe(
                "vm_bytecode_compile_us",
                LATENCY_BUCKETS_US,
                c0.elapsed().as_micros() as u64,
            );
            let t0 = Instant::now();
            let (res, dispatch) = run_counted(&bc, p, args, opts, monitor);
            let retired = res.as_ref().map(|o| o.retired).unwrap_or(0);
            record(metrics, Tier::Bytecode, t0.elapsed(), dispatch, retired);
            res
        }
    }
}

fn record(
    metrics: &MetricsRegistry,
    tier: Tier,
    elapsed: std::time::Duration,
    dispatch: u64,
    retired: u64,
) {
    let t = tier.as_str();
    metrics.inc(&format!("vm_runs_total{{tier=\"{t}\"}}"));
    metrics.add(&format!("vm_dispatch_total{{tier=\"{t}\"}}"), dispatch);
    metrics.add(&format!("vm_instructions_total{{tier=\"{t}\"}}"), retired);
    metrics.observe(
        &format!("vm_exec_us{{tier=\"{t}\"}}"),
        LATENCY_BUCKETS_US,
        elapsed.as_micros() as u64,
    );
}

/// Reads the registry back into a per-tier `(instructions, exec-us sum)`
/// pair for `tier`, for one-line throughput summaries.
pub fn tier_totals(metrics: &MetricsRegistry, tier: Tier) -> (u64, u64) {
    let t = tier.as_str();
    let insts = metrics.counter(&format!("vm_instructions_total{{tier=\"{t}\"}}"));
    let (_count, us) = metrics.histogram(&format!("vm_exec_us{{tier=\"{t}\"}}"));
    (insts, us)
}
