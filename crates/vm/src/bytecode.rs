//! Compilation of `hlo-ir` into a compact linear bytecode.
//!
//! The compiler resolves everything the tree-walker re-discovers on every
//! visit: virtual registers become frame-relative indices into one flat
//! register file, block targets become instruction offsets, call targets
//! become function-table indices, and constants — including function and
//! global addresses — are resolved at compile time using the same
//! [`DataLayout`] the VM's memory uses at run time.
//!
//! Two further design points buy the dispatch loop its speed:
//!
//! * **Constants live in the register window.** Each function's window is
//!   `num_regs` virtual registers followed by that function's deduplicated
//!   constants, copied in at frame push. Every operand is then a plain
//!   frame-relative slot index — the execution loop never branches on
//!   "register or constant" and needs no constant pool lookup.
//! * **One opcode per (operation, shape).** `Bin` is flattened into one
//!   opcode per [`BinOp`] (and `Un` per [`UnOp`]), so the loop has a
//!   single dispatch point instead of a second operator `match` inside
//!   the arithmetic arm. Every op fits in 20 bytes.
//!
//! * **Superinstruction fusion.** The hottest adjacent instruction pairs
//!   of the suite (compare-and-branch, shift-and-load, copy-and-jump, …)
//!   compile to single fused opcodes, halving dispatch work on those
//!   pairs. A fused op charges fuel, retires, and reports monitor events
//!   for *both* constituent IR instructions in original order — including
//!   trapping with `FuelExhausted` between them when the fuel runs out
//!   after the first — so observable semantics stay instruction-exact.
//!   Branch targets can only be block starts, so control never enters the
//!   middle of a fused pair.
//!
//! Apart from fusion, each IR instruction compiles to exactly one
//! [`BcOp`], and fuel accounting and retired-instruction counts always
//! match the tree-walker instruction for instruction. A block that does
//! not end in a terminator
//! gets a fuel-free [`BcOp::TrapAbort`] pad so that running off its end
//! traps exactly like the tree-walker's missing-instruction case; branch
//! targets outside the function's block list route to a shared abort op
//! at pc 0 (the tree-walker would panic there, which verified programs
//! never reach).
//!
//! # Validation
//!
//! The compiler bounds-checks every static index (registers against
//! `num_regs`, slots, direct-call and extern ids) so the execution loop
//! can use unchecked accesses. An instruction that fails validation —
//! possible only for IR that [`hlo_ir::verify_program`] rejects —
//! compiles to [`BcOp::InvalidIr`], which panics if executed, mirroring
//! the tree-walker's lazy panic on the same instruction.

use std::collections::HashMap;

use crate::interp::FRAME_OVERHEAD_BYTES;
use crate::memory::{DataLayout, CODE_BASE};
use hlo_ir::{BinOp, Block, BlockId, Callee, ConstVal, Inst, Operand, Program, Reg, UnOp};

/// `dst` sentinel for calls that discard their result.
pub(crate) const NO_DST: u32 = u32::MAX;

/// Range into [`BytecodeProgram::arg_slots`] holding a call's arguments.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArgSpan {
    pub(crate) start: u32,
    pub(crate) len: u16,
}

/// One bytecode operation (one per IR instruction, plus fuel-free
/// [`BcOp::TrapAbort`] pads). All operand fields are frame-relative
/// window slots (a register index, or `num_regs + k` for the function's
/// `k`-th constant).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BcOp {
    /// `Const` and `Copy`: move a slot into a register.
    Mov {
        dst: u32,
        src: u32,
    },
    Add {
        dst: u32,
        a: u32,
        b: u32,
    },
    Sub {
        dst: u32,
        a: u32,
        b: u32,
    },
    Mul {
        dst: u32,
        a: u32,
        b: u32,
    },
    Div {
        dst: u32,
        a: u32,
        b: u32,
    },
    Rem {
        dst: u32,
        a: u32,
        b: u32,
    },
    And {
        dst: u32,
        a: u32,
        b: u32,
    },
    Or {
        dst: u32,
        a: u32,
        b: u32,
    },
    Xor {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shl {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shr {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpEq {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpNe {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpLt {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpLe {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpGt {
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpGe {
        dst: u32,
        a: u32,
        b: u32,
    },
    FAdd {
        dst: u32,
        a: u32,
        b: u32,
    },
    FSub {
        dst: u32,
        a: u32,
        b: u32,
    },
    FMul {
        dst: u32,
        a: u32,
        b: u32,
    },
    FDiv {
        dst: u32,
        a: u32,
        b: u32,
    },
    FLt {
        dst: u32,
        a: u32,
        b: u32,
    },
    FEq {
        dst: u32,
        a: u32,
        b: u32,
    },
    Neg {
        dst: u32,
        a: u32,
    },
    Not {
        dst: u32,
        a: u32,
    },
    FNeg {
        dst: u32,
        a: u32,
    },
    IToF {
        dst: u32,
        a: u32,
    },
    FToI {
        dst: u32,
        a: u32,
    },
    Load {
        dst: u32,
        base: u32,
        offset: u32,
    },
    Store {
        base: u32,
        offset: u32,
        value: u32,
    },
    FrameAddr {
        dst: u32,
        slot: u32,
    },
    Alloca {
        dst: u32,
        bytes: u32,
    },
    Call {
        dst: u32,
        func: u32,
        args: ArgSpan,
    },
    CallExtern {
        dst: u32,
        ext: u32,
        args: ArgSpan,
    },
    CallIndirect {
        dst: u32,
        target: u32,
        args: ArgSpan,
    },
    /// `Ret { value: None }` compiles with a constant-slot 0.
    Ret {
        value: u32,
    },
    Jump {
        pc: u32,
    },
    Br {
        cond: u32,
        then_pc: u32,
        else_pc: u32,
    },
    // Fused superinstructions (two IR instructions, one dispatch). The
    // `u16` operand fields rely on the per-function window fitting in
    // 16 bits, checked before fusion is enabled for a function.
    /// `Bin{Eq} ; Br` on the comparison result.
    CmpEqBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Bin{Ne} ; Br` on the comparison result.
    CmpNeBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Bin{Lt} ; Br` on the comparison result.
    CmpLtBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Bin{Le} ; Br` on the comparison result.
    CmpLeBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Bin{Gt} ; Br` on the comparison result.
    CmpGtBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Bin{Ge} ; Br` on the comparison result.
    CmpGeBr {
        a: u16,
        b: u16,
        dst: u16,
        t: u32,
        e: u32,
    },
    /// `Const`/`Copy` ; `Jump`.
    MovJump {
        dst: u32,
        src: u32,
        pc: u32,
    },
    /// `Bin{Add}` ; `Const`/`Copy`.
    AddMov {
        dst: u16,
        a: u16,
        b: u16,
        dst2: u16,
        src2: u16,
    },
    /// `Bin{Shl}` ; `Load`.
    ShlLoad {
        dst: u16,
        a: u16,
        b: u16,
        dst2: u16,
        base2: u16,
        off2: u16,
    },
    /// `Bin{Shl}` ; `Store`.
    ShlStore {
        dst: u16,
        a: u16,
        b: u16,
        base2: u16,
        off2: u16,
        val2: u16,
    },
    /// `Load` ; `Ret`.
    LoadRet {
        dst: u16,
        base: u16,
        offset: u16,
        rv: u16,
    },
    /// `Store` ; `Jump`.
    StoreJump {
        base: u16,
        offset: u16,
        value: u16,
        pc: u32,
    },
    // Generic catch-alls for pairs involving non-trapping integer ALU
    // ops ([`AluK`]); the named fusions above take precedence for the
    // hottest shapes.
    /// `Bin` ; `Bin`.
    BinBin {
        k1: AluK,
        k2: AluK,
        dst: u16,
        a: u16,
        b: u16,
        dst2: u16,
        a2: u16,
        b2: u16,
    },
    /// `Bin` ; `Const`/`Copy`.
    BinMov {
        k1: AluK,
        dst: u16,
        a: u16,
        b: u16,
        dst2: u16,
        src2: u16,
    },
    /// `Const`/`Copy` ; `Bin`.
    MovBin {
        k2: AluK,
        dst: u16,
        src: u16,
        dst2: u16,
        a2: u16,
        b2: u16,
    },
    /// `Bin` ; `Load`.
    BinLoad {
        k1: AluK,
        dst: u16,
        a: u16,
        b: u16,
        dst2: u16,
        base2: u16,
        off2: u16,
    },
    /// `Bin` ; `Store`.
    BinStore {
        k1: AluK,
        dst: u16,
        a: u16,
        b: u16,
        base2: u16,
        off2: u16,
        val2: u16,
    },
    /// `Load` ; `Bin`.
    LoadBin {
        k2: AluK,
        dst: u16,
        base: u16,
        offset: u16,
        dst2: u16,
        a2: u16,
        b2: u16,
    },
    /// `Store` ; `Load`.
    StoreLoad {
        base: u16,
        offset: u16,
        value: u16,
        dst2: u16,
        base2: u16,
        off2: u16,
    },
    /// `Const`/`Copy` ; `Br`.
    MovBr {
        dst: u16,
        src: u16,
        cond: u16,
        t: u32,
        e: u32,
    },
    /// `Bin` ; `Ret`.
    BinRet {
        k1: AluK,
        dst: u16,
        a: u16,
        b: u16,
        rv: u16,
    },
    /// Fall-through or invalid-target pad: traps `Abort` in the current
    /// function without charging fuel (mirrors the tree-walker's
    /// missing-instruction case).
    TrapAbort,
    /// An instruction whose static indices failed validation. Executing
    /// it panics, as the tree-walker does on the same (unverifiable) IR.
    InvalidIr,
}

/// Frame shape and entry point of one compiled function.
#[derive(Debug, Clone)]
pub(crate) struct FuncMeta {
    pub(crate) entry_pc: u32,
    pub(crate) params: u32,
    /// The IR register count — what monitors observe as `callee_regs`.
    pub(crate) num_regs: u32,
    /// Window slots one activation occupies in the flat register file:
    /// `num_regs` registers followed by the function's constants.
    pub(crate) window: u32,
    /// Span into [`BytecodeProgram::fconsts`] with the constant values
    /// copied into slots `num_regs..window` at frame push.
    pub(crate) consts: (u32, u32),
    /// Total stack bytes one activation charges
    /// (`FRAME_OVERHEAD_BYTES` + 8-byte-rounded slot sizes).
    pub(crate) frame_need: u64,
    /// Byte offset of each slot from the post-push stack pointer.
    pub(crate) slot_offsets: Vec<u64>,
}

/// A whole program compiled to linear bytecode. Compile once, execute
/// many times (see [`crate::run_bytecode`]); compilation is cheap and
/// borrow-free, so the program it was compiled from is passed separately
/// at execution time (for extern names, trap attribution, and memory
/// initialization).
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    pub(crate) code: Vec<BcOp>,
    /// `(block, inst index)` per pc, for monitor `SiteId`s. The block id
    /// of a branch target `pc` is `sites[pc].0`.
    pub(crate) sites: Vec<(u32, u32)>,
    pub(crate) funcs: Vec<FuncMeta>,
    /// Per-function constant values, addressed by [`FuncMeta::consts`].
    pub(crate) fconsts: Vec<i64>,
    /// Flattened call-argument slot lists, addressed by [`ArgSpan`].
    pub(crate) arg_slots: Vec<u32>,
}

/// Shared pad for branch targets outside the function's block list.
const INVALID_TARGET_PC: u32 = 0;

struct Compiler {
    layout: DataLayout,
    arg_slots: Vec<u32>,
    fconsts: Vec<i64>,
    // Per-function state, reset by `begin_func`.
    num_regs: u32,
    n_slots: u32,
    n_funcs: u32,
    n_externs: u32,
    consts: Vec<i64>,
    const_index: HashMap<i64, u32>,
    invalid: bool,
}

impl Compiler {
    fn begin_func(&mut self, num_regs: u32, n_slots: u32) {
        self.num_regs = num_regs;
        self.n_slots = n_slots;
        self.consts.clear();
        self.const_index.clear();
    }

    /// Window slot of constant `v`, interning it on first use.
    fn imm(&mut self, v: i64) -> u32 {
        let next = self.consts.len() as u32;
        let idx = *self.const_index.entry(v).or_insert(next);
        if idx == next {
            self.consts.push(v);
        }
        self.num_regs + idx
    }

    fn const_slot(&mut self, c: ConstVal) -> u32 {
        // Mirrors `interp::const_value`, resolved at compile time.
        let v = match c {
            ConstVal::I64(v) => v,
            ConstVal::F64(b) => b.0 as i64,
            ConstVal::FuncAddr(f) => CODE_BASE | f.0 as i64,
            ConstVal::GlobalAddr(g) => self.layout.addr(g) as i64,
        };
        self.imm(v)
    }

    fn reg(&mut self, r: Reg) -> u32 {
        if r.0 >= self.num_regs {
            self.invalid = true;
        }
        r.0
    }

    fn src(&mut self, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Const(c) => self.const_slot(c),
        }
    }

    fn args(&mut self, args: &[Operand]) -> ArgSpan {
        let start = self.arg_slots.len() as u32;
        for &a in args {
            let s = self.src(a);
            self.arg_slots.push(s);
        }
        ArgSpan {
            start,
            len: args.len() as u16,
        }
    }

    fn target_pc(&self, block_pc: &[u32], t: BlockId) -> u32 {
        block_pc
            .get(t.index())
            .copied()
            .unwrap_or(INVALID_TARGET_PC)
    }

    fn inst(&mut self, inst: &Inst, block_pc: &[u32]) -> BcOp {
        self.invalid = false;
        let op = self.build(inst, block_pc);
        if self.invalid {
            BcOp::InvalidIr
        } else {
            op
        }
    }

    /// Builds the fused op for a pair [`fuse_of`] accepted. All registers
    /// were pre-validated and the function's window fits in 16 bits.
    fn fuse_build(&mut self, kind: Fused, i0: &Inst, i1: &Inst, block_pc: &[u32]) -> BcOp {
        self.invalid = false;
        let op = match (kind, i0, i1) {
            (Fused::CmpBr(cmp), Inst::Bin { dst, a, b, .. }, Inst::Br { then_, else_, .. }) => {
                let dst = self.reg(*dst) as u16;
                let a = self.src(*a) as u16;
                let b = self.src(*b) as u16;
                let t = self.target_pc(block_pc, *then_);
                let e = self.target_pc(block_pc, *else_);
                match cmp {
                    BinOp::Eq => BcOp::CmpEqBr { a, b, dst, t, e },
                    BinOp::Ne => BcOp::CmpNeBr { a, b, dst, t, e },
                    BinOp::Lt => BcOp::CmpLtBr { a, b, dst, t, e },
                    BinOp::Le => BcOp::CmpLeBr { a, b, dst, t, e },
                    BinOp::Gt => BcOp::CmpGtBr { a, b, dst, t, e },
                    BinOp::Ge => BcOp::CmpGeBr { a, b, dst, t, e },
                    _ => unreachable!("fuse_of only accepts comparisons"),
                }
            }
            (Fused::MovJump, mv, Inst::Jump { target }) => {
                let (dst, src) = self.mov_parts(mv);
                BcOp::MovJump {
                    dst,
                    src,
                    pc: self.target_pc(block_pc, *target),
                }
            }
            (Fused::AddMov, Inst::Bin { dst, a, b, .. }, mv) => {
                let dst = self.reg(*dst) as u16;
                let a = self.src(*a) as u16;
                let b = self.src(*b) as u16;
                let (dst2, src2) = self.mov_parts(mv);
                BcOp::AddMov {
                    dst,
                    a,
                    b,
                    dst2: dst2 as u16,
                    src2: src2 as u16,
                }
            }
            (
                Fused::ShlLoad,
                Inst::Bin { dst, a, b, .. },
                Inst::Load {
                    dst: dst2,
                    base,
                    offset,
                },
            ) => BcOp::ShlLoad {
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                dst2: self.reg(*dst2) as u16,
                base2: self.src(*base) as u16,
                off2: self.src(*offset) as u16,
            },
            (
                Fused::ShlStore,
                Inst::Bin { dst, a, b, .. },
                Inst::Store {
                    base,
                    offset,
                    value,
                },
            ) => BcOp::ShlStore {
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                base2: self.src(*base) as u16,
                off2: self.src(*offset) as u16,
                val2: self.src(*value) as u16,
            },
            (Fused::LoadRet, Inst::Load { dst, base, offset }, Inst::Ret { value }) => {
                BcOp::LoadRet {
                    dst: self.reg(*dst) as u16,
                    base: self.src(*base) as u16,
                    offset: self.src(*offset) as u16,
                    rv: match value {
                        Some(op) => self.src(*op) as u16,
                        None => self.imm(0) as u16,
                    },
                }
            }
            (
                Fused::StoreJump,
                Inst::Store {
                    base,
                    offset,
                    value,
                },
                Inst::Jump { target },
            ) => BcOp::StoreJump {
                base: self.src(*base) as u16,
                offset: self.src(*offset) as u16,
                value: self.src(*value) as u16,
                pc: self.target_pc(block_pc, *target),
            },
            (
                Fused::BinBin(k1, k2),
                Inst::Bin { dst, a, b, .. },
                Inst::Bin {
                    dst: dst2,
                    a: a2,
                    b: b2,
                    ..
                },
            ) => BcOp::BinBin {
                k1,
                k2,
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                dst2: self.reg(*dst2) as u16,
                a2: self.src(*a2) as u16,
                b2: self.src(*b2) as u16,
            },
            (Fused::BinMov(k1), Inst::Bin { dst, a, b, .. }, mv) => {
                let (dst2, src2) = self.mov_parts(mv);
                BcOp::BinMov {
                    k1,
                    dst: self.reg(*dst) as u16,
                    a: self.src(*a) as u16,
                    b: self.src(*b) as u16,
                    dst2: dst2 as u16,
                    src2: src2 as u16,
                }
            }
            (
                Fused::MovBin(k2),
                mv,
                Inst::Bin {
                    dst: dst2,
                    a: a2,
                    b: b2,
                    ..
                },
            ) => {
                let (dst, src) = self.mov_parts(mv);
                BcOp::MovBin {
                    k2,
                    dst: dst as u16,
                    src: src as u16,
                    dst2: self.reg(*dst2) as u16,
                    a2: self.src(*a2) as u16,
                    b2: self.src(*b2) as u16,
                }
            }
            (
                Fused::BinLoad(k1),
                Inst::Bin { dst, a, b, .. },
                Inst::Load {
                    dst: dst2,
                    base,
                    offset,
                },
            ) => BcOp::BinLoad {
                k1,
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                dst2: self.reg(*dst2) as u16,
                base2: self.src(*base) as u16,
                off2: self.src(*offset) as u16,
            },
            (
                Fused::BinStore(k1),
                Inst::Bin { dst, a, b, .. },
                Inst::Store {
                    base,
                    offset,
                    value,
                },
            ) => BcOp::BinStore {
                k1,
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                base2: self.src(*base) as u16,
                off2: self.src(*offset) as u16,
                val2: self.src(*value) as u16,
            },
            (
                Fused::LoadBin(k2),
                Inst::Load { dst, base, offset },
                Inst::Bin {
                    dst: dst2,
                    a: a2,
                    b: b2,
                    ..
                },
            ) => BcOp::LoadBin {
                k2,
                dst: self.reg(*dst) as u16,
                base: self.src(*base) as u16,
                offset: self.src(*offset) as u16,
                dst2: self.reg(*dst2) as u16,
                a2: self.src(*a2) as u16,
                b2: self.src(*b2) as u16,
            },
            (
                Fused::StoreLoad,
                Inst::Store {
                    base,
                    offset,
                    value,
                },
                Inst::Load {
                    dst: dst2,
                    base: base2,
                    offset: off2,
                },
            ) => BcOp::StoreLoad {
                base: self.src(*base) as u16,
                offset: self.src(*offset) as u16,
                value: self.src(*value) as u16,
                dst2: self.reg(*dst2) as u16,
                base2: self.src(*base2) as u16,
                off2: self.src(*off2) as u16,
            },
            (Fused::MovBr, mv, Inst::Br { cond, then_, else_ }) => {
                let (dst, src) = self.mov_parts(mv);
                BcOp::MovBr {
                    dst: dst as u16,
                    src: src as u16,
                    cond: self.src(*cond) as u16,
                    t: self.target_pc(block_pc, *then_),
                    e: self.target_pc(block_pc, *else_),
                }
            }
            (Fused::BinRet(k1), Inst::Bin { dst, a, b, .. }, Inst::Ret { value }) => BcOp::BinRet {
                k1,
                dst: self.reg(*dst) as u16,
                a: self.src(*a) as u16,
                b: self.src(*b) as u16,
                rv: match value {
                    Some(op) => self.src(*op) as u16,
                    None => self.imm(0) as u16,
                },
            },
            _ => unreachable!("fuse_of and fuse_build disagree"),
        };
        debug_assert!(!self.invalid, "fused pair was pre-validated");
        op
    }

    /// `(dst, src)` slots of a `Const` or `Copy` instruction.
    fn mov_parts(&mut self, mv: &Inst) -> (u32, u32) {
        match mv {
            Inst::Const { dst, value } => (self.reg(*dst), self.const_slot(*value)),
            Inst::Copy { dst, src } => (self.reg(*dst), self.src(*src)),
            _ => unreachable!("fuse_of only pairs Const/Copy here"),
        }
    }

    fn build(&mut self, inst: &Inst, block_pc: &[u32]) -> BcOp {
        match inst {
            Inst::Const { dst, value } => BcOp::Mov {
                dst: self.reg(*dst),
                src: self.const_slot(*value),
            },
            Inst::Copy { dst, src } => BcOp::Mov {
                dst: self.reg(*dst),
                src: self.src(*src),
            },
            Inst::Bin { dst, op, a, b } => {
                let dst = self.reg(*dst);
                let a = self.src(*a);
                let b = self.src(*b);
                match op {
                    BinOp::Add => BcOp::Add { dst, a, b },
                    BinOp::Sub => BcOp::Sub { dst, a, b },
                    BinOp::Mul => BcOp::Mul { dst, a, b },
                    BinOp::Div => BcOp::Div { dst, a, b },
                    BinOp::Rem => BcOp::Rem { dst, a, b },
                    BinOp::And => BcOp::And { dst, a, b },
                    BinOp::Or => BcOp::Or { dst, a, b },
                    BinOp::Xor => BcOp::Xor { dst, a, b },
                    BinOp::Shl => BcOp::Shl { dst, a, b },
                    BinOp::Shr => BcOp::Shr { dst, a, b },
                    BinOp::Eq => BcOp::CmpEq { dst, a, b },
                    BinOp::Ne => BcOp::CmpNe { dst, a, b },
                    BinOp::Lt => BcOp::CmpLt { dst, a, b },
                    BinOp::Le => BcOp::CmpLe { dst, a, b },
                    BinOp::Gt => BcOp::CmpGt { dst, a, b },
                    BinOp::Ge => BcOp::CmpGe { dst, a, b },
                    BinOp::FAdd => BcOp::FAdd { dst, a, b },
                    BinOp::FSub => BcOp::FSub { dst, a, b },
                    BinOp::FMul => BcOp::FMul { dst, a, b },
                    BinOp::FDiv => BcOp::FDiv { dst, a, b },
                    BinOp::FLt => BcOp::FLt { dst, a, b },
                    BinOp::FEq => BcOp::FEq { dst, a, b },
                }
            }
            Inst::Un { dst, op, a } => {
                let dst = self.reg(*dst);
                let a = self.src(*a);
                match op {
                    UnOp::Neg => BcOp::Neg { dst, a },
                    UnOp::Not => BcOp::Not { dst, a },
                    UnOp::FNeg => BcOp::FNeg { dst, a },
                    UnOp::IToF => BcOp::IToF { dst, a },
                    UnOp::FToI => BcOp::FToI { dst, a },
                }
            }
            Inst::Load { dst, base, offset } => BcOp::Load {
                dst: self.reg(*dst),
                base: self.src(*base),
                offset: self.src(*offset),
            },
            Inst::Store {
                base,
                offset,
                value,
            } => BcOp::Store {
                base: self.src(*base),
                offset: self.src(*offset),
                value: self.src(*value),
            },
            Inst::FrameAddr { dst, slot } => {
                if slot.0 >= self.n_slots {
                    self.invalid = true;
                }
                BcOp::FrameAddr {
                    dst: self.reg(*dst),
                    slot: slot.0,
                }
            }
            Inst::Alloca { dst, bytes } => BcOp::Alloca {
                dst: self.reg(*dst),
                bytes: self.src(*bytes),
            },
            Inst::Call { dst, callee, args } => {
                let args = self.args(args);
                let dst = match dst {
                    Some(d) => self.reg(*d),
                    None => NO_DST,
                };
                match callee {
                    Callee::Func(f) => {
                        if f.0 >= self.n_funcs {
                            self.invalid = true;
                        }
                        BcOp::Call {
                            dst,
                            func: f.0,
                            args,
                        }
                    }
                    Callee::Extern(e) => {
                        if e.0 >= self.n_externs {
                            self.invalid = true;
                        }
                        BcOp::CallExtern {
                            dst,
                            ext: e.0,
                            args,
                        }
                    }
                    Callee::Indirect(op) => BcOp::CallIndirect {
                        dst,
                        target: self.src(*op),
                        args,
                    },
                }
            }
            Inst::Ret { value } => BcOp::Ret {
                value: match value {
                    Some(op) => self.src(*op),
                    None => self.imm(0),
                },
            },
            Inst::Jump { target } => BcOp::Jump {
                pc: self.target_pc(block_pc, *target),
            },
            Inst::Br { cond, then_, else_ } => BcOp::Br {
                cond: self.src(*cond),
                then_pc: self.target_pc(block_pc, *then_),
                else_pc: self.target_pc(block_pc, *else_),
            },
        }
    }
}

/// True when execution can run off the end of `b` (empty, or last
/// instruction is not a terminator) and the block needs an abort pad.
fn needs_pad(b: &Block) -> bool {
    !matches!(
        b.insts.last(),
        Some(Inst::Ret { .. } | Inst::Jump { .. } | Inst::Br { .. })
    )
}

/// Non-trapping integer ALU operator, for the generic fused pair ops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AluK {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The [`AluK`] of `op`, or `None` for trapping and float operators
/// (which never participate in generic fusion).
fn alu_k(op: BinOp) -> Option<AluK> {
    match op {
        BinOp::Add => Some(AluK::Add),
        BinOp::Sub => Some(AluK::Sub),
        BinOp::Mul => Some(AluK::Mul),
        BinOp::And => Some(AluK::And),
        BinOp::Or => Some(AluK::Or),
        BinOp::Xor => Some(AluK::Xor),
        BinOp::Shl => Some(AluK::Shl),
        BinOp::Shr => Some(AluK::Shr),
        BinOp::Eq => Some(AluK::Eq),
        BinOp::Ne => Some(AluK::Ne),
        BinOp::Lt => Some(AluK::Lt),
        BinOp::Le => Some(AluK::Le),
        BinOp::Gt => Some(AluK::Gt),
        BinOp::Ge => Some(AluK::Ge),
        _ => None,
    }
}

/// A fusable adjacent instruction pair (the suite's hottest dynamic
/// pairs, measured on the tree tier).
#[derive(Clone, Copy)]
enum Fused {
    CmpBr(BinOp),
    MovJump,
    AddMov,
    ShlLoad,
    ShlStore,
    LoadRet,
    StoreJump,
    BinBin(AluK, AluK),
    BinMov(AluK),
    MovBin(AluK),
    BinLoad(AluK),
    BinStore(AluK),
    LoadBin(AluK),
    StoreLoad,
    MovBr,
    BinRet(AluK),
}

/// True when every register the instruction names is in range — fusion
/// is restricted to fully valid pairs so an invalid instruction still
/// compiles to its own [`BcOp::InvalidIr`].
fn regs_ok(inst: &Inst, num_regs: u32) -> bool {
    let mut ok = true;
    inst.for_each_use(|o| {
        if let Operand::Reg(r) = o {
            ok &= r.0 < num_regs;
        }
    });
    if let Some(d) = inst.dst() {
        ok &= d.0 < num_regs;
    }
    ok
}

/// Decides whether the adjacent pair `(i0, i1)` compiles to one fused
/// op. Used identically by the pc-layout pass and the emission pass.
fn fuse_of(i0: &Inst, i1: &Inst, num_regs: u32) -> Option<Fused> {
    use BinOp::*;
    if !regs_ok(i0, num_regs) || !regs_ok(i1, num_regs) {
        return None;
    }
    match (i0, i1) {
        (Inst::Bin { op, dst, .. }, Inst::Br { cond, .. })
            if matches!(op, Eq | Ne | Lt | Le | Gt | Ge) && *cond == Operand::Reg(*dst) =>
        {
            Some(Fused::CmpBr(*op))
        }
        (Inst::Copy { .. } | Inst::Const { .. }, Inst::Jump { .. }) => Some(Fused::MovJump),
        (Inst::Bin { op: Add, .. }, Inst::Copy { .. } | Inst::Const { .. }) => Some(Fused::AddMov),
        (Inst::Bin { op: Shl, .. }, Inst::Load { .. }) => Some(Fused::ShlLoad),
        (Inst::Bin { op: Shl, .. }, Inst::Store { .. }) => Some(Fused::ShlStore),
        (Inst::Load { .. }, Inst::Ret { .. }) => Some(Fused::LoadRet),
        (Inst::Store { .. }, Inst::Jump { .. }) => Some(Fused::StoreJump),
        (Inst::Bin { op: o1, .. }, Inst::Bin { op: o2, .. }) => {
            Some(Fused::BinBin(alu_k(*o1)?, alu_k(*o2)?))
        }
        (Inst::Bin { op, .. }, Inst::Copy { .. } | Inst::Const { .. }) => {
            Some(Fused::BinMov(alu_k(*op)?))
        }
        (Inst::Copy { .. } | Inst::Const { .. }, Inst::Bin { op, .. }) => {
            Some(Fused::MovBin(alu_k(*op)?))
        }
        (Inst::Bin { op, .. }, Inst::Load { .. }) => Some(Fused::BinLoad(alu_k(*op)?)),
        (Inst::Bin { op, .. }, Inst::Store { .. }) => Some(Fused::BinStore(alu_k(*op)?)),
        (Inst::Load { .. }, Inst::Bin { op, .. }) => Some(Fused::LoadBin(alu_k(*op)?)),
        (Inst::Store { .. }, Inst::Load { .. }) => Some(Fused::StoreLoad),
        (Inst::Copy { .. } | Inst::Const { .. }, Inst::Br { .. }) => Some(Fused::MovBr),
        (Inst::Bin { op, .. }, Inst::Ret { .. }) => Some(Fused::BinRet(alu_k(*op)?)),
        _ => None,
    }
}

/// Upper bound on a function's window size: registers plus one constant
/// slot per constant-ish operand site. When this fits in 16 bits, every
/// operand slot fits the fused ops' `u16` fields.
fn max_window(f: &hlo_ir::Function) -> u64 {
    let mut consts = 0u64;
    for b in &f.blocks {
        for i in &b.insts {
            i.for_each_use(|o| {
                if matches!(o, Operand::Const(_)) {
                    consts += 1;
                }
            });
            if matches!(i, Inst::Const { .. } | Inst::Ret { value: None }) {
                consts += 1;
            }
        }
    }
    f.num_regs as u64 + consts
}

impl BytecodeProgram {
    /// Compiles every function of `p`. Never fails: malformed block
    /// shapes compile to fuel-free abort ops, and instructions with
    /// out-of-range static indices (IR that `verify_program` rejects)
    /// compile to ops that panic if executed — the tree-walker panics on
    /// the same instructions.
    pub fn compile(p: &Program) -> BytecodeProgram {
        let mut cx = Compiler {
            layout: DataLayout::of(p),
            arg_slots: Vec::new(),
            fconsts: Vec::new(),
            num_regs: 0,
            n_slots: 0,
            n_funcs: p.funcs.len() as u32,
            n_externs: p.externs.len() as u32,
            consts: Vec::new(),
            const_index: HashMap::new(),
            invalid: false,
        };
        // pc 0 is the shared invalid-target pad.
        let mut code = vec![BcOp::TrapAbort];
        let mut sites = vec![(0u32, 0u32)];
        let mut funcs = Vec::with_capacity(p.funcs.len());

        for f in &p.funcs {
            cx.begin_func(f.num_regs, f.slots.len() as u32);
            // A function whose params exceed its register count cannot be
            // entered (the tree-walker panics copying arguments); guard
            // its entry with a panicking op.
            let broken_shape = f.params > f.num_regs;
            let guard_pc = code.len() as u32;
            if broken_shape {
                code.push(BcOp::InvalidIr);
                sites.push((0, 0));
            }
            // Fusion requires every window slot to fit the fused ops'
            // 16-bit operand fields.
            let fuse_ok = max_window(f) < u16::MAX as u64;
            let fuse_at = |insts: &[Inst], i: usize| -> Option<Fused> {
                if fuse_ok && i + 1 < insts.len() {
                    fuse_of(&insts[i], &insts[i + 1], f.num_regs)
                } else {
                    None
                }
            };
            let mut block_pc = Vec::with_capacity(f.blocks.len());
            let mut pc = code.len() as u32;
            for b in &f.blocks {
                block_pc.push(pc);
                let mut i = 0;
                while i < b.insts.len() {
                    i += if fuse_at(&b.insts, i).is_some() { 2 } else { 1 };
                    pc += 1;
                }
                pc += needs_pad(b) as u32;
            }
            let entry_pc = if broken_shape {
                guard_pc
            } else {
                block_pc.first().copied().unwrap_or(INVALID_TARGET_PC)
            };
            for (bi, b) in f.blocks.iter().enumerate() {
                let mut ii = 0;
                while ii < b.insts.len() {
                    match fuse_at(&b.insts, ii) {
                        Some(kind) => {
                            let op = cx.fuse_build(kind, &b.insts[ii], &b.insts[ii + 1], &block_pc);
                            code.push(op);
                            sites.push((bi as u32, ii as u32));
                            ii += 2;
                        }
                        None => {
                            let op = cx.inst(&b.insts[ii], &block_pc);
                            code.push(op);
                            sites.push((bi as u32, ii as u32));
                            ii += 1;
                        }
                    }
                }
                if needs_pad(b) {
                    code.push(BcOp::TrapAbort);
                    sites.push((bi as u32, b.insts.len() as u32));
                }
            }

            let mut frame_need = FRAME_OVERHEAD_BYTES;
            let mut slot_offsets = Vec::with_capacity(f.slots.len());
            let mut cursor = 0u64;
            for &s in &f.slots {
                slot_offsets.push(cursor);
                let rounded = ((s as u64) + 7) & !7;
                cursor += rounded;
                frame_need += rounded;
            }
            let cstart = cx.fconsts.len() as u32;
            cx.fconsts.extend_from_slice(&cx.consts);
            funcs.push(FuncMeta {
                entry_pc,
                params: f.params,
                num_regs: f.num_regs,
                window: f.num_regs + cx.consts.len() as u32,
                consts: (cstart, cx.consts.len() as u32),
                frame_need,
                slot_offsets,
            });
        }

        BytecodeProgram {
            code,
            sites,
            funcs,
            fconsts: cx.fconsts,
            arg_slots: cx.arg_slots,
        }
    }

    /// Number of bytecode ops (including pads), for diagnostics.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program compiled to no code beyond the shared pad.
    pub fn is_empty(&self) -> bool {
        self.code.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bcop_stays_compact() {
        // The dispatch loop's locality depends on a dense code array.
        // 20 bytes = tag + the largest payload (14 bytes, align 4);
        // a new (fused) variant must not grow the op further.
        assert!(std::mem::size_of::<super::BcOp>() <= 20);
    }
}
