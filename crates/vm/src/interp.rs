//! The interpreter core.

use crate::builtins::{call_builtin, BuiltinState};
use crate::memory::{Memory, CODE_BASE};
use crate::monitor::{CallKind, ExecMonitor, NullMonitor, SiteId};
use crate::{Trap, TrapKind};
use hlo_ir::{BinOp, BlockId, Callee, ConstVal, FuncId, Inst, Operand, Program, Reg, UnOp};

/// Which execution engine runs the program. Both tiers implement the
/// same observable semantics — fuel accounting, trap taxonomy, extern
/// ordering, output, checksum, and the [`ExecMonitor`] event stream are
/// identical instruction for instruction; the fuzz oracle cross-checks
/// every candidate on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The tree-walking reference interpreter.
    #[default]
    Tree,
    /// The linear-bytecode dispatch loop (`crate::bytecode` +
    /// `crate::exec`): registers resolved to frame slots, block targets
    /// pre-linked to instruction offsets, constants pooled.
    Bytecode,
}

impl Tier {
    /// Stable lower-case name (`tree` / `bytecode`), used in CLI flags
    /// and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Tree => "tree",
            Tier::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Tier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" => Ok(Tier::Tree),
            "bytecode" => Ok(Tier::Bytecode),
            other => Err(format!("bad tier `{other}` (expected tree|bytecode)")),
        }
    }
}

/// Execution limits and sizing.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Maximum instructions to retire before trapping with
    /// [`TrapKind::FuelExhausted`].
    pub fuel: u64,
    /// Stack segment size in bytes.
    pub stack_bytes: u64,
    /// Which execution engine to use (default: the tree-walking
    /// reference interpreter).
    pub tier: Tier,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            fuel: 1 << 32,
            stack_bytes: 4 << 20,
            tier: Tier::default(),
        }
    }
}

/// The result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value returned by the entry function (0 for void entries).
    pub ret: i64,
    /// Values printed via the `print_i64` builtin.
    pub output: Vec<i64>,
    /// Checksum accumulated by the `sink` builtin.
    pub checksum: u64,
    /// Instructions retired (program instructions; excludes modeled
    /// call-overhead instructions, which `hlo-sim` adds).
    pub retired: u64,
}

/// Bytes of stack charged per activation beyond declared slots (models the
/// frame-marker/save area; also bounds recursion depth).
pub(crate) const FRAME_OVERHEAD_BYTES: u64 = 32;

struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<i64>,
    slot_addrs: Vec<u64>,
    /// Stack pointer to restore when this frame pops.
    saved_sp: u64,
    /// Where the caller wants the return value.
    ret_dst: Option<Reg>,
}

/// Runs `p` from its entry with the given arguments and no monitor.
///
/// # Errors
/// Returns a [`Trap`] on any run-time fault, missing entry, or fuel
/// exhaustion.
pub fn run_program(p: &Program, args: &[i64], opts: &ExecOptions) -> Result<ExecOutcome, Trap> {
    run_with_monitor(p, args, opts, &mut NullMonitor)
}

#[inline]
fn ev(op: Operand, regs: &[i64], mem: &Memory) -> i64 {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Const(c) => const_value(c, mem),
    }
}

/// Runs `p` from its entry, reporting every dynamic event to `monitor`.
/// `opts.tier` selects the engine; both tiers produce identical outcomes,
/// traps, and monitor event streams.
///
/// # Errors
/// Returns a [`Trap`] on any run-time fault, missing entry, or fuel
/// exhaustion.
pub fn run_with_monitor<M: ExecMonitor>(
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
) -> Result<ExecOutcome, Trap> {
    match opts.tier {
        Tier::Tree => run_tree(p, args, opts, monitor),
        Tier::Bytecode => {
            let bc = crate::bytecode::BytecodeProgram::compile(p);
            crate::exec::run_bytecode(&bc, p, args, opts, monitor)
        }
    }
}

/// The tree-walking reference interpreter (tier `tree`).
pub(crate) fn run_tree<M: ExecMonitor>(
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
) -> Result<ExecOutcome, Trap> {
    let entry = p.entry.ok_or_else(|| Trap::new(TrapKind::NoEntry))?;
    let mut mem = Memory::new(p, opts.stack_bytes);
    let mut sp = mem.stack_top();
    let mut builtins = BuiltinState::default();
    let mut fuel = opts.fuel;
    let mut retired = 0u64;

    let mut frames: Vec<Frame> = Vec::with_capacity(64);
    push_frame(
        p,
        entry,
        args,
        &mut sp,
        mem.stack_limit(),
        None,
        &mut frames,
    )
    .map_err(|t| in_func(t, p, entry))?;
    monitor.block(entry, BlockId(0));

    let final_ret;
    loop {
        let (func_id, cur_block, cur_idx) = {
            let t = frames.last().expect("active frame");
            (t.func, t.block, t.idx)
        };
        let f = p.func(func_id);
        let inst = match f.blocks[cur_block.index()].insts.get(cur_idx) {
            Some(i) => i,
            // Unreachable for verified programs; stay panic-free anyway.
            None => return Err(in_func(Trap::new(TrapKind::Abort), p, func_id)),
        };
        let site = SiteId {
            func: func_id,
            block: cur_block,
            inst: cur_idx,
        };
        if fuel == 0 {
            return Err(in_func(Trap::new(TrapKind::FuelExhausted), p, func_id));
        }
        fuel -= 1;
        retired += 1;
        monitor.inst(site);

        match inst {
            Inst::Const { dst, value } => {
                let v = const_value(*value, &mem);
                let fr = frames.last_mut().expect("frame");
                fr.regs[dst.index()] = v;
                fr.idx += 1;
            }
            Inst::Copy { dst, src } => {
                let fr = frames.last_mut().expect("frame");
                let v = ev(*src, &fr.regs, &mem);
                fr.regs[dst.index()] = v;
                fr.idx += 1;
            }
            Inst::Bin { dst, op, a, b } => {
                let fr = frames.last_mut().expect("frame");
                let x = ev(*a, &fr.regs, &mem);
                let y = ev(*b, &fr.regs, &mem);
                let v = eval_bin(*op, x, y).map_err(|t| in_func(t, p, func_id))?;
                fr.regs[dst.index()] = v;
                fr.idx += 1;
            }
            Inst::Un { dst, op, a } => {
                let fr = frames.last_mut().expect("frame");
                let x = ev(*a, &fr.regs, &mem);
                fr.regs[dst.index()] = eval_un(*op, x);
                fr.idx += 1;
            }
            Inst::Load { dst, base, offset } => {
                let fr = frames.last_mut().expect("frame");
                let addr =
                    ev(*base, &fr.regs, &mem).wrapping_add(ev(*offset, &fr.regs, &mem)) as u64;
                monitor.mem(addr, false);
                let v = mem.load(addr).map_err(|t| in_func(t, p, func_id))?;
                let fr = frames.last_mut().expect("frame");
                fr.regs[dst.index()] = v;
                fr.idx += 1;
            }
            Inst::Store {
                base,
                offset,
                value,
            } => {
                let fr = frames.last().expect("frame");
                let addr =
                    ev(*base, &fr.regs, &mem).wrapping_add(ev(*offset, &fr.regs, &mem)) as u64;
                let v = ev(*value, &fr.regs, &mem);
                monitor.mem(addr, true);
                mem.store(addr, v).map_err(|t| in_func(t, p, func_id))?;
                frames.last_mut().expect("frame").idx += 1;
            }
            Inst::FrameAddr { dst, slot } => {
                let fr = frames.last_mut().expect("frame");
                fr.regs[dst.index()] = fr.slot_addrs[slot.index()] as i64;
                fr.idx += 1;
            }
            Inst::Alloca { dst, bytes } => {
                let fr = frames.last().expect("frame");
                let n = ev(*bytes, &fr.regs, &mem).max(0) as u64;
                let n = (n + 7) & !7;
                if sp < mem.stack_limit() + n {
                    return Err(in_func(Trap::new(TrapKind::StackOverflow), p, func_id));
                }
                sp -= n;
                let fr = frames.last_mut().expect("frame");
                fr.regs[dst.index()] = sp as i64;
                fr.idx += 1;
            }
            Inst::Call { dst, callee, args } => {
                // Evaluate target and arguments with the caller frame.
                enum Target {
                    Program(FuncId, CallKind),
                    External(hlo_ir::ExternId),
                }
                let (target, argv) = {
                    let fr = frames.last().expect("frame");
                    let target = match callee {
                        Callee::Func(t) => Target::Program(*t, CallKind::Direct),
                        Callee::Extern(e) => Target::External(*e),
                        Callee::Indirect(op) => {
                            let v = ev(*op, &fr.regs, &mem);
                            if v & CODE_BASE == CODE_BASE
                                && ((v & !CODE_BASE) as u64) < p.funcs.len() as u64
                            {
                                Target::Program(FuncId((v & !CODE_BASE) as u32), CallKind::Indirect)
                            } else {
                                return Err(in_func(
                                    Trap::new(TrapKind::BadIndirect { value: v }),
                                    p,
                                    func_id,
                                ));
                            }
                        }
                    };
                    let argv: Vec<i64> = args.iter().map(|a| ev(*a, &fr.regs, &mem)).collect();
                    (target, argv)
                };
                let dst = *dst;
                frames.last_mut().expect("frame").idx += 1; // resume point
                match target {
                    Target::Program(t, kind) => {
                        let callee_fn = p.func(t);
                        monitor.call(site, t, kind, callee_fn.num_regs, argv.len());
                        push_frame(p, t, &argv, &mut sp, mem.stack_limit(), dst, &mut frames)
                            .map_err(|t| in_func(t, p, func_id))?;
                        monitor.block(t, BlockId(0));
                    }
                    Target::External(e) => {
                        monitor.extern_call(site, e);
                        let name = &p.ext(e).name;
                        let r = call_builtin(&mut builtins, name, &argv)
                            .map_err(|t| in_func(t, p, func_id))?;
                        if let Some(d) = dst {
                            frames.last_mut().expect("frame").regs[d.index()] = r;
                        }
                    }
                }
            }
            Inst::Ret { value } => {
                let v = {
                    let fr = frames.last().expect("frame");
                    match value {
                        Some(op) => ev(*op, &fr.regs, &mem),
                        None => 0,
                    }
                };
                let regs = f.num_regs;
                let frame = frames.pop().expect("frame exists");
                sp = frame.saved_sp;
                monitor.ret(func_id, regs);
                match frames.last_mut() {
                    Some(caller) => {
                        if let Some(d) = frame.ret_dst {
                            caller.regs[d.index()] = v;
                        }
                    }
                    None => {
                        final_ret = v;
                        break;
                    }
                }
            }
            Inst::Jump { target } => {
                let t = *target;
                monitor.jump(site, t);
                monitor.edge(func_id, cur_block, t);
                let fr = frames.last_mut().expect("frame");
                fr.block = t;
                fr.idx = 0;
                monitor.block(func_id, t);
            }
            Inst::Br { cond, then_, else_ } => {
                let fr = frames.last_mut().expect("frame");
                let c = ev(*cond, &fr.regs, &mem) != 0;
                let t = if c { *then_ } else { *else_ };
                fr.block = t;
                fr.idx = 0;
                monitor.cond_branch(site, c);
                monitor.edge(func_id, cur_block, t);
                monitor.block(func_id, t);
            }
        }
    }

    Ok(ExecOutcome {
        ret: final_ret,
        output: builtins.output,
        checksum: builtins.checksum,
        retired,
    })
}

pub(crate) fn in_func(mut t: Trap, p: &Program, f: FuncId) -> Trap {
    if t.func.is_none() {
        t.func = Some(p.func(f).name.clone());
    }
    t
}

fn push_frame(
    p: &Program,
    func: FuncId,
    args: &[i64],
    sp: &mut u64,
    stack_limit: u64,
    ret_dst: Option<Reg>,
    frames: &mut Vec<Frame>,
) -> Result<(), Trap> {
    let f = p.func(func);
    let saved_sp = *sp;
    let mut need = FRAME_OVERHEAD_BYTES;
    for &s in &f.slots {
        need += ((s as u64) + 7) & !7;
    }
    if *sp < stack_limit + need {
        return Err(Trap::new(TrapKind::StackOverflow));
    }
    *sp -= need;
    let mut slot_addrs = Vec::with_capacity(f.slots.len());
    let mut cursor = *sp;
    for &s in &f.slots {
        slot_addrs.push(cursor);
        cursor += ((s as u64) + 7) & !7;
    }
    let mut regs = vec![0i64; f.num_regs as usize];
    // Missing arguments read as 0, extras are dropped: arity-mismatched
    // programs keep running (the paper preserves semantically incorrect
    // programs; HLO just refuses to inline or clone such sites).
    let n = (f.params as usize).min(args.len());
    regs[..n].copy_from_slice(&args[..n]);
    frames.push(Frame {
        func,
        block: BlockId(0),
        idx: 0,
        regs,
        slot_addrs,
        saved_sp,
        ret_dst,
    });
    Ok(())
}

fn const_value(c: ConstVal, mem: &Memory) -> i64 {
    match c {
        ConstVal::I64(v) => v,
        ConstVal::F64(b) => b.0 as i64,
        ConstVal::FuncAddr(f) => CODE_BASE | f.0 as i64,
        ConstVal::GlobalAddr(g) => mem.layout().addr(g) as i64,
    }
}

#[inline(always)]
pub(crate) fn eval_bin(op: BinOp, x: i64, y: i64) -> Result<i64, Trap> {
    let f = |v: i64| f64::from_bits(v as u64);
    let b = |v: f64| v.to_bits() as i64;
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(Trap::new(TrapKind::DivByZero));
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(Trap::new(TrapKind::DivByZero));
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
        BinOp::Shr => x.wrapping_shr((y & 63) as u32),
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        BinOp::FAdd => b(f(x) + f(y)),
        BinOp::FSub => b(f(x) - f(y)),
        BinOp::FMul => b(f(x) * f(y)),
        BinOp::FDiv => b(f(x) / f(y)),
        BinOp::FLt => (f(x) < f(y)) as i64,
        BinOp::FEq => (f(x) == f(y)) as i64,
    })
}

#[inline(always)]
pub(crate) fn eval_un(op: UnOp, x: i64) -> i64 {
    match op {
        UnOp::Neg => x.wrapping_neg(),
        UnOp::Not => !x,
        UnOp::FNeg => (-f64::from_bits(x as u64)).to_bits() as i64,
        UnOp::IToF => (x as f64).to_bits() as i64,
        UnOp::FToI => {
            let v = f64::from_bits(x as u64);
            if v.is_nan() {
                0
            } else {
                v as i64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{ConstVal, FunctionBuilder, Linkage, ProgramBuilder, Type};

    fn build_fact() -> Program {
        // fact(n) = n <= 1 ? 1 : n * fact(n - 1); main() = fact(10)
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![Operand::imm(10)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));

        let mut fact = FunctionBuilder::new("fact", m, 1);
        let e = fact.entry_block();
        let base = fact.new_block();
        let rec = fact.new_block();
        let n = Operand::Reg(fact.param(0));
        let c = fact.bin(e, BinOp::Le, n, Operand::imm(1));
        fact.br(e, c.into(), base, rec);
        fact.ret(base, Some(Operand::imm(1)));
        let n1 = fact.bin(rec, BinOp::Sub, n, Operand::imm(1));
        let sub = fact.call(rec, FuncId(1), vec![n1.into()]);
        let prod = fact.bin(rec, BinOp::Mul, n, sub.into());
        fact.ret(rec, Some(prod.into()));
        pb.add_function(fact.finish(Linkage::Public, Type::I64));
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn recursion_works() {
        let p = build_fact();
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 3_628_800);
        assert!(out.retired > 10);
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let p = build_fact();
        let err = run_program(
            &p,
            &[],
            &ExecOptions {
                fuel: 5,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err.kind, TrapKind::FuelExhausted));
    }

    #[test]
    fn stack_overflow_on_infinite_recursion() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        f.call_void(e, FuncId(0), vec![]);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let err = run_program(&p, &[], &ExecOptions::default()).unwrap_err();
        assert!(matches!(err.kind, TrapKind::StackOverflow));
    }

    #[test]
    fn div_by_zero_traps_with_function_name() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        let q = f.bin(e, BinOp::Div, Operand::imm(1), Operand::imm(0));
        f.ret(e, Some(q.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let err = run_program(&p, &[], &ExecOptions::default()).unwrap_err();
        assert!(matches!(err.kind, TrapKind::DivByZero));
        assert_eq!(err.func.as_deref(), Some("main"));
    }

    #[test]
    fn globals_load_store() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 2, vec![5, 0]);
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        let ga = f.const_(e, ConstVal::GlobalAddr(g));
        let v = f.load(e, ga.into(), Operand::imm(0));
        let v2 = f.bin(e, BinOp::Add, v.into(), Operand::imm(1));
        f.store(e, ga.into(), Operand::imm(8), v2.into());
        let back = f.load(e, ga.into(), Operand::imm(8));
        f.ret(e, Some(back.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 6);
    }

    #[test]
    fn frame_slots_are_private_per_activation() {
        // rec(n): slot x = n; if n > 0 { rec(n-1) }; return x  -- if frames
        // shared slots the inner call would clobber the outer x.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![Operand::imm(3)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));

        let mut rec = FunctionBuilder::new("rec", m, 1);
        let s = rec.new_slot(8);
        let e = rec.entry_block();
        let then_b = rec.new_block();
        let join = rec.new_block();
        let n = Operand::Reg(rec.param(0));
        let a = rec.frame_addr(e, s);
        rec.store(e, a.into(), Operand::imm(0), n);
        let c = rec.bin(e, BinOp::Gt, n, Operand::imm(0));
        rec.br(e, c.into(), then_b, join);
        let n1 = rec.bin(then_b, BinOp::Sub, n, Operand::imm(1));
        let _ = rec.call(then_b, FuncId(1), vec![n1.into()]);
        rec.jump(then_b, join);
        let a2 = rec.frame_addr(join, s);
        let v = rec.load(join, a2.into(), Operand::imm(0));
        rec.ret(join, Some(v.into()));
        pb.add_function(rec.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 3);
    }

    #[test]
    fn indirect_call_through_table() {
        // main: fp = &id; fp(99)
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let fp = main.const_(e, ConstVal::FuncAddr(FuncId(1)));
        let r = main.call_indirect(e, fp.into(), vec![Operand::imm(99)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut id = FunctionBuilder::new("id", m, 1);
        let e = id.entry_block();
        id.ret(e, Some(Operand::Reg(id.param(0))));
        pb.add_function(id.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 99);
    }

    #[test]
    fn bad_indirect_traps() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call_indirect(e, Operand::imm(12345), vec![]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let err = run_program(&p, &[], &ExecOptions::default()).unwrap_err();
        assert!(matches!(err.kind, TrapKind::BadIndirect { value: 12345 }));
    }

    #[test]
    fn extern_builtins_and_output() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let pr = pb.declare_extern("print_i64", Some(1), false);
        let sink = pb.declare_extern("sink", Some(1), false);
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_extern(e, pr, vec![Operand::imm(7)], false);
        main.call_extern(e, sink, vec![Operand::imm(9)], false);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.output, vec![7]);
        assert_ne!(out.checksum, 0);
    }

    #[test]
    fn arity_mismatch_reads_zero() {
        // main calls two_param with a single argument; param 1 must read 0.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![Operand::imm(5)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut f = FunctionBuilder::new("two", m, 2);
        let e = f.entry_block();
        let s = f.bin(
            e,
            BinOp::Add,
            Operand::Reg(f.param(0)),
            Operand::Reg(f.param(1)),
        );
        f.ret(e, Some(s.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 5);
    }

    #[test]
    fn float_arithmetic_roundtrips() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let x = main.un(e, UnOp::IToF, Operand::imm(3));
        let y = main.un(e, UnOp::IToF, Operand::imm(4));
        let s = main.bin(e, BinOp::FMul, x.into(), y.into());
        let r = main.un(e, UnOp::FToI, s.into());
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 12);
    }

    #[test]
    fn alloca_allocates_distinct_memory() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let a = main.new_reg();
        main.push(
            e,
            Inst::Alloca {
                dst: a,
                bytes: Operand::imm(16),
            },
        );
        let b = main.new_reg();
        main.push(
            e,
            Inst::Alloca {
                dst: b,
                bytes: Operand::imm(16),
            },
        );
        main.store(e, a.into(), Operand::imm(0), Operand::imm(1));
        main.store(e, b.into(), Operand::imm(0), Operand::imm(2));
        let va = main.load(e, a.into(), Operand::imm(0));
        let vb = main.load(e, b.into(), Operand::imm(0));
        let s = main.bin(e, BinOp::Add, va.into(), vb.into());
        main.ret(e, Some(s.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 3);
    }

    #[test]
    fn monitor_sees_calls_and_branches() {
        #[derive(Default)]
        struct Rec {
            calls: usize,
            rets: usize,
            branches: usize,
            mems: usize,
        }
        impl ExecMonitor for Rec {
            fn call(&mut self, _s: SiteId, _c: FuncId, _k: CallKind, _r: u32, _n: usize) {
                self.calls += 1;
            }
            fn ret(&mut self, _f: FuncId, _r: u32) {
                self.rets += 1;
            }
            fn cond_branch(&mut self, _s: SiteId, _t: bool) {
                self.branches += 1;
            }
            fn mem(&mut self, _a: u64, _w: bool) {
                self.mems += 1;
            }
        }
        let p = build_fact();
        let mut r = Rec::default();
        run_with_monitor(&p, &[], &ExecOptions::default(), &mut r).unwrap();
        assert_eq!(r.calls, 10); // fact(10)..fact(1)
        assert_eq!(r.rets, 11); // + main
        assert_eq!(r.branches, 10);
        assert_eq!(r.mems, 0);
    }

    #[test]
    fn bytecode_tier_matches_tree_on_fact() {
        let p = build_fact();
        let tree = run_program(&p, &[], &ExecOptions::default()).unwrap();
        let bc = run_program(
            &p,
            &[],
            &ExecOptions {
                tier: Tier::Bytecode,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tree, bc);
    }

    #[test]
    fn bytecode_tier_fuel_parity_on_fact() {
        // At every fuel level the two tiers agree on the full result —
        // same outcome (incl. retired count) or the same trap in the
        // same function.
        let p = build_fact();
        for fuel in 0..120 {
            let a = run_program(
                &p,
                &[],
                &ExecOptions {
                    fuel,
                    ..Default::default()
                },
            );
            let b = run_program(
                &p,
                &[],
                &ExecOptions {
                    fuel,
                    tier: Tier::Bytecode,
                    ..Default::default()
                },
            );
            assert_eq!(a, b, "tiers diverged at fuel {fuel}");
        }
    }

    #[test]
    fn void_callee_result_reads_zero() {
        // A call that expects a result from a void function gets 0.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut v = FunctionBuilder::new("v", m, 0);
        let e = v.entry_block();
        v.ret(e, None);
        pb.add_function(v.finish(Linkage::Public, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let out = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 0);
    }
}
