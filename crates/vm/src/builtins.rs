//! Builtin implementations of external routines.
//!
//! Externs model precompiled library code (Figure 5's "external" call
//! sites). The suite uses a deliberately small, deterministic set.

use crate::{Trap, TrapKind};

/// Side-effect state shared by builtins during one execution.
#[derive(Debug, Clone, Default)]
pub struct BuiltinState {
    /// Values printed via `print_i64`, in order.
    pub output: Vec<i64>,
    /// Running checksum fed by `sink`.
    pub checksum: u64,
}

impl BuiltinState {
    /// Folds a value into the checksum (order-sensitive mix).
    pub fn sink(&mut self, v: i64) {
        self.checksum = self
            .checksum
            .rotate_left(5)
            .wrapping_add(v as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Executes the builtin named `name` with `args`, returning its result
/// value (0 for void builtins).
///
/// # Errors
/// Traps with [`TrapKind::MissingExtern`] for unknown names and with
/// [`TrapKind::Abort`] when the program calls `abort`.
pub fn call_builtin(state: &mut BuiltinState, name: &str, args: &[i64]) -> Result<i64, Trap> {
    match name {
        // Output: records the value; costed like a library call by hlo-sim.
        "print_i64" => {
            state.output.push(args.first().copied().unwrap_or(0));
            Ok(0)
        }
        // Consume a value so the optimizer cannot remove its computation.
        "sink" => {
            state.sink(args.first().copied().unwrap_or(0));
            Ok(0)
        }
        // Read back the running checksum (lets programs self-validate).
        "checksum" => Ok(state.checksum as i64),
        "abort" => Err(Trap::new(TrapKind::Abort)),
        // A do-nothing library routine, like the stub curses library the
        // paper describes for 072.sc.
        "nop_lib" => Ok(0),
        other => Err(Trap::new(TrapKind::MissingExtern {
            name: other.to_string(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_records_output() {
        let mut s = BuiltinState::default();
        call_builtin(&mut s, "print_i64", &[42]).unwrap();
        call_builtin(&mut s, "print_i64", &[7]).unwrap();
        assert_eq!(s.output, vec![42, 7]);
    }

    #[test]
    fn sink_is_order_sensitive() {
        let mut a = BuiltinState::default();
        let mut b = BuiltinState::default();
        a.sink(1);
        a.sink(2);
        b.sink(2);
        b.sink(1);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn checksum_reads_back() {
        let mut s = BuiltinState::default();
        call_builtin(&mut s, "sink", &[3]).unwrap();
        let c = call_builtin(&mut s, "checksum", &[]).unwrap();
        assert_eq!(c as u64, s.checksum);
    }

    #[test]
    fn abort_traps() {
        let mut s = BuiltinState::default();
        assert!(matches!(
            call_builtin(&mut s, "abort", &[]).unwrap_err().kind,
            TrapKind::Abort
        ));
    }

    #[test]
    fn unknown_extern_traps() {
        let mut s = BuiltinState::default();
        assert!(matches!(
            call_builtin(&mut s, "mystery", &[]).unwrap_err().kind,
            TrapKind::MissingExtern { .. }
        ));
    }
}
