//! Flat data memory: globals segment + downward-growing stack.

use crate::{Trap, TrapKind};
use hlo_ir::{GlobalId, Program};

/// Function-pointer encoding: run-time value of `ConstVal::FuncAddr(f)` is
/// `CODE_BASE | f.0`. The bit is high enough never to collide with data
/// addresses.
pub const CODE_BASE: i64 = 1 << 62;

/// Byte address 0..8 is unmapped so that null-pointer dereferences trap.
pub const NULL_GUARD_BYTES: u64 = 8;

/// Placement of globals in data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    addrs: Vec<u64>,
    globals_end: u64,
}

impl DataLayout {
    /// Lays out every global of `p`, 8-byte aligned, after the null guard.
    pub fn of(p: &Program) -> Self {
        let mut addrs = Vec::with_capacity(p.globals.len());
        let mut cursor = NULL_GUARD_BYTES;
        for g in &p.globals {
            addrs.push(cursor);
            cursor += g.bytes().max(8);
        }
        DataLayout {
            addrs,
            globals_end: cursor,
        }
    }

    /// Byte address of global `g`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn addr(&self, g: GlobalId) -> u64 {
        self.addrs[g.index()]
    }

    /// First byte past the last global.
    pub fn globals_end(&self) -> u64 {
        self.globals_end
    }
}

/// Word-granular data memory with bounds and alignment checking.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<i64>,
    layout: DataLayout,
    stack_base_words: usize,
}

impl Memory {
    /// Builds memory for `p` with `stack_bytes` of stack, initializing
    /// global words from their initializers.
    pub fn new(p: &Program, stack_bytes: u64) -> Self {
        let layout = DataLayout::of(p);
        let stack_words = (stack_bytes / 8) as usize;
        let globals_words = (layout.globals_end / 8) as usize;
        let mut words = vec![0i64; globals_words + stack_words];
        for (gi, g) in p.globals.iter().enumerate() {
            let base = (layout.addr(GlobalId(gi as u32)) / 8) as usize;
            for (i, &v) in g.init.iter().enumerate() {
                if i < g.words as usize {
                    words[base + i] = v;
                }
            }
        }
        Memory {
            words,
            layout,
            stack_base_words: globals_words,
        }
    }

    /// The global placement used.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// Byte address one past the top of the stack (initial stack pointer).
    pub fn stack_top(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Lowest byte address the stack may reach.
    pub fn stack_limit(&self) -> u64 {
        self.stack_base_words as u64 * 8
    }

    #[inline(always)]
    fn word_index(&self, addr: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(8) {
            return Err(Trap::new(TrapKind::Misaligned { addr }));
        }
        if addr < NULL_GUARD_BYTES || addr >= self.words.len() as u64 * 8 {
            return Err(Trap::new(TrapKind::OutOfBounds { addr }));
        }
        Ok((addr / 8) as usize)
    }

    /// Reads the word at byte address `addr`.
    ///
    /// # Errors
    /// Traps on misaligned or out-of-range addresses.
    #[inline(always)]
    pub fn load(&self, addr: u64) -> Result<i64, Trap> {
        let i = self.word_index(addr)?;
        // SAFETY: `word_index` checked `addr < words.len() * 8`.
        Ok(unsafe { *self.words.get_unchecked(i) })
    }

    /// Writes the word at byte address `addr`.
    ///
    /// # Errors
    /// Traps on misaligned or out-of-range addresses.
    #[inline(always)]
    pub fn store(&mut self, addr: u64, value: i64) -> Result<(), Trap> {
        let i = self.word_index(addr)?;
        // SAFETY: `word_index` checked `addr < words.len() * 8`.
        unsafe {
            *self.words.get_unchecked_mut(i) = value;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{Linkage, ProgramBuilder};

    fn program_with_globals() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        pb.add_global("a", m, Linkage::Public, 2, vec![11, 22]);
        pb.add_global("b", m, Linkage::Public, 1, vec![33]);
        pb.finish(None)
    }

    #[test]
    fn globals_are_laid_out_and_initialized() {
        let p = program_with_globals();
        let mem = Memory::new(&p, 1024);
        let l = mem.layout().clone();
        assert_eq!(l.addr(GlobalId(0)), 8);
        assert_eq!(l.addr(GlobalId(1)), 24);
        assert_eq!(mem.load(8).unwrap(), 11);
        assert_eq!(mem.load(16).unwrap(), 22);
        assert_eq!(mem.load(24).unwrap(), 33);
    }

    #[test]
    fn null_access_traps() {
        let p = program_with_globals();
        let mem = Memory::new(&p, 1024);
        assert!(matches!(
            mem.load(0).unwrap_err().kind,
            TrapKind::OutOfBounds { addr: 0 }
        ));
    }

    #[test]
    fn misaligned_access_traps() {
        let p = program_with_globals();
        let mem = Memory::new(&p, 1024);
        assert!(matches!(
            mem.load(9).unwrap_err().kind,
            TrapKind::Misaligned { addr: 9 }
        ));
    }

    #[test]
    fn out_of_range_traps() {
        let p = program_with_globals();
        let mem = Memory::new(&p, 64);
        let top = mem.stack_top();
        assert!(mem.load(top).is_err());
    }

    #[test]
    fn store_then_load_roundtrips() {
        let p = program_with_globals();
        let mut mem = Memory::new(&p, 1024);
        let sp = mem.stack_top() - 8;
        mem.store(sp, -7).unwrap();
        assert_eq!(mem.load(sp).unwrap(), -7);
    }

    #[test]
    fn stack_region_is_above_globals() {
        let p = program_with_globals();
        let mem = Memory::new(&p, 1024);
        assert!(mem.stack_limit() >= mem.layout().globals_end());
        assert_eq!(mem.stack_top() - mem.stack_limit(), 1024);
    }
}
