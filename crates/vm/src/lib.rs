#![warn(missing_docs)]
//! An interpreter ("virtual machine") for the `hlo-ir` intermediate form.
//!
//! The reproduction uses the VM for all three executable roles the paper's
//! infrastructure had:
//!
//! 1. **Training runs** — an instrumented execution on the *train* input
//!    collects block, edge and call-site counts (via [`ExecMonitor`]),
//!    which become the PBO profile database.
//! 2. **Measurement runs** — the optimized program runs on the *ref*
//!    input; retired-instruction counts and monitor events feed the
//!    PA8000-style model in `hlo-sim`, which produces the cycle counts
//!    behind Table 1 and Figures 6–8.
//! 3. **Semantic ground truth** — every transformation in the repository
//!    is validated by running programs before and after optimization and
//!    comparing outputs and checksums.
//!
//! # Machine model
//!
//! Registers hold raw 64-bit values; float instructions reinterpret bits.
//! Memory is a flat, word-granular address space: globals first (byte
//! address 8 upward; 0 is an unmapped null page), then a downward-growing
//! stack holding frame slots and dynamic allocas. Function pointers are
//! encoded as `CODE_BASE | func_id` so indirect calls can be resolved
//! without a reverse code-layout map.
//!
//! # Example
//!
//! ```
//! use hlo_ir::{ProgramBuilder, FunctionBuilder, Linkage, Type, Operand, BinOp};
//! use hlo_vm::{run_program, ExecOptions};
//!
//! let mut pb = ProgramBuilder::new();
//! let m = pb.add_module("m");
//! let mut f = FunctionBuilder::new("main", m, 0);
//! let e = f.entry_block();
//! let x = f.bin(e, BinOp::Mul, Operand::imm(6), Operand::imm(7));
//! f.ret(e, Some(x.into()));
//! let id = pb.add_function(f.finish(Linkage::Public, Type::I64));
//! let p = pb.finish(Some(id));
//! let out = run_program(&p, &[], &ExecOptions::default())?;
//! assert_eq!(out.ret, 42);
//! # Ok::<(), hlo_vm::Trap>(())
//! ```

mod builtins;
mod bytecode;
mod exec;
mod interp;
mod memory;
mod metrics;
mod monitor;
mod trace;

pub use builtins::BuiltinState;
pub use bytecode::BytecodeProgram;
pub use exec::{run_bytecode, run_counted};
pub use interp::{run_program, run_with_monitor, ExecOptions, ExecOutcome, Tier};
pub use memory::{DataLayout, Memory, CODE_BASE, NULL_GUARD_BYTES};
pub use metrics::{run_with_monitor_metrics, tier_totals};
pub use monitor::{CallKind, ExecMonitor, NullMonitor, SiteId};
pub use trace::TraceMonitor;

/// A run-time fault. The VM never panics on program misbehaviour; every
/// fault is reported as a `Trap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Function active at the fault, if any.
    pub func: Option<String>,
}

impl Trap {
    pub(crate) fn new(kind: TrapKind) -> Self {
        Trap { kind, func: None }
    }
}

/// Categories of run-time fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Memory access outside the mapped range (includes null-page hits).
    OutOfBounds {
        /// Faulting byte address.
        addr: u64,
    },
    /// Memory access not 8-byte aligned.
    Misaligned {
        /// Faulting byte address.
        addr: u64,
    },
    /// Indirect call through a value that is not a function pointer.
    BadIndirect {
        /// The non-pointer value.
        value: i64,
    },
    /// Stack pointer ran below the stack region.
    StackOverflow,
    /// The configured instruction budget was exhausted.
    FuelExhausted,
    /// Call to an external routine with no builtin implementation.
    MissingExtern {
        /// Declared extern name.
        name: String,
    },
    /// The program called `abort`.
    Abort,
    /// The program has no entry point.
    NoEntry,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            TrapKind::DivByZero => write!(f, "integer division by zero")?,
            TrapKind::OutOfBounds { addr } => write!(f, "out-of-bounds access at {addr:#x}")?,
            TrapKind::Misaligned { addr } => write!(f, "misaligned access at {addr:#x}")?,
            TrapKind::BadIndirect { value } => {
                write!(f, "indirect call through non-function value {value}")?
            }
            TrapKind::StackOverflow => write!(f, "stack overflow")?,
            TrapKind::FuelExhausted => write!(f, "instruction budget exhausted")?,
            TrapKind::MissingExtern { name } => write!(f, "no builtin for extern `{name}`")?,
            TrapKind::Abort => write!(f, "program aborted")?,
            TrapKind::NoEntry => write!(f, "program has no entry point")?,
        }
        if let Some(n) = &self.func {
            write!(f, " (in `{n}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for Trap {}
