//! Execution tracing: a monitor that pretty-prints the dynamic
//! instruction stream (the `hloc run --trace N` debugging aid).

use crate::monitor::{ExecMonitor, SiteId};
use hlo_ir::{FuncId, Program};
use std::io::Write;

/// Writes one line per retired instruction —
/// `function/block[index]: instruction` — up to a limit, then goes quiet.
#[derive(Debug)]
pub struct TraceMonitor<'p, W> {
    program: &'p Program,
    out: W,
    remaining: u64,
}

impl<'p, W: Write> TraceMonitor<'p, W> {
    /// Traces at most `limit` instructions of `program` into `out`.
    pub fn new(program: &'p Program, out: W, limit: u64) -> Self {
        TraceMonitor {
            program,
            out,
            remaining: limit,
        }
    }

    /// Instructions still to be traced before the monitor goes quiet.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<W: Write> ExecMonitor for TraceMonitor<'_, W> {
    fn inst(&mut self, site: SiteId) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let f = self.program.func(site.func);
        let inst = &f.blocks[site.block.index()].insts[site.inst];
        // Tracing is best-effort; a broken pipe must not kill the run.
        let _ = writeln!(
            self.out,
            "{}/{}[{}]: {}",
            f.name, site.block, site.inst, inst
        );
    }

    fn call(
        &mut self,
        _site: SiteId,
        callee: FuncId,
        _kind: crate::CallKind,
        _regs: u32,
        _n_args: usize,
    ) {
        if self.remaining > 0 {
            let _ = writeln!(self.out, "  --> enter {}", self.program.func(callee).name);
        }
    }

    fn ret(&mut self, func: FuncId, _regs: u32) {
        if self.remaining > 0 {
            let _ = writeln!(self.out, "  <-- leave {}", self.program.func(func).name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_with_monitor, ExecOptions};
    use hlo_ir::{FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![Operand::imm(4)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut f = FunctionBuilder::new("helper", m, 1);
        let e = f.entry_block();
        let v = f.bin(
            e,
            hlo_ir::BinOp::Add,
            Operand::Reg(f.param(0)),
            Operand::imm(1),
        );
        f.ret(e, Some(v.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn trace_contains_functions_and_instructions() {
        let p = program();
        let mut buf = Vec::new();
        let mut t = TraceMonitor::new(&p, &mut buf, 100);
        run_with_monitor(&p, &[], &ExecOptions::default(), &mut t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("main/b0[0]"), "{text}");
        assert!(text.contains("--> enter helper"), "{text}");
        assert!(text.contains("<-- leave helper"), "{text}");
        assert!(text.contains("Add"), "{text}");
    }

    #[test]
    fn limit_stops_output() {
        let p = program();
        let mut buf = Vec::new();
        let mut t = TraceMonitor::new(&p, &mut buf, 1);
        run_with_monitor(&p, &[], &ExecOptions::default(), &mut t).unwrap();
        assert_eq!(t.remaining(), 0);
        let text = String::from_utf8(buf).unwrap();
        // 1 instruction line + possible enter/leave markers suppressed
        // once the budget is gone.
        assert_eq!(
            text.lines().filter(|l| l.contains('[')).count(),
            1,
            "{text}"
        );
    }
}
