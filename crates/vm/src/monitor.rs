//! Execution monitoring hooks.
//!
//! A monitor observes the dynamic instruction stream without affecting
//! semantics. The profile collector (crate `hlo-profile`) and the PA8000
//! model (crate `hlo-sim`) are both monitors.

use hlo_ir::{BlockId, ExternId, FuncId};

/// Identifies a static instruction: `(function, block, index in block)`.
/// Monitors combine this with a `CodeLayout` to obtain fetch addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
}

/// How control reached a callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Direct call (`Callee::Func`).
    Direct,
    /// Indirect call through a function pointer. On the PA8000 model these
    /// always mispredict.
    Indirect,
}

/// Observer of a VM execution. All methods default to no-ops so monitors
/// implement only what they need; the VM calls them in program order.
pub trait ExecMonitor {
    /// Whether the VM must deliver events at all. [`NullMonitor`] sets
    /// this to `false`, letting the bytecode tier's dispatch loop compile
    /// out event bookkeeping (site lookups) that only exists to feed the
    /// monitor. Real monitors keep the default.
    const OBSERVES: bool = true;

    /// A block is entered (including function entries).
    fn block(&mut self, _func: FuncId, _block: BlockId) {}

    /// One instruction retires.
    fn inst(&mut self, _site: SiteId) {}

    /// Control follows a CFG edge inside a function (conditional branches
    /// and jumps). `taken` is false only for the fall-through sense of a
    /// conditional branch; jumps report `taken = true`.
    fn edge(&mut self, _func: FuncId, _from: BlockId, _to: BlockId) {}

    /// A conditional branch resolves. `site` identifies the branch for
    /// predictor indexing.
    fn cond_branch(&mut self, _site: SiteId, _taken: bool) {}

    /// An unconditional jump executes. Machine models use the layout to
    /// decide whether it is a real branch or an elided fall-through to
    /// the next block.
    fn jump(&mut self, _site: SiteId, _target: BlockId) {}

    /// A call to a program function begins. `callee_regs` is the callee's
    /// register count (drives modeled save/restore traffic) and `n_args`
    /// its incoming argument count.
    fn call(
        &mut self,
        _site: SiteId,
        _callee: FuncId,
        _kind: CallKind,
        _callee_regs: u32,
        _n_args: usize,
    ) {
    }

    /// A call to an external routine.
    fn extern_call(&mut self, _site: SiteId, _ext: ExternId) {}

    /// A function returns to its caller (procedure-return branch; the
    /// PA8000 always mispredicts these).
    fn ret(&mut self, _func: FuncId, _callee_regs: u32) {}

    /// A data memory access by the program itself.
    fn mem(&mut self, _addr: u64, _write: bool) {}
}

/// A monitor that observes nothing (fast path for plain runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl ExecMonitor for NullMonitor {
    const OBSERVES: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        insts: u64,
    }
    impl ExecMonitor for Counter {
        fn inst(&mut self, _s: SiteId) {
            self.insts += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut c = Counter { insts: 0 };
        c.block(FuncId(0), BlockId(0));
        c.mem(8, true);
        c.inst(SiteId {
            func: FuncId(0),
            block: BlockId(0),
            inst: 0,
        });
        assert_eq!(c.insts, 1);
    }
}
