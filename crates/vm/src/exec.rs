//! The flat dispatch loop executing compiled bytecode (tier `bytecode`).
//!
//! Observable behaviour is identical to `interp::run_tree` — fuel
//! charged per retired instruction in the same order, the same [`Trap`]
//! kinds with the same function attribution, the same
//! [`ExecMonitor`] event stream, and the same builtin output and
//! checksum. The speed comes from what is *not* done per step: no block
//! vector indexing, no operand `match` (constants live in the register
//! window, so every operand is one indexed load), no second operator
//! dispatch (one opcode per ALU operation), no per-frame register
//! vectors (one flat register file, truncated on return), and no monitor
//! bookkeeping when the monitor is [`crate::NullMonitor`]
//! (`ExecMonitor::OBSERVES` gates it at compile time).
//!
//! # Safety
//!
//! The hot path uses unchecked indexing, justified by compile-time
//! invariants of [`BytecodeProgram::compile`]:
//!
//! * every reachable `pc` is in range — block targets are linked to
//!   real pcs (or the shared pad at 0), functions end in terminators or
//!   pads so `pc + 1` after a non-terminator stays in range, and
//!   `ret_pc` is the `pc + 1` of a call;
//! * every operand slot is validated against the owning function's
//!   window (instructions that fail validation compile to
//!   [`BcOp::InvalidIr`], which panics before touching anything), and
//!   the register file always holds `base + window` initialized slots
//!   for the active frame;
//! * function ids in `Call` ops are validated at compile time, indirect
//!   targets are range-checked at run time, and `sites` has one entry
//!   per pc.

use crate::builtins::{call_builtin, BuiltinState};
use crate::bytecode::{AluK, ArgSpan, BcOp, BytecodeProgram, FuncMeta, NO_DST};
use crate::interp::{in_func, ExecOptions, ExecOutcome};
use crate::memory::{Memory, CODE_BASE};
use crate::monitor::{CallKind, ExecMonitor, SiteId};
use crate::{Trap, TrapKind};
use hlo_ir::{BlockId, ExternId, FuncId, Program};

/// One activation record. Registers live in the shared flat file at
/// `base..base + window`; `frame_sp` is the post-push stack pointer the
/// function's slot offsets are relative to.
struct BcFrame {
    func: u32,
    base: u32,
    frame_sp: u64,
    saved_sp: u64,
    ret_pc: u32,
    ret_dst: u32,
}

/// Executes `bc` (compiled from `p`) from the program entry.
///
/// # Errors
/// Returns a [`Trap`] on any run-time fault, missing entry, or fuel
/// exhaustion — the same trap, at the same fuel count, as the tree tier.
pub fn run_bytecode<M: ExecMonitor>(
    bc: &BytecodeProgram,
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
) -> Result<ExecOutcome, Trap> {
    run_counted(bc, p, args, opts, monitor).0
}

/// [`run_bytecode`] plus the number of dispatch-loop iterations taken
/// (retired instructions + fuel-free pads reached), for tier metrics.
pub fn run_counted<M: ExecMonitor>(
    bc: &BytecodeProgram,
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
) -> (Result<ExecOutcome, Trap>, u64) {
    let mut dispatch = 0u64;
    let r = exec(bc, p, args, opts, monitor, &mut dispatch);
    (r, dispatch)
}

/// `SiteId` of the op at `pc` — only materialized when the monitor
/// observes, so the plain-run loop never touches the site table.
#[inline(always)]
fn site_at(bc: &BytecodeProgram, pc: usize, cur_func: u32) -> SiteId {
    let (sb, si) = bc.sites[pc];
    SiteId {
        func: FuncId(cur_func),
        block: BlockId(sb),
        inst: si as usize,
    }
}

/// Block entered by jumping to `pc` (pc 0, the shared pad, reports
/// block 0 — that path aborts without monitor events anyway).
#[inline(always)]
fn block_of(bc: &BytecodeProgram, pc: u32) -> BlockId {
    BlockId(bc.sites[pc as usize].0)
}

/// Reads frame-relative window slot `s`.
///
/// SAFETY (callers): `s` was validated against the active function's
/// window at compile time, and the register file holds `base + window`
/// slots while that frame is active.
#[inline(always)]
fn rd(regs: &[i64], base: usize, s: u32) -> i64 {
    debug_assert!(base + (s as usize) < regs.len());
    unsafe { *regs.get_unchecked(base + s as usize) }
}

/// Writes frame-relative register `d`. Same invariant as [`rd`].
#[inline(always)]
fn wr(regs: &mut [i64], base: usize, d: u32, v: i64) {
    debug_assert!(base + (d as usize) < regs.len());
    unsafe {
        *regs.get_unchecked_mut(base + d as usize) = v;
    }
}

/// Metadata of function `f`.
///
/// SAFETY (callers): `f` is the entry id, a compile-validated direct-call
/// id, or a range-checked indirect target — always `< funcs.len()`.
#[inline(always)]
fn fmeta(bc: &BytecodeProgram, f: u32) -> &FuncMeta {
    debug_assert!((f as usize) < bc.funcs.len());
    unsafe { bc.funcs.get_unchecked(f as usize) }
}

/// Evaluates a non-trapping integer ALU operator, for the generic fused
/// pair ops. Semantics match the corresponding dedicated opcodes.
#[inline(always)]
fn alu(k: AluK, x: i64, y: i64) -> i64 {
    match k {
        AluK::Add => x.wrapping_add(y),
        AluK::Sub => x.wrapping_sub(y),
        AluK::Mul => x.wrapping_mul(y),
        AluK::And => x & y,
        AluK::Or => x | y,
        AluK::Xor => x ^ y,
        AluK::Shl => x.wrapping_shl((y & 63) as u32),
        AluK::Shr => x.wrapping_shr((y & 63) as u32),
        AluK::Eq => (x == y) as i64,
        AluK::Ne => (x != y) as i64,
        AluK::Lt => (x < y) as i64,
        AluK::Le => (x <= y) as i64,
        AluK::Gt => (x > y) as i64,
        AluK::Ge => (x >= y) as i64,
    }
}

#[inline(always)]
fn read_args(bc: &BytecodeProgram, span: ArgSpan, regs: &[i64], base: usize, argv: &mut Vec<i64>) {
    argv.clear();
    let s = span.start as usize;
    for &slot in &bc.arg_slots[s..s + span.len as usize] {
        argv.push(rd(regs, base, slot));
    }
}

/// Grows the register file with `callee`'s window: arguments, zeroed
/// locals, then the function's constants.
#[inline(always)]
fn push_window(
    regs: &mut Vec<i64>,
    callee: &FuncMeta,
    bc: &BytecodeProgram,
    args: &[i64],
) -> usize {
    let nbase = regs.len();
    regs.resize(nbase + callee.window as usize, 0);
    let n = (callee.params as usize).min(args.len());
    regs[nbase..nbase + n].copy_from_slice(&args[..n]);
    let (cs, cl) = callee.consts;
    let cdst = nbase + callee.num_regs as usize;
    regs[cdst..cdst + cl as usize].copy_from_slice(&bc.fconsts[cs as usize..(cs + cl) as usize]);
    nbase
}

/// [`push_window`] reading the arguments straight out of the caller's
/// window (`span` slots relative to `cbase`), skipping the intermediate
/// argument vector non-extern calls don't need.
#[inline(always)]
fn push_window_from_regs(
    regs: &mut Vec<i64>,
    callee: &FuncMeta,
    bc: &BytecodeProgram,
    span: ArgSpan,
    cbase: usize,
) -> usize {
    let nbase = regs.len();
    regs.resize(nbase + callee.window as usize, 0);
    // The `num_regs` clamp only matters for `params > num_regs`
    // functions, which never execute (their entry is an `InvalidIr`
    // guard); it keeps the unchecked writes below in bounds on the way
    // to that panic.
    let n = (callee.params as usize)
        .min(span.len as usize)
        .min(callee.num_regs as usize);
    let s = span.start as usize;
    for k in 0..n {
        let slot = bc.arg_slots[s + k];
        let v = rd(regs, cbase, slot);
        wr(regs, nbase, k as u32, v);
    }
    let (cs, cl) = callee.consts;
    let cdst = nbase + callee.num_regs as usize;
    regs[cdst..cdst + cl as usize].copy_from_slice(&bc.fconsts[cs as usize..(cs + cl) as usize]);
    nbase
}

fn exec<M: ExecMonitor>(
    bc: &BytecodeProgram,
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
    monitor: &mut M,
    dispatch_out: &mut u64,
) -> Result<ExecOutcome, Trap> {
    let entry = p.entry.ok_or_else(|| Trap::new(TrapKind::NoEntry))?;
    let mut mem = Memory::new(p, opts.stack_bytes);
    let stack_limit = mem.stack_limit();
    let mut sp = mem.stack_top();
    let mut builtins = BuiltinState::default();
    let mut fuel = opts.fuel;
    let mut retired = 0u64;

    let code = &bc.code[..];

    let mut regs: Vec<i64> = Vec::with_capacity(256);
    let mut frames: Vec<BcFrame> = Vec::with_capacity(64);
    let mut argv: Vec<i64> = Vec::with_capacity(8);

    // Counted in a plain local (register-friendly); flushed to the caller
    // on every exit path, including traps.
    struct DispatchCount<'a> {
        n: u64,
        out: &'a mut u64,
    }
    impl Drop for DispatchCount<'_> {
        fn drop(&mut self) {
            *self.out = self.n;
        }
    }
    let mut dispatch = DispatchCount {
        n: 0,
        out: dispatch_out,
    };

    // Entry activation, mirroring `push_frame` + the entry block event.
    let meta = fmeta(bc, entry.0);
    if sp < stack_limit + meta.frame_need {
        return Err(in_func(Trap::new(TrapKind::StackOverflow), p, entry));
    }
    let entry_saved_sp = sp;
    sp -= meta.frame_need;
    push_window(&mut regs, meta, bc, args);
    frames.push(BcFrame {
        func: entry.0,
        base: 0,
        frame_sp: sp,
        saved_sp: entry_saved_sp,
        ret_pc: 0,
        ret_dst: NO_DST,
    });
    if M::OBSERVES {
        monitor.block(entry, BlockId(0));
    }

    let mut pc = meta.entry_pc as usize;
    let mut cur_func = entry.0;
    let mut base = 0usize;
    let mut frame_sp = sp;

    let final_ret;
    // Float ALU helpers (floats reinterpret register bits).
    let fl = |v: i64| f64::from_bits(v as u64);
    let bits = |v: f64| v.to_bits() as i64;
    macro_rules! bin {
        ($dst:ident, $a:ident, $b:ident, $e:expr) => {{
            let x = rd(&regs, base, $a);
            let y = rd(&regs, base, $b);
            #[allow(clippy::redundant_closure_call)]
            wr(&mut regs, base, $dst, ($e)(x, y));
            pc += 1;
        }};
    }
    macro_rules! un {
        ($dst:ident, $a:ident, $e:expr) => {{
            let x = rd(&regs, base, $a);
            #[allow(clippy::redundant_closure_call)]
            wr(&mut regs, base, $dst, ($e)(x));
            pc += 1;
        }};
    }
    macro_rules! divlike {
        ($dst:ident, $a:ident, $b:ident, $m:ident) => {{
            let x = rd(&regs, base, $a);
            let y = rd(&regs, base, $b);
            if y == 0 {
                return Err(in_func(Trap::new(TrapKind::DivByZero), p, FuncId(cur_func)));
            }
            wr(&mut regs, base, $dst, x.$m(y));
            pc += 1;
        }};
    }
    macro_rules! enter {
        ($func:expr, $dst:ident, $span:expr, $kind:expr) => {{
            let func = $func;
            let span = $span;
            let callee = fmeta(bc, func);
            if M::OBSERVES {
                monitor.call(
                    site_at(bc, pc, cur_func),
                    FuncId(func),
                    $kind,
                    callee.num_regs,
                    span.len as usize,
                );
            }
            if sp < stack_limit + callee.frame_need {
                return Err(in_func(
                    Trap::new(TrapKind::StackOverflow),
                    p,
                    FuncId(cur_func),
                ));
            }
            let saved_sp = sp;
            sp -= callee.frame_need;
            let nbase = push_window_from_regs(&mut regs, callee, bc, span, base);
            frames.push(BcFrame {
                func,
                base: nbase as u32,
                frame_sp: sp,
                saved_sp,
                ret_pc: (pc + 1) as u32,
                ret_dst: $dst,
            });
            cur_func = func;
            base = nbase;
            frame_sp = sp;
            if M::OBSERVES {
                monitor.block(FuncId(func), BlockId(0));
            }
            pc = callee.entry_pc as usize;
        }};
    }
    // Second-half accounting of a fused two-instruction op: charge fuel
    // and retire the pair's second IR instruction (site `inst + 1` of the
    // op's own site), trapping exactly where the tree-walker would when
    // the fuel runs out between the two.
    macro_rules! fused2 {
        () => {{
            if fuel == 0 {
                return Err(in_func(
                    Trap::new(TrapKind::FuelExhausted),
                    p,
                    FuncId(cur_func),
                ));
            }
            fuel -= 1;
            retired += 1;
            if M::OBSERVES {
                monitor.inst(site2!());
            }
        }};
    }
    // `SiteId` of the second instruction of a fused pair.
    macro_rules! site2 {
        () => {{
            let (sb, si) = bc.sites[pc];
            SiteId {
                func: FuncId(cur_func),
                block: BlockId(sb),
                inst: si as usize + 1,
            }
        }};
    }
    // The Ret sequence, shared by `Ret` and the fused `LoadRet`.
    macro_rules! do_ret {
        ($v:expr) => {{
            let v = $v;
            let fr = frames.pop().expect("active frame");
            sp = fr.saved_sp;
            regs.truncate(fr.base as usize);
            if M::OBSERVES {
                monitor.ret(FuncId(cur_func), fmeta(bc, cur_func).num_regs);
            }
            match frames.last() {
                Some(caller) => {
                    if fr.ret_dst != NO_DST {
                        wr(&mut regs, caller.base as usize, fr.ret_dst, v);
                    }
                    pc = fr.ret_pc as usize;
                    cur_func = caller.func;
                    base = caller.base as usize;
                    frame_sp = caller.frame_sp;
                }
                None => {
                    final_ret = v;
                    break;
                }
            }
        }};
    }
    // The Jump sequence (monitor events + transfer), shared by `Jump`
    // and the fused `MovJump`/`StoreJump`; `$site` is the jump's site.
    macro_rules! do_jump {
        ($tpc:expr, $site:expr) => {{
            let tpc = $tpc;
            if M::OBSERVES {
                let t = block_of(bc, tpc);
                let site = $site;
                monitor.jump(site, t);
                monitor.edge(FuncId(cur_func), site.block, t);
                monitor.block(FuncId(cur_func), t);
            }
            pc = tpc as usize;
        }};
    }
    // Fused compare-and-branch: the comparison result is written, then
    // the branch retires and resolves on it.
    macro_rules! cmp_br {
        ($a:ident, $b:ident, $dst:ident, $t:ident, $e:ident, $cmp:expr) => {{
            let x = rd(&regs, base, $a as u32);
            let y = rd(&regs, base, $b as u32);
            #[allow(clippy::redundant_closure_call)]
            let c = ($cmp)(x, y);
            wr(&mut regs, base, $dst as u32, c as i64);
            fused2!();
            let tpc = if c { $t } else { $e };
            if M::OBSERVES {
                let t = block_of(bc, tpc);
                let site = site2!();
                monitor.cond_branch(site, c);
                monitor.edge(FuncId(cur_func), site.block, t);
                monitor.block(FuncId(cur_func), t);
            }
            pc = tpc as usize;
        }};
    }

    loop {
        dispatch.n += 1;
        // SAFETY: every reachable pc is in range (module doc).
        let op = unsafe { *code.get_unchecked(pc) };
        if let BcOp::TrapAbort = op {
            // Fuel-free, like the tree-walker's missing-instruction case.
            return Err(in_func(Trap::new(TrapKind::Abort), p, FuncId(cur_func)));
        }
        if fuel == 0 {
            return Err(in_func(
                Trap::new(TrapKind::FuelExhausted),
                p,
                FuncId(cur_func),
            ));
        }
        fuel -= 1;
        retired += 1;
        if M::OBSERVES {
            monitor.inst(site_at(bc, pc, cur_func));
        }

        match op {
            BcOp::Mov { dst, src } => {
                let v = rd(&regs, base, src);
                wr(&mut regs, base, dst, v);
                pc += 1;
            }
            BcOp::Add { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x.wrapping_add(y)),
            BcOp::Sub { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x.wrapping_sub(y)),
            BcOp::Mul { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x.wrapping_mul(y)),
            BcOp::Div { dst, a, b } => divlike!(dst, a, b, wrapping_div),
            BcOp::Rem { dst, a, b } => divlike!(dst, a, b, wrapping_rem),
            BcOp::And { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x & y),
            BcOp::Or { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x | y),
            BcOp::Xor { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| x ^ y),
            BcOp::Shl { dst, a, b } => {
                bin!(dst, a, b, |x: i64, y: i64| x.wrapping_shl((y & 63) as u32))
            }
            BcOp::Shr { dst, a, b } => {
                bin!(dst, a, b, |x: i64, y: i64| x.wrapping_shr((y & 63) as u32))
            }
            BcOp::CmpEq { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x == y) as i64),
            BcOp::CmpNe { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x != y) as i64),
            BcOp::CmpLt { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x < y) as i64),
            BcOp::CmpLe { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x <= y) as i64),
            BcOp::CmpGt { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x > y) as i64),
            BcOp::CmpGe { dst, a, b } => bin!(dst, a, b, |x: i64, y: i64| (x >= y) as i64),
            BcOp::FAdd { dst, a, b } => bin!(dst, a, b, |x, y| bits(fl(x) + fl(y))),
            BcOp::FSub { dst, a, b } => bin!(dst, a, b, |x, y| bits(fl(x) - fl(y))),
            BcOp::FMul { dst, a, b } => bin!(dst, a, b, |x, y| bits(fl(x) * fl(y))),
            BcOp::FDiv { dst, a, b } => bin!(dst, a, b, |x, y| bits(fl(x) / fl(y))),
            BcOp::FLt { dst, a, b } => bin!(dst, a, b, |x, y| (fl(x) < fl(y)) as i64),
            BcOp::FEq { dst, a, b } => bin!(dst, a, b, |x, y| (fl(x) == fl(y)) as i64),
            BcOp::Neg { dst, a } => un!(dst, a, |x: i64| x.wrapping_neg()),
            BcOp::Not { dst, a } => un!(dst, a, |x: i64| !x),
            BcOp::FNeg { dst, a } => un!(dst, a, |x| bits(-fl(x))),
            BcOp::IToF { dst, a } => un!(dst, a, |x| bits(x as f64)),
            BcOp::FToI { dst, a } => un!(dst, a, |x| {
                let v = fl(x);
                if v.is_nan() {
                    0
                } else {
                    v as i64
                }
            }),
            BcOp::Load {
                dst,
                base: ba,
                offset,
            } => {
                let addr = rd(&regs, base, ba).wrapping_add(rd(&regs, base, offset)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr, false);
                }
                let v = mem
                    .load(addr)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst, v);
                pc += 1;
            }
            BcOp::Store {
                base: ba,
                offset,
                value,
            } => {
                let addr = rd(&regs, base, ba).wrapping_add(rd(&regs, base, offset)) as u64;
                let v = rd(&regs, base, value);
                if M::OBSERVES {
                    monitor.mem(addr, true);
                }
                mem.store(addr, v)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                pc += 1;
            }
            BcOp::FrameAddr { dst, slot } => {
                // SAFETY: `slot` was validated against this function's
                // slot table at compile time.
                let off = unsafe {
                    *fmeta(bc, cur_func)
                        .slot_offsets
                        .get_unchecked(slot as usize)
                };
                wr(&mut regs, base, dst, (frame_sp + off) as i64);
                pc += 1;
            }
            BcOp::Alloca { dst, bytes } => {
                let n = rd(&regs, base, bytes).max(0) as u64;
                let n = (n + 7) & !7;
                if sp < stack_limit + n {
                    return Err(in_func(
                        Trap::new(TrapKind::StackOverflow),
                        p,
                        FuncId(cur_func),
                    ));
                }
                sp -= n;
                wr(&mut regs, base, dst, sp as i64);
                pc += 1;
            }
            BcOp::Call { dst, func, args } => {
                enter!(func, dst, args, CallKind::Direct);
            }
            BcOp::CallIndirect { dst, target, args } => {
                let v = rd(&regs, base, target);
                if v & CODE_BASE != CODE_BASE || ((v & !CODE_BASE) as u64) >= bc.funcs.len() as u64
                {
                    return Err(in_func(
                        Trap::new(TrapKind::BadIndirect { value: v }),
                        p,
                        FuncId(cur_func),
                    ));
                }
                enter!((v & !CODE_BASE) as u32, dst, args, CallKind::Indirect);
            }
            BcOp::CallExtern { dst, ext, args } => {
                read_args(bc, args, &regs, base, &mut argv);
                if M::OBSERVES {
                    monitor.extern_call(site_at(bc, pc, cur_func), ExternId(ext));
                }
                let name = &p.ext(ExternId(ext)).name;
                let r = call_builtin(&mut builtins, name, &argv)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                if dst != NO_DST {
                    wr(&mut regs, base, dst, r);
                }
                pc += 1;
            }
            BcOp::Ret { value } => {
                let v = rd(&regs, base, value);
                do_ret!(v);
            }
            BcOp::Jump { pc: tpc } => {
                do_jump!(tpc, site_at(bc, pc, cur_func));
            }
            BcOp::Br {
                cond,
                then_pc,
                else_pc,
            } => {
                let c = rd(&regs, base, cond) != 0;
                let tpc = if c { then_pc } else { else_pc };
                if M::OBSERVES {
                    let t = block_of(bc, tpc);
                    let site = site_at(bc, pc, cur_func);
                    monitor.cond_branch(site, c);
                    monitor.edge(FuncId(cur_func), site.block, t);
                    monitor.block(FuncId(cur_func), t);
                }
                pc = tpc as usize;
            }
            BcOp::CmpEqBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x == y),
            BcOp::CmpNeBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x != y),
            BcOp::CmpLtBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x < y),
            BcOp::CmpLeBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x <= y),
            BcOp::CmpGtBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x > y),
            BcOp::CmpGeBr { a, b, dst, t, e } => cmp_br!(a, b, dst, t, e, |x, y| x >= y),
            BcOp::MovJump { dst, src, pc: tpc } => {
                let v = rd(&regs, base, src);
                wr(&mut regs, base, dst, v);
                fused2!();
                do_jump!(tpc, site2!());
            }
            BcOp::AddMov {
                dst,
                a,
                b,
                dst2,
                src2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, x.wrapping_add(y));
                fused2!();
                let v = rd(&regs, base, src2 as u32);
                wr(&mut regs, base, dst2 as u32, v);
                pc += 1;
            }
            BcOp::ShlLoad {
                dst,
                a,
                b,
                dst2,
                base2,
                off2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, x.wrapping_shl((y & 63) as u32));
                fused2!();
                let addr =
                    rd(&regs, base, base2 as u32).wrapping_add(rd(&regs, base, off2 as u32)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr, false);
                }
                let v = mem
                    .load(addr)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst2 as u32, v);
                pc += 1;
            }
            BcOp::ShlStore {
                dst,
                a,
                b,
                base2,
                off2,
                val2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, x.wrapping_shl((y & 63) as u32));
                fused2!();
                let addr =
                    rd(&regs, base, base2 as u32).wrapping_add(rd(&regs, base, off2 as u32)) as u64;
                let v = rd(&regs, base, val2 as u32);
                if M::OBSERVES {
                    monitor.mem(addr, true);
                }
                mem.store(addr, v)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                pc += 1;
            }
            BcOp::LoadRet {
                dst,
                base: ba,
                offset,
                rv,
            } => {
                let addr =
                    rd(&regs, base, ba as u32).wrapping_add(rd(&regs, base, offset as u32)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr, false);
                }
                let v = mem
                    .load(addr)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst as u32, v);
                fused2!();
                let r = rd(&regs, base, rv as u32);
                do_ret!(r);
            }
            BcOp::StoreJump {
                base: ba,
                offset,
                value,
                pc: tpc,
            } => {
                let addr =
                    rd(&regs, base, ba as u32).wrapping_add(rd(&regs, base, offset as u32)) as u64;
                let v = rd(&regs, base, value as u32);
                if M::OBSERVES {
                    monitor.mem(addr, true);
                }
                mem.store(addr, v)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                fused2!();
                do_jump!(tpc, site2!());
            }
            BcOp::BinBin {
                k1,
                k2,
                dst,
                a,
                b,
                dst2,
                a2,
                b2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, alu(k1, x, y));
                fused2!();
                let x2 = rd(&regs, base, a2 as u32);
                let y2 = rd(&regs, base, b2 as u32);
                wr(&mut regs, base, dst2 as u32, alu(k2, x2, y2));
                pc += 1;
            }
            BcOp::BinMov {
                k1,
                dst,
                a,
                b,
                dst2,
                src2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, alu(k1, x, y));
                fused2!();
                let v = rd(&regs, base, src2 as u32);
                wr(&mut regs, base, dst2 as u32, v);
                pc += 1;
            }
            BcOp::MovBin {
                k2,
                dst,
                src,
                dst2,
                a2,
                b2,
            } => {
                let v = rd(&regs, base, src as u32);
                wr(&mut regs, base, dst as u32, v);
                fused2!();
                let x2 = rd(&regs, base, a2 as u32);
                let y2 = rd(&regs, base, b2 as u32);
                wr(&mut regs, base, dst2 as u32, alu(k2, x2, y2));
                pc += 1;
            }
            BcOp::BinLoad {
                k1,
                dst,
                a,
                b,
                dst2,
                base2,
                off2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, alu(k1, x, y));
                fused2!();
                let addr =
                    rd(&regs, base, base2 as u32).wrapping_add(rd(&regs, base, off2 as u32)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr, false);
                }
                let v = mem
                    .load(addr)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst2 as u32, v);
                pc += 1;
            }
            BcOp::BinStore {
                k1,
                dst,
                a,
                b,
                base2,
                off2,
                val2,
            } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, alu(k1, x, y));
                fused2!();
                let addr =
                    rd(&regs, base, base2 as u32).wrapping_add(rd(&regs, base, off2 as u32)) as u64;
                let v = rd(&regs, base, val2 as u32);
                if M::OBSERVES {
                    monitor.mem(addr, true);
                }
                mem.store(addr, v)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                pc += 1;
            }
            BcOp::LoadBin {
                k2,
                dst,
                base: ba,
                offset,
                dst2,
                a2,
                b2,
            } => {
                let addr =
                    rd(&regs, base, ba as u32).wrapping_add(rd(&regs, base, offset as u32)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr, false);
                }
                let v = mem
                    .load(addr)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst as u32, v);
                fused2!();
                let x2 = rd(&regs, base, a2 as u32);
                let y2 = rd(&regs, base, b2 as u32);
                wr(&mut regs, base, dst2 as u32, alu(k2, x2, y2));
                pc += 1;
            }
            BcOp::StoreLoad {
                base: ba,
                offset,
                value,
                dst2,
                base2,
                off2,
            } => {
                let addr =
                    rd(&regs, base, ba as u32).wrapping_add(rd(&regs, base, offset as u32)) as u64;
                let v = rd(&regs, base, value as u32);
                if M::OBSERVES {
                    monitor.mem(addr, true);
                }
                mem.store(addr, v)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                fused2!();
                let addr2 =
                    rd(&regs, base, base2 as u32).wrapping_add(rd(&regs, base, off2 as u32)) as u64;
                if M::OBSERVES {
                    monitor.mem(addr2, false);
                }
                let v2 = mem
                    .load(addr2)
                    .map_err(|t| in_func(t, p, FuncId(cur_func)))?;
                wr(&mut regs, base, dst2 as u32, v2);
                pc += 1;
            }
            BcOp::MovBr {
                dst,
                src,
                cond,
                t,
                e,
            } => {
                let v = rd(&regs, base, src as u32);
                wr(&mut regs, base, dst as u32, v);
                fused2!();
                let c = rd(&regs, base, cond as u32) != 0;
                let tpc = if c { t } else { e };
                if M::OBSERVES {
                    let tb = block_of(bc, tpc);
                    let site = site2!();
                    monitor.cond_branch(site, c);
                    monitor.edge(FuncId(cur_func), site.block, tb);
                    monitor.block(FuncId(cur_func), tb);
                }
                pc = tpc as usize;
            }
            BcOp::BinRet { k1, dst, a, b, rv } => {
                let x = rd(&regs, base, a as u32);
                let y = rd(&regs, base, b as u32);
                wr(&mut regs, base, dst as u32, alu(k1, x, y));
                fused2!();
                let r = rd(&regs, base, rv as u32);
                do_ret!(r);
            }
            BcOp::TrapAbort => unreachable!("handled before fuel accounting"),
            BcOp::InvalidIr => {
                panic!(
                    "bytecode: instruction with out-of-range static indices executed \
                     (IR was not verified; the tree tier panics on the same instruction)"
                )
            }
        }
    }

    Ok(ExecOutcome {
        ret: final_ret,
        output: builtins.output,
        checksum: builtins.checksum,
        retired,
    })
}
