//! Deliberate fault injection for the summary analysis.
//!
//! Mirrors `hlo::fault`: the differential fuzz gate (`cargo fuzzgate`)
//! needs proof that the oracle can *see* a wrong purity summary, not just
//! that none was produced. When armed, [`crate::Summaries::compute`]
//! deliberately erases every effect fact (MOD sets, extern/indirect call
//! bits, trap and termination bits), claiming every function is pure —
//! which makes summary-driven pure-call deletion and cross-call store
//! forwarding misfire observably on any program whose calls have effects.
//!
//! The flag is thread-local so a fuzz campaign arming it cannot perturb
//! concurrent tests in the same process.

use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Arms or disarms the planted summary fault on this thread.
pub fn arm(on: bool) {
    ARMED.with(|a| a.set(on));
}

/// True when the fault is armed on this thread.
pub fn armed() -> bool {
    ARMED.with(Cell::get)
}

/// RAII guard that arms the fault and disarms it on drop.
#[derive(Debug)]
pub struct FaultGuard(());

impl FaultGuard {
    /// Arms the fault until the guard is dropped.
    pub fn arm() -> Self {
        arm(true);
        FaultGuard(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        arm(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_arms_and_disarms() {
        assert!(!armed());
        {
            let _g = FaultGuard::arm();
            assert!(armed());
        }
        assert!(!armed());
    }
}
