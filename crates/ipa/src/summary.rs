//! Summary types and their canonical text serialization.

use hlo_ir::{fnv1a_64, FuncId, GlobalId};
use std::fmt::Write as _;

/// How (whether) a pointer passed in a parameter position escapes the
/// callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamEscape {
    /// The parameter value never escapes.
    No,
    /// The callee itself retains the value (stores it to memory, or hands
    /// it to an extern or indirect call the analysis cannot see into).
    Direct,
    /// The callee forwards the value into parameter `.1` of function
    /// `.0`, where it escapes. Following the chain (`Via` links terminate
    /// in a `Direct`) reconstructs the full escape path for diagnostics.
    Via(FuncId, usize),
}

/// What is known about a function's return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetInfo {
    /// Nothing (or the function returns void).
    Unknown,
    /// Every return path yields this constant.
    Const(i64),
    /// Every return path yields a value in `[.0, .1]` (inclusive);
    /// comparison results give `[0, 1]`.
    Range(i64, i64),
}

/// The interprocedural facts of one function, closed over everything it
/// (transitively) calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSummary {
    /// Function name (diagnostics and serialization only; position in
    /// [`Summaries::funcs`] is the identity).
    pub name: String,
    /// Parameter count (sizes the per-param vectors).
    pub params: u32,
    /// Globals this function (or a callee) may write, sorted ascending.
    pub mod_globals: Vec<GlobalId>,
    /// Globals this function (or a callee) may read, sorted ascending.
    pub ref_globals: Vec<GlobalId>,
    /// May write through a pointer the analysis cannot classify.
    pub writes_unknown: bool,
    /// May read through a pointer the analysis cannot classify.
    pub reads_unknown: bool,
    /// Per parameter: may write through it (out-parameters).
    pub writes_params: Vec<bool>,
    /// Per parameter: may read through it.
    pub reads_params: Vec<bool>,
    /// Per parameter: whether (and where) a pointer passed there escapes.
    pub param_escapes: Vec<ParamEscape>,
    /// Calls an external routine (observable; blocks removal).
    pub calls_extern: bool,
    /// Contains an indirect call (unknown callee; blocks everything).
    pub calls_indirect: bool,
    /// May execute a trapping operation (division with a divisor not
    /// provably safe).
    pub may_trap: bool,
    /// Has a CFG cycle or participates in recursion — deleting a call
    /// could delete a non-terminating computation.
    pub may_not_terminate: bool,
    /// May retain the address of its own frame beyond the call (stores a
    /// frame address, returns one, or passes one where it escapes).
    pub leaks_frame: bool,
    /// Return-value constancy/range.
    pub ret: RetInfo,
}

impl FuncSummary {
    /// A bottom summary for a function with `params` parameters.
    pub(crate) fn bottom(name: &str, params: u32) -> Self {
        FuncSummary {
            name: name.to_string(),
            params,
            mod_globals: Vec::new(),
            ref_globals: Vec::new(),
            writes_unknown: false,
            reads_unknown: false,
            writes_params: vec![false; params as usize],
            reads_params: vec![false; params as usize],
            param_escapes: vec![ParamEscape::No; params as usize],
            calls_extern: false,
            calls_indirect: false,
            may_trap: false,
            may_not_terminate: false,
            leaks_frame: false,
            ret: RetInfo::Unknown,
        }
    }

    /// True when a call to this function whose result is unused can be
    /// deleted: no observable effect can escape the activation. This is a
    /// strict superset of the syntactic purity test in
    /// `hlo_analysis::side_effect_free_funcs` — local stores, allocas and
    /// constant-divisor divisions are admitted here.
    pub fn removable(&self) -> bool {
        !self.writes_unknown
            && self.mod_globals.is_empty()
            && !self.writes_params.iter().any(|&w| w)
            && !self.calls_extern
            && !self.calls_indirect
            && !self.may_trap
            && !self.may_not_terminate
            && !self.leaks_frame
    }

    /// Serializes this summary as one canonical text section (the unit
    /// [`Summaries::fingerprints`] hashes).
    pub fn section(&self, index: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "func {index} {} params {}", self.name, self.params);
        let mut flags: Vec<&str> = Vec::new();
        if self.writes_unknown {
            flags.push("writes-unknown");
        }
        if self.reads_unknown {
            flags.push("reads-unknown");
        }
        if self.calls_extern {
            flags.push("calls-extern");
        }
        if self.calls_indirect {
            flags.push("calls-indirect");
        }
        if self.may_trap {
            flags.push("may-trap");
        }
        if self.may_not_terminate {
            flags.push("may-not-terminate");
        }
        if self.leaks_frame {
            flags.push("leaks-frame");
        }
        let _ = writeln!(
            s,
            "flags {}",
            if flags.is_empty() {
                "-".to_string()
            } else {
                flags.join(" ")
            }
        );
        let _ = writeln!(s, "mod {}", id_list(&self.mod_globals));
        let _ = writeln!(s, "ref {}", id_list(&self.ref_globals));
        let _ = writeln!(s, "wparams {}", bit_list(&self.writes_params));
        let _ = writeln!(s, "rparams {}", bit_list(&self.reads_params));
        for (i, e) in self.param_escapes.iter().enumerate() {
            match e {
                ParamEscape::No => {}
                ParamEscape::Direct => {
                    let _ = writeln!(s, "escape {i} direct");
                }
                ParamEscape::Via(f, j) => {
                    let _ = writeln!(s, "escape {i} via {} {j}", f.0);
                }
            }
        }
        match self.ret {
            RetInfo::Unknown => {
                let _ = writeln!(s, "ret unknown");
            }
            RetInfo::Const(k) => {
                let _ = writeln!(s, "ret const {k}");
            }
            RetInfo::Range(a, b) => {
                let _ = writeln!(s, "ret range {a} {b}");
            }
        }
        let _ = writeln!(s, "endfunc");
        s
    }
}

fn id_list(ids: &[GlobalId]) -> String {
    if ids.is_empty() {
        return "-".to_string();
    }
    ids.iter()
        .map(|g| format!("g{}", g.0))
        .collect::<Vec<_>>()
        .join(" ")
}

fn bit_list(bits: &[bool]) -> String {
    let set: Vec<String> = bits
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i.to_string())
        .collect();
    if set.is_empty() {
        "-".to_string()
    } else {
        set.join(" ")
    }
}

/// Per-function summaries for a whole program, indexed like
/// `Program::funcs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summaries {
    /// One summary per function.
    pub funcs: Vec<FuncSummary>,
}

impl Summaries {
    /// Per-function removability, indexed like `Program::funcs`.
    pub fn removable(&self) -> Vec<bool> {
        self.funcs.iter().map(FuncSummary::removable).collect()
    }

    /// Canonical wire form (`ipa-summaries v1`). Line-oriented, stable,
    /// diffable; [`Summaries::from_text`] round-trips it exactly.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "ipa-summaries v1");
        let _ = writeln!(s, "funcs {}", self.funcs.len());
        for (i, f) in self.funcs.iter().enumerate() {
            s.push_str(&f.section(i));
        }
        let _ = writeln!(s, "end");
        s
    }

    /// FNV-1a-64 of each function's canonical section — the unit mixed
    /// into `hlo-serve`'s dependence-cone cache keys. A summary absorbs
    /// its callees' effects, so editing a callee's *behaviour* changes
    /// the fingerprints of its entire caller cone.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| fnv1a_64(f.section(i).as_bytes()))
            .collect()
    }

    /// Parses the canonical wire form.
    ///
    /// # Errors
    /// Returns a message naming the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Summaries, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty summaries text")?;
        if header != "ipa-summaries v1" {
            return Err(format!("bad header `{header}`"));
        }
        let count_line = lines.next().ok_or("missing `funcs` line")?;
        let count: usize = count_line
            .strip_prefix("funcs ")
            .ok_or_else(|| format!("expected `funcs N`, got `{count_line}`"))?
            .parse()
            .map_err(|e| format!("bad funcs count: {e}"))?;
        let mut funcs = Vec::with_capacity(count);
        for expect_idx in 0..count {
            let head = lines.next().ok_or("truncated: missing `func` line")?;
            let w: Vec<&str> = head.split_whitespace().collect();
            if w.len() != 5 || w[0] != "func" || w[3] != "params" {
                return Err(format!("expected `func N NAME params K`, got `{head}`"));
            }
            let idx: usize = w[1].parse().map_err(|e| format!("bad func index: {e}"))?;
            if idx != expect_idx {
                return Err(format!("func {idx} out of order (expected {expect_idx})"));
            }
            let params: u32 = w[4].parse().map_err(|e| format!("bad params: {e}"))?;
            let mut f = FuncSummary::bottom(w[2], params);

            let flags = field(&mut lines, "flags")?;
            if flags != "-" {
                for fl in flags.split_whitespace() {
                    match fl {
                        "writes-unknown" => f.writes_unknown = true,
                        "reads-unknown" => f.reads_unknown = true,
                        "calls-extern" => f.calls_extern = true,
                        "calls-indirect" => f.calls_indirect = true,
                        "may-trap" => f.may_trap = true,
                        "may-not-terminate" => f.may_not_terminate = true,
                        "leaks-frame" => f.leaks_frame = true,
                        other => return Err(format!("unknown flag `{other}`")),
                    }
                }
            }
            f.mod_globals = parse_ids(&field(&mut lines, "mod")?)?;
            f.ref_globals = parse_ids(&field(&mut lines, "ref")?)?;
            parse_bits(&field(&mut lines, "wparams")?, &mut f.writes_params)?;
            parse_bits(&field(&mut lines, "rparams")?, &mut f.reads_params)?;

            // Zero or more `escape` lines, then exactly one `ret`, then
            // `endfunc`.
            loop {
                let line = lines.next().ok_or("truncated inside func section")?;
                let w: Vec<&str> = line.split_whitespace().collect();
                match w.first().copied() {
                    Some("escape") => {
                        let i: usize = w
                            .get(1)
                            .ok_or("escape: missing index")?
                            .parse()
                            .map_err(|e| format!("bad escape index: {e}"))?;
                        let slot = f
                            .param_escapes
                            .get_mut(i)
                            .ok_or_else(|| format!("escape index {i} out of range"))?;
                        match w.get(2).copied() {
                            Some("direct") => *slot = ParamEscape::Direct,
                            Some("via") => {
                                let t: u32 = w
                                    .get(3)
                                    .ok_or("escape via: missing func")?
                                    .parse()
                                    .map_err(|e| format!("bad via func: {e}"))?;
                                let j: usize = w
                                    .get(4)
                                    .ok_or("escape via: missing param")?
                                    .parse()
                                    .map_err(|e| format!("bad via param: {e}"))?;
                                *slot = ParamEscape::Via(FuncId(t), j);
                            }
                            other => return Err(format!("bad escape kind {other:?}")),
                        }
                    }
                    Some("ret") => {
                        f.ret = match w.get(1).copied() {
                            Some("unknown") => RetInfo::Unknown,
                            Some("const") => RetInfo::Const(
                                w.get(2)
                                    .ok_or("ret const: missing value")?
                                    .parse()
                                    .map_err(|e| format!("bad ret const: {e}"))?,
                            ),
                            Some("range") => RetInfo::Range(
                                w.get(2)
                                    .ok_or("ret range: missing low")?
                                    .parse()
                                    .map_err(|e| format!("bad ret low: {e}"))?,
                                w.get(3)
                                    .ok_or("ret range: missing high")?
                                    .parse()
                                    .map_err(|e| format!("bad ret high: {e}"))?,
                            ),
                            other => return Err(format!("bad ret kind {other:?}")),
                        };
                        let end = lines.next().ok_or("truncated: missing endfunc")?;
                        if end != "endfunc" {
                            return Err(format!("expected `endfunc`, got `{end}`"));
                        }
                        break;
                    }
                    other => return Err(format!("unexpected line {other:?} in func section")),
                }
            }
            funcs.push(f);
        }
        match lines.next() {
            Some("end") => Ok(Summaries { funcs }),
            other => Err(format!("expected trailing `end`, got {other:?}")),
        }
    }
}

fn field<'a>(lines: &mut std::str::Lines<'a>, key: &str) -> Result<String, String> {
    let line = lines
        .next()
        .ok_or_else(|| format!("missing `{key}` line"))?;
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| format!("expected `{key} ...`, got `{line}`"))
}

fn parse_ids(text: &str) -> Result<Vec<GlobalId>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split_whitespace()
        .map(|t| {
            t.strip_prefix('g')
                .ok_or_else(|| format!("bad global id `{t}`"))?
                .parse()
                .map(GlobalId)
                .map_err(|e| format!("bad global id `{t}`: {e}"))
        })
        .collect()
}

fn parse_bits(text: &str, bits: &mut [bool]) -> Result<(), String> {
    if text == "-" {
        return Ok(());
    }
    for t in text.split_whitespace() {
        let i: usize = t
            .parse()
            .map_err(|e| format!("bad param index `{t}`: {e}"))?;
        *bits
            .get_mut(i)
            .ok_or_else(|| format!("param index {i} out of range"))? = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summaries {
        let mut a = FuncSummary::bottom("alpha", 2);
        a.mod_globals = vec![GlobalId(0), GlobalId(3)];
        a.ref_globals = vec![GlobalId(1)];
        a.writes_params = vec![false, true];
        a.reads_params = vec![true, false];
        a.param_escapes = vec![ParamEscape::Direct, ParamEscape::Via(FuncId(1), 0)];
        a.calls_extern = true;
        a.may_trap = true;
        a.ret = RetInfo::Range(-3, 7);
        let mut b = FuncSummary::bottom("beta", 0);
        b.leaks_frame = true;
        b.may_not_terminate = true;
        b.ret = RetInfo::Const(42);
        Summaries { funcs: vec![a, b] }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let s = sample();
        let text = s.to_text();
        let back = Summaries::from_text(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn malformed_text_is_rejected_with_a_reason() {
        assert!(Summaries::from_text("").is_err());
        assert!(Summaries::from_text("ipa-summaries v2\nfuncs 0\nend\n").is_err());
        let mut text = sample().to_text();
        text = text.replace("ret const 42", "ret const forty-two");
        assert!(Summaries::from_text(&text).is_err());
        let truncated = sample().to_text().replace("\nend\n", "\n");
        assert!(Summaries::from_text(&truncated).is_err());
    }

    #[test]
    fn fingerprints_are_per_function() {
        let s = sample();
        let fp = s.fingerprints();
        assert_eq!(fp.len(), 2);
        let mut edited = s.clone();
        edited.funcs[1].ret = RetInfo::Const(43);
        let fp2 = edited.fingerprints();
        assert_eq!(fp[0], fp2[0], "untouched function keeps its fingerprint");
        assert_ne!(fp[1], fp2[1], "edited summary must re-fingerprint");
    }

    #[test]
    fn removable_rejects_each_blocking_fact() {
        let clean = FuncSummary::bottom("f", 1);
        assert!(clean.removable());
        let mut m = clean.clone();
        m.mod_globals = vec![GlobalId(0)];
        assert!(!m.removable());
        let mut m = clean.clone();
        m.writes_params = vec![true];
        assert!(!m.removable());
        let mut m = clean.clone();
        m.calls_extern = true;
        assert!(!m.removable());
        let mut m = clean.clone();
        m.may_trap = true;
        assert!(!m.removable());
        let mut m = clean.clone();
        m.may_not_terminate = true;
        assert!(!m.removable());
        let mut m = clean.clone();
        m.leaks_frame = true;
        assert!(!m.removable());
        // Reads never block removal: deleting a dead-result read is safe.
        let mut m = clean.clone();
        m.ref_globals = vec![GlobalId(2)];
        m.reads_unknown = true;
        m.reads_params = vec![true];
        assert!(m.removable());
    }
}
