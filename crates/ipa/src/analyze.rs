//! The bottom-up summary computation.
//!
//! Three stages, all sequential and allocation-order deterministic:
//!
//! 1. **Pointer classification** per function: a flow-insensitive fixpoint
//!    assigns every register a [`PtrClass`] (frame address, specific
//!    global, incoming parameter, definitely-not-a-pointer, or unknown).
//! 2. **Local scan** per function: one pass over the body turns memory and
//!    call instructions into local summary facts plus a list of direct
//!    calls with classified arguments.
//! 3. **SCC fixpoint**: walking [`CallGraph::sccs`] callees-first, each
//!    component iterates "rebuild from local facts + current callee
//!    summaries" until its members stop changing. Acyclic components
//!    converge in one pass; recursive ones in a few (the lattices are
//!    finite and all merges are monotone).

use crate::summary::{FuncSummary, ParamEscape, RetInfo, Summaries};
use hlo_analysis::CallGraph;
use hlo_ir::{BinOp, Callee, ConstVal, FuncId, Function, GlobalId, Inst, Operand, Program};
use std::collections::BTreeSet;

/// What a register may hold, as far as a flow-insensitive pass can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtrClass {
    /// No definition seen yet (lattice bottom; undefined registers read
    /// as zero at run time).
    None,
    /// Definitely not an address (integer/float arithmetic results,
    /// comparison bits, non-address constants).
    NotPtr,
    /// An address within this function's own frame (`FrameAddr`,
    /// `Alloca`, or offsets from one).
    Frame,
    /// The address of global `.0` (or an offset from it).
    Global(GlobalId),
    /// The value of incoming parameter `.0`, unmodified (or an offset
    /// from it) — the conduit for interprocedural escape and MOD/REF.
    Param(u32),
    /// Could be anything (lattice top).
    Unknown,
}

impl PtrClass {
    fn join(self, other: PtrClass) -> PtrClass {
        use PtrClass::*;
        match (self, other) {
            (None, x) | (x, None) => x,
            (a, b) if a == b => a,
            _ => Unknown,
        }
    }
}

fn const_class(c: ConstVal) -> PtrClass {
    match c {
        ConstVal::GlobalAddr(g) => PtrClass::Global(g),
        _ => PtrClass::NotPtr,
    }
}

/// Flow-insensitive register classification for one function.
fn pointer_classes(f: &Function) -> Vec<PtrClass> {
    let n = f.num_regs as usize;
    let mut class = vec![PtrClass::None; n];
    for i in 0..f.params.min(f.num_regs) {
        class[i as usize] = PtrClass::Param(i);
    }
    let operand = |class: &[PtrClass], op: Operand| match op {
        Operand::Reg(r) => class[r.index()],
        Operand::Const(c) => const_class(c),
    };
    loop {
        let mut changed = false;
        for block in &f.blocks {
            for inst in &block.insts {
                let Some(d) = inst.dst() else { continue };
                let new = match inst {
                    Inst::Const { value, .. } => const_class(*value),
                    Inst::Copy { src, .. } => operand(&class, *src),
                    Inst::FrameAddr { .. } | Inst::Alloca { .. } => PtrClass::Frame,
                    Inst::Bin { op, a, b, .. } => match op {
                        // Comparisons always produce 0/1.
                        BinOp::Eq
                        | BinOp::Ne
                        | BinOp::Lt
                        | BinOp::Le
                        | BinOp::Gt
                        | BinOp::Ge
                        | BinOp::FLt
                        | BinOp::FEq => PtrClass::NotPtr,
                        // Offsetting an address stays within its region
                        // (out-of-bounds arithmetic is undefined, matching
                        // the memfwd alias model's slot/global disjointness).
                        BinOp::Add | BinOp::Sub => {
                            match (operand(&class, *a), operand(&class, *b)) {
                                (PtrClass::None, _) | (_, PtrClass::None) => PtrClass::None,
                                (PtrClass::NotPtr, x) | (x, PtrClass::NotPtr) => x,
                                _ => PtrClass::Unknown,
                            }
                        }
                        _ => match (operand(&class, *a), operand(&class, *b)) {
                            (PtrClass::None, _) | (_, PtrClass::None) => PtrClass::None,
                            (PtrClass::NotPtr, PtrClass::NotPtr) => PtrClass::NotPtr,
                            _ => PtrClass::Unknown,
                        },
                    },
                    Inst::Un { a, .. } => match operand(&class, *a) {
                        PtrClass::None => PtrClass::None,
                        PtrClass::NotPtr => PtrClass::NotPtr,
                        _ => PtrClass::Unknown,
                    },
                    // Loaded values and call results are unconstrained.
                    Inst::Load { .. } | Inst::Call { .. } => PtrClass::Unknown,
                    _ => PtrClass::Unknown,
                };
                let joined = class[d.index()].join(new);
                if joined != class[d.index()] {
                    class[d.index()] = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            return class;
        }
    }
}

/// Where a `Ret` value comes from, resolved as far as a single-definition
/// scan allows. `Call` sources are resolved against the callee's summary
/// during the SCC fixpoint (so a chain of wrappers still folds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetSrc {
    Const(i64),
    /// A comparison result: always in `[0, 1]`.
    Cmp,
    Call(FuncId),
    Opaque,
}

/// Everything the fixpoint needs about one function, computed once.
struct LocalFacts {
    /// Summary over the body alone (no callee facts merged yet).
    base: FuncSummary,
    /// Direct calls in program order, with classified argument values.
    calls: Vec<(FuncId, Vec<PtrClass>)>,
    /// One entry per `Ret` carrying a value.
    ret_srcs: Vec<RetSrc>,
}

fn scan(name: &str, f: &Function) -> LocalFacts {
    let class = pointer_classes(f);
    let mut base = FuncSummary::bottom(name, f.params);
    let mut calls = Vec::new();
    let mut ret_srcs = Vec::new();

    // Single-definition map for return-value resolution. Parameter
    // registers count as defined on entry.
    #[derive(Clone, Copy, PartialEq)]
    enum Def {
        Never,
        Once(RetSrc),
        Multi,
    }
    let mut defs = vec![Def::Never; f.num_regs as usize];
    for i in 0..f.params.min(f.num_regs) {
        defs[i as usize] = Def::Once(RetSrc::Opaque);
    }
    for block in &f.blocks {
        for inst in &block.insts {
            let Some(d) = inst.dst() else { continue };
            let src = match inst {
                Inst::Const {
                    value: ConstVal::I64(k),
                    ..
                } => RetSrc::Const(*k),
                Inst::Copy {
                    src: Operand::Const(ConstVal::I64(k)),
                    ..
                } => RetSrc::Const(*k),
                Inst::Bin { op, .. } if is_cmp(*op) => RetSrc::Cmp,
                Inst::Call {
                    callee: Callee::Func(t),
                    ..
                } => RetSrc::Call(*t),
                _ => RetSrc::Opaque,
            };
            defs[d.index()] = match defs[d.index()] {
                Def::Never => Def::Once(src),
                _ => Def::Multi,
            };
        }
    }

    let operand_class = |op: Operand| match op {
        Operand::Reg(r) => class[r.index()],
        Operand::Const(c) => const_class(c),
    };
    let escape_value = |base: &mut FuncSummary, c: PtrClass| match c {
        PtrClass::Frame => base.leaks_frame = true,
        PtrClass::Param(i) if base.param_escapes[i as usize] == ParamEscape::No => {
            base.param_escapes[i as usize] = ParamEscape::Direct;
        }
        _ => {}
    };

    if cfg_has_cycle(f) {
        base.may_not_terminate = true;
    }
    let mut mods: BTreeSet<GlobalId> = BTreeSet::new();
    let mut refs: BTreeSet<GlobalId> = BTreeSet::new();
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Store { base: b, value, .. } => {
                    match operand_class(*b) {
                        PtrClass::Frame => {}
                        PtrClass::Global(g) => {
                            mods.insert(g);
                        }
                        PtrClass::Param(i) => base.writes_params[i as usize] = true,
                        _ => base.writes_unknown = true,
                    }
                    // Storing a frame address anywhere counts as a leak
                    // (escape tracking does not follow values through
                    // memory); a parameter stored outside the local frame
                    // escapes.
                    match operand_class(*value) {
                        PtrClass::Frame => base.leaks_frame = true,
                        PtrClass::Param(i)
                            if operand_class(*b) != PtrClass::Frame
                                && base.param_escapes[i as usize] == ParamEscape::No =>
                        {
                            base.param_escapes[i as usize] = ParamEscape::Direct;
                        }
                        _ => {}
                    }
                }
                Inst::Load { base: b, .. } => match operand_class(*b) {
                    PtrClass::Frame => {}
                    PtrClass::Global(g) => {
                        refs.insert(g);
                    }
                    PtrClass::Param(i) => base.reads_params[i as usize] = true,
                    _ => base.reads_unknown = true,
                },
                Inst::Bin { op, b, .. } if op.can_trap() => {
                    let safe = matches!(b.as_const(), Some(ConstVal::I64(k)) if k != 0 && k != -1);
                    if !safe {
                        base.may_trap = true;
                    }
                }
                Inst::Call { callee, args, .. } => match callee {
                    Callee::Func(t) => {
                        calls.push((*t, args.iter().map(|a| operand_class(*a)).collect()));
                    }
                    Callee::Extern(_) | Callee::Indirect(_) => {
                        if matches!(callee, Callee::Extern(_)) {
                            base.calls_extern = true;
                        } else {
                            base.calls_indirect = true;
                        }
                        for a in args {
                            escape_value(&mut base, operand_class(*a));
                        }
                        if let Callee::Indirect(op) = callee {
                            escape_value(&mut base, operand_class(*op));
                        }
                    }
                },
                Inst::Ret { value: Some(v) } => {
                    // Returning a frame address leaks it; returning a
                    // parameter is not an escape (the caller already held
                    // the value).
                    if operand_class(*v) == PtrClass::Frame {
                        base.leaks_frame = true;
                    }
                    ret_srcs.push(match v {
                        Operand::Const(ConstVal::I64(k)) => RetSrc::Const(*k),
                        Operand::Const(_) => RetSrc::Opaque,
                        Operand::Reg(r) => match defs[r.index()] {
                            Def::Once(s) => s,
                            _ => RetSrc::Opaque,
                        },
                    });
                }
                _ => {}
            }
        }
    }
    base.mod_globals = mods.into_iter().collect();
    base.ref_globals = refs.into_iter().collect();
    LocalFacts {
        base,
        calls,
        ret_srcs,
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::FLt
            | BinOp::FEq
    )
}

fn cfg_has_cycle(f: &Function) -> bool {
    let n = f.blocks.len();
    if n == 0 {
        return false;
    }
    let succs: Vec<Vec<_>> = f.blocks.iter().map(|b| b.successors()).collect();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < succs[v].len() {
            let s = succs[v][*i].index();
            *i += 1;
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, 0));
                }
                1 => return true,
                _ => {}
            }
        } else {
            color[v] = 2;
            stack.pop();
        }
    }
    false
}

/// Inclusive bounds of a known return range.
fn bounds(r: RetInfo) -> Option<(i64, i64)> {
    match r {
        RetInfo::Unknown => None,
        RetInfo::Const(k) => Some((k, k)),
        RetInfo::Range(a, b) => Some((a, b)),
    }
}

fn join_ret(acc: Option<RetInfo>, next: RetInfo) -> Option<RetInfo> {
    Some(match acc {
        None => next,
        Some(a) => match (bounds(a), bounds(next)) {
            (Some((lo1, hi1)), Some((lo2, hi2))) => {
                let (lo, hi) = (lo1.min(lo2), hi1.max(hi2));
                if lo == hi {
                    RetInfo::Const(lo)
                } else {
                    RetInfo::Range(lo, hi)
                }
            }
            _ => RetInfo::Unknown,
        },
    })
}

/// Rebuilds `f`'s summary from its local facts plus the current summaries
/// of its callees.
fn refresh(facts: &LocalFacts, current: &[FuncSummary]) -> FuncSummary {
    let mut s = facts.base.clone();
    let mut mods: BTreeSet<GlobalId> = s.mod_globals.iter().copied().collect();
    let mut refs: BTreeSet<GlobalId> = s.ref_globals.iter().copied().collect();
    for (t, arg_classes) in &facts.calls {
        let ct = &current[t.index()];
        s.calls_extern |= ct.calls_extern;
        s.calls_indirect |= ct.calls_indirect;
        s.may_trap |= ct.may_trap;
        s.may_not_terminate |= ct.may_not_terminate;
        s.writes_unknown |= ct.writes_unknown;
        s.reads_unknown |= ct.reads_unknown;
        mods.extend(ct.mod_globals.iter().copied());
        refs.extend(ct.ref_globals.iter().copied());
        // Translate the callee's per-parameter facts through this site's
        // argument classes. Missing arguments read as zero (NotPtr);
        // extra arguments are ignored by the callee.
        for j in 0..ct.params as usize {
            let ac = arg_classes.get(j).copied().unwrap_or(PtrClass::NotPtr);
            if ct.writes_params[j] {
                match ac {
                    // A callee writing through the caller's own frame
                    // address stays within the caller's activation.
                    PtrClass::Frame => {}
                    PtrClass::Global(g) => {
                        mods.insert(g);
                    }
                    PtrClass::Param(i) => s.writes_params[i as usize] = true,
                    _ => s.writes_unknown = true,
                }
            }
            if ct.reads_params[j] {
                match ac {
                    PtrClass::Frame => {}
                    PtrClass::Global(g) => {
                        refs.insert(g);
                    }
                    PtrClass::Param(i) => s.reads_params[i as usize] = true,
                    _ => s.reads_unknown = true,
                }
            }
            if ct.param_escapes[j] != ParamEscape::No {
                match ac {
                    PtrClass::Frame => s.leaks_frame = true,
                    PtrClass::Param(i) if s.param_escapes[i as usize] == ParamEscape::No => {
                        s.param_escapes[i as usize] = ParamEscape::Via(*t, j);
                    }
                    _ => {}
                }
            }
        }
    }
    s.mod_globals = mods.into_iter().collect();
    s.ref_globals = refs.into_iter().collect();
    let mut ret = None;
    for src in &facts.ret_srcs {
        let info = match src {
            RetSrc::Const(k) => RetInfo::Const(*k),
            RetSrc::Cmp => RetInfo::Range(0, 1),
            RetSrc::Call(t) => current[t.index()].ret,
            RetSrc::Opaque => RetInfo::Unknown,
        };
        ret = join_ret(ret, info);
    }
    s.ret = ret.unwrap_or(RetInfo::Unknown);
    s
}

impl Summaries {
    /// Computes summaries for every function of `p` by the bottom-up SCC
    /// fixpoint described in the module docs. Deterministic: depends only
    /// on the program text, never on thread count or iteration timing.
    pub fn compute(p: &Program, cg: &CallGraph) -> Summaries {
        let facts: Vec<LocalFacts> = p.iter_funcs().map(|(_, f)| scan(&f.name, f)).collect();
        let mut funcs: Vec<FuncSummary> = facts.iter().map(|l| l.base.clone()).collect();
        let sccs = cg.sccs(); // callees before callers
        for comp in &sccs {
            let recursive = comp.len() > 1
                || comp
                    .iter()
                    .any(|&f| cg.in_recursion(std::slice::from_ref(comp), f));
            if recursive {
                for &f in comp {
                    funcs[f.index()].may_not_terminate = true;
                }
            }
            loop {
                let mut changed = false;
                for &f in comp {
                    let mut next = refresh(&facts[f.index()], &funcs);
                    if recursive {
                        next.may_not_terminate = true;
                    }
                    if next != funcs[f.index()] {
                        funcs[f.index()] = next;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        let mut out = Summaries { funcs };
        if crate::fault::armed() {
            // Planted fault for the fuzz gate: erase every effect fact so
            // summary-driven deletion and forwarding misfire observably.
            for s in &mut out.funcs {
                s.writes_unknown = false;
                s.calls_extern = false;
                s.calls_indirect = false;
                s.may_trap = false;
                s.may_not_terminate = false;
                s.leaks_frame = false;
                s.mod_globals.clear();
                for w in &mut s.writes_params {
                    *w = false;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_analysis::side_effect_free_funcs;
    use hlo_ir::{FunctionBuilder, Linkage, ProgramBuilder, Type};

    fn summaries(p: &Program) -> Summaries {
        let cg = CallGraph::build(p);
        Summaries::compute(p, &cg)
    }

    /// callee0 stores to g; wrapper calls callee0; pure adds.
    #[test]
    fn mod_sets_propagate_to_callers() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        let mut callee = FunctionBuilder::new("callee", m, 0);
        let e = callee.entry_block();
        let ga = callee.const_(e, ConstVal::GlobalAddr(g));
        callee.store(e, ga.into(), Operand::imm(0), Operand::imm(1));
        callee.ret(e, None);
        pb.add_function(callee.finish(Linkage::Public, Type::Void));
        let mut caller = FunctionBuilder::new("caller", m, 0);
        let e = caller.entry_block();
        caller.call_void(e, FuncId(0), vec![]);
        caller.ret(e, None);
        pb.add_function(caller.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let s = summaries(&p);
        assert_eq!(s.funcs[0].mod_globals, vec![g]);
        assert_eq!(s.funcs[1].mod_globals, vec![g], "MOD flows bottom-up");
        assert!(!s.funcs[0].removable());
        assert!(!s.funcs[1].removable());
    }

    /// A function that fills a local scratch slot is removable under ipa
    /// but *not* syntactically side-effect-free — the sharpening this
    /// crate exists for.
    #[test]
    fn local_scratch_store_is_removable_but_not_syntactically_pure() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("scratch", m, 1);
        let e = f.entry_block();
        let s = f.new_slot(16);
        let a = f.frame_addr(e, s);
        f.store(e, a.into(), Operand::imm(0), Operand::Reg(f.param(0)));
        let v = f.load(e, a.into(), Operand::imm(0));
        f.ret(e, Some(v.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        let s = Summaries::compute(&p, &cg);
        assert!(s.funcs[0].removable());
        assert_eq!(
            side_effect_free_funcs(&p, &cg),
            vec![false],
            "syntactic purity rejects any store"
        );
    }

    /// ipa's removable set must contain everything the syntactic test
    /// admits (on programs that do not return frame addresses, which the
    /// syntactic test cannot see).
    #[test]
    fn removable_is_superset_of_syntactic_purity() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let ext = pb.declare_extern("print_i64", Some(1), false);
        // pure leaf
        let mut leaf = FunctionBuilder::new("leaf", m, 1);
        let e = leaf.entry_block();
        let r = leaf.bin(e, BinOp::Add, Operand::Reg(leaf.param(0)), Operand::imm(1));
        leaf.ret(e, Some(r.into()));
        pb.add_function(leaf.finish(Linkage::Public, Type::I64));
        // pure wrapper
        let mut wrap = FunctionBuilder::new("wrap", m, 1);
        let e = wrap.entry_block();
        let r = wrap.call(e, FuncId(0), vec![Operand::Reg(wrap.param(0))]);
        wrap.ret(e, Some(r.into()));
        pb.add_function(wrap.finish(Linkage::Public, Type::I64));
        // impure printer
        let mut noisy = FunctionBuilder::new("noisy", m, 0);
        let e = noisy.entry_block();
        noisy.call_extern(e, ext, vec![Operand::imm(1)], false);
        noisy.ret(e, None);
        pb.add_function(noisy.finish(Linkage::Public, Type::Void));
        // divider (traps)
        let mut dv = FunctionBuilder::new("dv", m, 2);
        let e = dv.entry_block();
        let r = dv.bin(
            e,
            BinOp::Div,
            Operand::Reg(dv.param(0)),
            Operand::Reg(dv.param(1)),
        );
        dv.ret(e, Some(r.into()));
        pb.add_function(dv.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        let free = side_effect_free_funcs(&p, &cg);
        let s = Summaries::compute(&p, &cg);
        let removable = s.removable();
        for i in 0..p.funcs.len() {
            if free[i] {
                assert!(removable[i], "func {i}: ipa must admit what purity admits");
            }
        }
        assert!(!removable[2], "extern caller stays blocked");
        assert!(!removable[3], "unproven divisor stays blocked");
    }

    #[test]
    fn constant_divisor_division_is_removable() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("halve", m, 1);
        let e = f.entry_block();
        let r = f.bin(e, BinOp::Div, Operand::Reg(f.param(0)), Operand::imm(2));
        f.ret(e, Some(r.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let s = summaries(&p);
        assert!(!s.funcs[0].may_trap, "divisor 2 cannot trap");
        assert!(s.funcs[0].removable());
    }

    /// sink(p) stores p to a global (Direct escape); fwd(q) passes q to
    /// sink (Via escape); outer passes a frame address to fwd, so the
    /// frame leaks through two call levels.
    #[test]
    fn escape_chains_are_tracked_through_two_levels() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        let mut sink = FunctionBuilder::new("sink", m, 1);
        let e = sink.entry_block();
        let ga = sink.const_(e, ConstVal::GlobalAddr(g));
        sink.store(e, ga.into(), Operand::imm(0), Operand::Reg(sink.param(0)));
        sink.ret(e, None);
        pb.add_function(sink.finish(Linkage::Public, Type::Void));
        let mut fwd = FunctionBuilder::new("fwd", m, 1);
        let e = fwd.entry_block();
        fwd.call_void(e, FuncId(0), vec![Operand::Reg(fwd.param(0))]);
        fwd.ret(e, None);
        pb.add_function(fwd.finish(Linkage::Public, Type::Void));
        let mut outer = FunctionBuilder::new("outer", m, 0);
        let e = outer.entry_block();
        let s = outer.new_slot(8);
        let a = outer.frame_addr(e, s);
        outer.call_void(e, FuncId(1), vec![a.into()]);
        outer.ret(e, None);
        pb.add_function(outer.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let s = summaries(&p);
        assert_eq!(s.funcs[0].param_escapes[0], ParamEscape::Direct);
        assert_eq!(s.funcs[1].param_escapes[0], ParamEscape::Via(FuncId(0), 0));
        assert!(s.funcs[2].leaks_frame, "frame escapes through the chain");
        assert!(
            !s.funcs[1].leaks_frame,
            "fwd leaks its caller's frame, not its own"
        );
    }

    #[test]
    fn return_constancy_folds_through_wrappers() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut leaf = FunctionBuilder::new("leaf", m, 0);
        let e = leaf.entry_block();
        leaf.ret(e, Some(Operand::imm(7)));
        pb.add_function(leaf.finish(Linkage::Public, Type::I64));
        let mut wrap = FunctionBuilder::new("wrap", m, 0);
        let e = wrap.entry_block();
        let r = wrap.call(e, FuncId(0), vec![]);
        wrap.ret(e, Some(r.into()));
        pb.add_function(wrap.finish(Linkage::Public, Type::I64));
        let mut cmp = FunctionBuilder::new("cmp", m, 2);
        let e = cmp.entry_block();
        let r = cmp.bin(
            e,
            BinOp::Lt,
            Operand::Reg(cmp.param(0)),
            Operand::Reg(cmp.param(1)),
        );
        cmp.ret(e, Some(r.into()));
        pb.add_function(cmp.finish(Linkage::Public, Type::I64));
        // Two-armed function returning 3 or 5.
        let mut two = FunctionBuilder::new("two", m, 1);
        let e = two.entry_block();
        let a = two.new_block();
        let b = two.new_block();
        two.br(e, Operand::Reg(two.param(0)), a, b);
        two.ret(a, Some(Operand::imm(3)));
        two.ret(b, Some(Operand::imm(5)));
        pb.add_function(two.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let s = summaries(&p);
        assert_eq!(s.funcs[0].ret, RetInfo::Const(7));
        assert_eq!(s.funcs[1].ret, RetInfo::Const(7), "constancy flows up");
        assert_eq!(s.funcs[2].ret, RetInfo::Range(0, 1));
        assert_eq!(s.funcs[3].ret, RetInfo::Range(3, 5));
    }

    #[test]
    fn recursion_and_loops_block_removal() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("rec", m, 1);
        let e = f.entry_block();
        let r = f.call(e, FuncId(0), vec![Operand::Reg(f.param(0))]);
        f.ret(e, Some(r.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let mut l = FunctionBuilder::new("looper", m, 1);
        let e = l.entry_block();
        let h = l.new_block();
        let x = l.new_block();
        l.jump(e, h);
        l.br(h, Operand::Reg(l.param(0)), h, x);
        l.ret(x, None);
        pb.add_function(l.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let s = summaries(&p);
        assert!(s.funcs[0].may_not_terminate);
        assert!(s.funcs[1].may_not_terminate);
        assert!(!s.funcs[0].removable());
        assert!(!s.funcs[1].removable());
    }

    #[test]
    fn armed_fault_erases_effect_facts() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let ext = pb.declare_extern("print_i64", Some(1), false);
        let mut f = FunctionBuilder::new("noisy", m, 0);
        let e = f.entry_block();
        f.call_extern(e, ext, vec![Operand::imm(1)], false);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert!(!Summaries::compute(&p, &cg).funcs[0].removable());
        let _g = crate::fault::FaultGuard::arm();
        assert!(
            Summaries::compute(&p, &cg).funcs[0].removable(),
            "armed fault must claim purity"
        );
    }

    /// Two independent call chains; editing the leaf of one re-fingerprints
    /// exactly that chain's summaries (the dependence cone), extending the
    /// cone-hash invalidation contract to summaries.
    #[test]
    fn editing_one_function_rekeys_exactly_its_cone() {
        fn build(leaf_a_stores: bool) -> Program {
            let mut pb = ProgramBuilder::new();
            let m = pb.add_module("m");
            let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
            let mut leaf_a = FunctionBuilder::new("leaf_a", m, 1);
            let e = leaf_a.entry_block();
            if leaf_a_stores {
                let ga = leaf_a.const_(e, ConstVal::GlobalAddr(g));
                leaf_a.store(e, ga.into(), Operand::imm(0), Operand::Reg(leaf_a.param(0)));
            }
            let r = leaf_a.bin(
                e,
                BinOp::Add,
                Operand::Reg(leaf_a.param(0)),
                Operand::imm(1),
            );
            leaf_a.ret(e, Some(r.into()));
            pb.add_function(leaf_a.finish(Linkage::Public, Type::I64));
            let mut mid_a = FunctionBuilder::new("mid_a", m, 1);
            let e = mid_a.entry_block();
            let r = mid_a.call(e, FuncId(0), vec![Operand::Reg(mid_a.param(0))]);
            mid_a.ret(e, Some(r.into()));
            pb.add_function(mid_a.finish(Linkage::Public, Type::I64));
            let mut leaf_b = FunctionBuilder::new("leaf_b", m, 1);
            let e = leaf_b.entry_block();
            let r = leaf_b.bin(
                e,
                BinOp::Mul,
                Operand::Reg(leaf_b.param(0)),
                Operand::imm(3),
            );
            leaf_b.ret(e, Some(r.into()));
            pb.add_function(leaf_b.finish(Linkage::Public, Type::I64));
            let mut mid_b = FunctionBuilder::new("mid_b", m, 1);
            let e = mid_b.entry_block();
            let r = mid_b.call(e, FuncId(2), vec![Operand::Reg(mid_b.param(0))]);
            mid_b.ret(e, Some(r.into()));
            pb.add_function(mid_b.finish(Linkage::Public, Type::I64));
            let mut main = FunctionBuilder::new("main", m, 1);
            let e = main.entry_block();
            let x = main.call(e, FuncId(1), vec![Operand::Reg(main.param(0))]);
            let y = main.call(e, FuncId(3), vec![x.into()]);
            main.ret(e, Some(y.into()));
            pb.add_function(main.finish(Linkage::Public, Type::I64));
            pb.finish(Some(FuncId(4)))
        }
        let before = summaries(&build(false)).fingerprints();
        let after = summaries(&build(true)).fingerprints();
        assert_ne!(before[0], after[0], "leaf_a changed");
        assert_ne!(before[1], after[1], "mid_a absorbs leaf_a's summary");
        assert_ne!(before[4], after[4], "main absorbs both chains");
        assert_eq!(before[2], after[2], "leaf_b untouched");
        assert_eq!(before[3], after[3], "mid_b untouched");
    }
}
