#![warn(missing_docs)]
//! Bottom-up interprocedural summary analysis over the call graph.
//!
//! The optimizer's per-function passes forfeit cross-call facts that
//! whole-program visibility makes cheap: whether a callee writes any
//! global the caller cares about, whether a call with a dead result can
//! be deleted even though the callee fills a local scratch array, whether
//! a frame address handed down a call chain is retained somewhere, and
//! whether a routine always returns the same constant. This crate
//! computes one [`FuncSummary`] per function by a deterministic fixpoint
//! over the SCC condensation of the call graph ([`CallGraph::sccs`]
//! returns components callees-first, so a single sequential sweep with
//! iteration inside each component suffices) and hands the results to:
//!
//! * the inliner/cloner (legality: `ipa-escape-blocked`; benefit:
//!   `ipa-pure-callee`),
//! * the scalar passes (generalized pure-call elimination, cross-call
//!   store-to-load forwarding, constant-return folding — `crates/opt`),
//! * the lint battery (call-through-escaped-frame, infeasible
//!   indirect-call target sets — `crates/lint`),
//! * the `hlo-serve` cache keys (summary fingerprints are mixed into the
//!   per-function dependence-cone hashes, so editing a callee's
//!   *effects* re-keys its whole caller cone).
//!
//! The analysis is sequential and allocation-order deterministic, so its
//! output is byte-identical at any `--jobs` value by construction; the
//! summaries serialize to a canonical text form ([`Summaries::to_text`] /
//! [`Summaries::from_text`]) that is diffable and fingerprintable.
//!
//! Soundness notes (documented approximations, all conservative except
//! where stated):
//!
//! * Pointer classification is flow-insensitive; any register holding
//!   values of more than one class degrades to *unknown*, and stores
//!   through unknown or absolute addresses set `writes_unknown`.
//! * Frame-escape tracking follows frame addresses through copies and
//!   direct-call argument positions, but not through arithmetic or
//!   memory (the same laundering limitation as the intraprocedural
//!   frame-escape lint). Returning a parameter is not an escape.
//! * `may_not_terminate` is true for any function whose CFG has a cycle
//!   or that (transitively) participates in recursion — no termination
//!   proofs are attempted.

pub mod fault;

mod analyze;
mod summary;

pub use summary::{FuncSummary, ParamEscape, RetInfo, Summaries};
