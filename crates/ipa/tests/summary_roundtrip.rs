//! Wire-format guarantees for `ipa-summaries v1`.
//!
//! Summary fingerprints participate in the daemon's cache keys, so the
//! canonical text must be a fixpoint: `from_text(to_text(s)) == s` and
//! re-serializing reproduces the bytes exactly for any summary set the
//! analysis can produce.

use hlo_ipa::{FuncSummary, ParamEscape, RetInfo, Summaries};
use hlo_ir::{FuncId, GlobalId};
use proptest::prelude::*;

fn escape_strategy() -> impl Strategy<Value = ParamEscape> {
    prop_oneof![
        Just(ParamEscape::No),
        Just(ParamEscape::Direct),
        (0u32..8, 0usize..4).prop_map(|(f, j)| ParamEscape::Via(FuncId(f), j)),
    ]
}

fn ret_strategy() -> impl Strategy<Value = RetInfo> {
    prop_oneof![
        Just(RetInfo::Unknown),
        any::<i64>().prop_map(RetInfo::Const),
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| RetInfo::Range(a.min(b), a.max(b))),
    ]
}

fn summary_strategy() -> impl Strategy<Value = FuncSummary> {
    const MAX_PARAMS: usize = 4;
    let flags = prop::collection::vec(any::<bool>(), 7);
    let globals = (
        prop::collection::vec(0u32..16, 0..4),
        prop::collection::vec(0u32..16, 0..4),
    );
    let per_param = (
        0usize..=MAX_PARAMS,
        prop::collection::vec(any::<bool>(), MAX_PARAMS),
        prop::collection::vec(any::<bool>(), MAX_PARAMS),
        prop::collection::vec(escape_strategy(), MAX_PARAMS),
    );
    ("[a-z]{1,8}", flags, globals, per_param, ret_strategy()).prop_map(
        |(name, flags, (mods, refs), (params, mut w, mut r, mut esc), ret)| {
            let sorted = |ids: Vec<u32>| {
                let mut v: Vec<GlobalId> = ids.into_iter().map(GlobalId).collect();
                v.sort();
                v.dedup();
                v
            };
            w.truncate(params);
            r.truncate(params);
            esc.truncate(params);
            FuncSummary {
                name,
                params: params as u32,
                mod_globals: sorted(mods),
                ref_globals: sorted(refs),
                writes_unknown: flags[0],
                reads_unknown: flags[1],
                writes_params: w,
                reads_params: r,
                param_escapes: esc,
                calls_extern: flags[2],
                calls_indirect: flags[3],
                may_trap: flags[4],
                may_not_terminate: flags[5],
                leaks_frame: flags[6],
                ret,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn summaries_text_roundtrip_is_identity(funcs in prop::collection::vec(summary_strategy(), 0..6)) {
        let s = Summaries { funcs };
        let text = s.to_text();
        let back = Summaries::from_text(&text).expect("canonical text parses");
        prop_assert_eq!(&s, &back);
        // Canonical form is a fixpoint (fingerprints hash these bytes).
        prop_assert_eq!(text, back.to_text());
    }
}
