//! Wire-format guarantees for the profile database text form.
//!
//! The serve path ships profiles over the socket as `to_text` and keys its
//! cache on the re-serialized parse, so `from_text(to_text(db)) == db`
//! must hold for arbitrary databases, and malformed lines must be rejected
//! with an accurate line number.

use hlo_profile::{FuncCounts, ProfileDb, ProfileParseError};
use proptest::prelude::*;

/// `(module, func, entry, blocks, edges)` tuples; names are drawn from a
/// small pool so duplicate keys (later insert wins, like `to_text`'s
/// one-record-per-function form) get exercised too.
fn db_strategy() -> impl Strategy<Value = ProfileDb> {
    let func = (
        (0u8..4, 0u8..6),
        any::<u32>(),
        prop::collection::vec(any::<u64>(), 0..8),
        prop::collection::vec(((0u32..16, 0u32..16), any::<u64>()), 0..8),
    );
    prop::collection::vec(func, 0..10).prop_map(|funcs| {
        let mut db = ProfileDb::new();
        for ((m, f), entry, blocks, edges) in funcs {
            db.insert(
                format!("mod{m}"),
                format!("fn{f}"),
                FuncCounts {
                    entry: u64::from(entry),
                    blocks,
                    edges: edges.into_iter().collect(),
                },
            );
        }
        db
    })
}

proptest! {
    #[test]
    fn text_roundtrip_is_identity(db in db_strategy()) {
        let text = db.to_text();
        let back = ProfileDb::from_text(&text).expect("to_text output parses");
        prop_assert_eq!(&db, &back);
        // And the canonical form is a fixpoint: re-serializing the parse
        // yields the same bytes, which is what the serve cache keys on.
        prop_assert_eq!(text, back.to_text());
    }
}

fn err_of(text: &str) -> ProfileParseError {
    ProfileDb::from_text(text).expect_err("must not parse")
}

#[test]
fn unknown_record_reports_its_line() {
    let e = err_of("func m f 1\nblocks 1 2\nend\nbogus 9\n");
    assert_eq!(e.line, 4);
    assert!(e.msg.contains("bogus"), "{}", e.msg);
}

#[test]
fn bad_block_count_reports_its_line() {
    let e = err_of("func m f 1\nblocks 1 two 3\nend\n");
    assert_eq!(e.line, 2);
    assert!(e.msg.contains("block"), "{}", e.msg);
}

#[test]
fn bad_edge_reports_its_line() {
    let e = err_of("func m f 1\nedge 0 x 5\nend\n");
    assert_eq!(e.line, 2);
    let e = err_of("func m f 1\nedge 0 1\nend\n");
    assert_eq!(e.line, 2, "missing edge count");
}

#[test]
fn records_outside_func_report_their_line() {
    assert_eq!(err_of("blocks 1 2\n").line, 1);
    assert_eq!(err_of("\n\nedge 0 1 5\n").line, 3);
    assert_eq!(err_of("end\n").line, 1);
}

#[test]
fn nested_and_unterminated_funcs_are_rejected() {
    let e = err_of("func m f 1\nfunc m g 2\n");
    assert_eq!(e.line, 2);
    assert!(e.msg.contains("nested"), "{}", e.msg);
    let e = err_of("func m f 1\nblocks 1\n");
    assert_eq!(e.line, 2, "error points at the last line of the record");
    assert!(e.msg.contains("unterminated"), "{}", e.msg);
}

#[test]
fn missing_entry_count_reports_its_line() {
    let e = err_of("func m f\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("entry"), "{}", e.msg);
}
