//! Wire-format guarantees for the profile database text form.
//!
//! The serve path ships profiles over the socket as `to_text` and keys its
//! cache on the re-serialized parse, so `from_text(to_text(db)) == db`
//! must hold for arbitrary databases, and malformed lines must be rejected
//! with an accurate line number.

use hlo_profile::{FuncCounts, ProfileDb, ProfileParseError};
use proptest::prelude::*;

/// `(module, func, entry, blocks, edges)` tuples; names are drawn from a
/// small pool so duplicate keys (later insert wins, like `to_text`'s
/// one-record-per-function form) get exercised too.
fn db_strategy() -> impl Strategy<Value = ProfileDb> {
    let func = (
        (0u8..4, 0u8..6),
        any::<u32>(),
        prop::collection::vec(any::<u64>(), 0..8),
        prop::collection::vec(((0u32..16, 0u32..16), any::<u64>()), 0..8),
    );
    prop::collection::vec(func, 0..10).prop_map(|funcs| {
        let mut db = ProfileDb::new();
        for ((m, f), entry, blocks, edges) in funcs {
            db.insert(
                format!("mod{m}"),
                format!("fn{f}"),
                FuncCounts {
                    entry: u64::from(entry),
                    blocks,
                    edges: edges.into_iter().collect(),
                },
            );
        }
        db
    })
}

proptest! {
    #[test]
    fn text_roundtrip_is_identity(db in db_strategy()) {
        let text = db.to_text();
        let back = ProfileDb::from_text(&text).expect("to_text output parses");
        prop_assert_eq!(&db, &back);
        // And the canonical form is a fixpoint: re-serializing the parse
        // yields the same bytes, which is what the serve cache keys on.
        prop_assert_eq!(text, back.to_text());
    }

    /// Duplicate records merge: parsing the concatenation of two texts is
    /// the same as parsing each and merging the databases. This is the
    /// documented `from_text` duplicate rule the pgo store leans on.
    #[test]
    fn concatenated_texts_parse_as_merge(a in db_strategy(), b in db_strategy()) {
        let concat = format!("{}{}", a.to_text(), b.to_text());
        let parsed = ProfileDb::from_text(&concat).expect("concatenation parses");
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(parsed, merged);
    }
}

#[test]
fn duplicate_func_records_merge_counts() {
    // Two records for (m, f): entries, blocks and edges all sum.
    let text = "func m f 3\nblocks 1 2\nedge 0 1 5\nend\n\
                func m f 4\nblocks 10\nedge 0 1 1\nedge 1 0 7\nend\n";
    let db = ProfileDb::from_text(text).unwrap();
    let c = db.get("m", "f").unwrap();
    assert_eq!(c.entry, 7);
    assert_eq!(c.blocks, vec![11, 2]);
    assert_eq!(c.edges[&(0, 1)], 6);
    assert_eq!(c.edges[&(1, 0)], 7);
    // The merged database still round-trips canonically.
    assert_eq!(ProfileDb::from_text(&db.to_text()).unwrap(), db);
}

#[test]
fn duplicate_edge_lines_merge_within_a_record() {
    let text = "func m f 1\nblocks 1\nedge 0 1 5\nedge 0 1 2\nend\n";
    let db = ProfileDb::from_text(text).unwrap();
    assert_eq!(db.get("m", "f").unwrap().edges[&(0, 1)], 7);
}

#[test]
fn duplicate_merge_saturates() {
    let near = u64::MAX - 1;
    let text = format!("func m f {near}\nblocks {near}\nedge 0 1 {near}\nend\n").repeat(2);
    let db = ProfileDb::from_text(&text).unwrap();
    let c = db.get("m", "f").unwrap();
    assert_eq!(c.entry, u64::MAX);
    assert_eq!(c.blocks, vec![u64::MAX]);
    assert_eq!(c.edges[&(0, 1)], u64::MAX);
}

fn err_of(text: &str) -> ProfileParseError {
    ProfileDb::from_text(text).expect_err("must not parse")
}

#[test]
fn unknown_record_reports_its_line() {
    let e = err_of("func m f 1\nblocks 1 2\nend\nbogus 9\n");
    assert_eq!(e.line, 4);
    assert!(e.msg.contains("bogus"), "{}", e.msg);
}

#[test]
fn bad_block_count_reports_its_line() {
    let e = err_of("func m f 1\nblocks 1 two 3\nend\n");
    assert_eq!(e.line, 2);
    assert!(e.msg.contains("block"), "{}", e.msg);
}

#[test]
fn bad_edge_reports_its_line() {
    let e = err_of("func m f 1\nedge 0 x 5\nend\n");
    assert_eq!(e.line, 2);
    let e = err_of("func m f 1\nedge 0 1\nend\n");
    assert_eq!(e.line, 2, "missing edge count");
}

#[test]
fn records_outside_func_report_their_line() {
    assert_eq!(err_of("blocks 1 2\n").line, 1);
    assert_eq!(err_of("\n\nedge 0 1 5\n").line, 3);
    assert_eq!(err_of("end\n").line, 1);
}

#[test]
fn nested_and_unterminated_funcs_are_rejected() {
    let e = err_of("func m f 1\nfunc m g 2\n");
    assert_eq!(e.line, 2);
    assert!(e.msg.contains("nested"), "{}", e.msg);
    let e = err_of("func m f 1\nblocks 1\n");
    assert_eq!(e.line, 2, "error points at the last line of the record");
    assert!(e.msg.contains("unterminated"), "{}", e.msg);
}

#[test]
fn missing_entry_count_reports_its_line() {
    let e = err_of("func m f\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("entry"), "{}", e.msg);
}
