#![warn(missing_docs)]
//! Profile-based-optimization (PBO) substrate.
//!
//! The paper's "isom" compile path incorporates branch execution counts
//! gathered by previous training runs (§2.1, Figure 1). This crate is that
//! loop:
//!
//! 1. [`ProfileCollector`] rides along a VM execution of the *train* input
//!    as an [`hlo_vm::ExecMonitor`], counting block entries, CFG edges and
//!    call sites.
//! 2. [`ProfileDb`] stores the counts keyed by `(module name, function
//!    name)` — names, not ids, because the instrumented compile and the
//!    optimizing compile see different `FuncId` spaces, exactly like
//!    separate compiles in the original system.
//! 3. [`apply_profile`] annotates a freshly front-ended program with the
//!    database, giving every function a [`hlo_ir::FuncProfile`] that the
//!    HLO heuristics and the scalar optimizer then maintain through
//!    inlining and cloning.
//!
//! The database has a line-oriented text form ([`ProfileDb::to_text`] /
//! [`ProfileDb::from_text`]) so training results can be stored on disk,
//! mirroring the paper's profile database files.

mod apply;
mod collect;
mod data;

pub use apply::apply_profile;
pub use collect::{collect_profile, ProfileCollector};
pub use data::{FuncCounts, ProfileDb, ProfileParseError};
