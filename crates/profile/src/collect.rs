//! Profile collection during training runs.

use crate::data::{FuncCounts, ProfileDb};
use hlo_ir::{BlockId, FuncId, Program};
use hlo_vm::{run_with_monitor, ExecMonitor, ExecOptions, ExecOutcome, Trap};

/// An [`ExecMonitor`] that counts block entries and CFG edges.
///
/// This models the paper's instrumented compile: the "probe" overhead is
/// accounted separately by the compile-time model (crate `hlo`), not by
/// perturbing the run itself.
#[derive(Debug, Clone)]
pub struct ProfileCollector {
    entries: Vec<u64>,
    blocks: Vec<Vec<u64>>,
    edges: Vec<std::collections::HashMap<(u32, u32), u64>>,
}

impl ProfileCollector {
    /// Creates a collector sized for `p`.
    pub fn new(p: &Program) -> Self {
        ProfileCollector {
            entries: vec![0; p.funcs.len()],
            blocks: p.funcs.iter().map(|f| vec![0; f.blocks.len()]).collect(),
            edges: vec![Default::default(); p.funcs.len()],
        }
    }

    /// Converts raw counts into a name-keyed [`ProfileDb`].
    pub fn finish(self, p: &Program) -> ProfileDb {
        let mut db = ProfileDb::new();
        for (fi, f) in p.funcs.iter().enumerate() {
            if self.entries[fi] == 0 && self.blocks[fi].iter().all(|&c| c == 0) {
                continue; // never executed; leave unprofiled
            }
            db.insert(
                p.module(f.module).name.clone(),
                f.name.clone(),
                FuncCounts {
                    entry: self.entries[fi],
                    blocks: self.blocks[fi].clone(),
                    edges: self.edges[fi].clone(),
                },
            );
        }
        db
    }
}

impl ExecMonitor for ProfileCollector {
    fn block(&mut self, func: FuncId, block: BlockId) {
        self.blocks[func.index()][block.index()] += 1;
        if block.index() == 0 {
            self.entries[func.index()] += 1;
        }
    }

    fn edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        *self.edges[func.index()].entry((from.0, to.0)).or_insert(0) += 1;
    }
}

/// Runs `p` on the training arguments and returns the collected profile
/// together with the run's outcome (whose retired-instruction count feeds
/// the compile-time model: a P-scope compile pays for the training run).
///
/// # Errors
/// Propagates any VM trap from the training run.
pub fn collect_profile(
    p: &Program,
    args: &[i64],
    opts: &ExecOptions,
) -> Result<(ProfileDb, ExecOutcome), Trap> {
    let mut c = ProfileCollector::new(p);
    let out = run_with_monitor(p, args, opts, &mut c)?;
    Ok((c.finish(p), out))
}

impl ProfileDb {
    /// Synthesizes a database from one instrumented VM execution of `p` —
    /// the training-run loop as a single call, for callers (the fuzzer,
    /// generated-program harnesses) that want *real* counts for an
    /// arbitrary program instead of a hand-written profile.
    ///
    /// Unlike [`collect_profile`] this tolerates trapping programs: a run
    /// that traps after executing some code still yields the counts
    /// gathered up to the fault (the training run "crashed", but the
    /// profile is genuine). Only a run that traps before entering `main`
    /// produces an empty database.
    pub fn from_vm_trace(p: &Program, args: &[i64], opts: &ExecOptions) -> ProfileDb {
        let mut c = ProfileCollector::new(p);
        let _ = run_with_monitor(p, args, opts, &mut c);
        c.finish(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn looping_program() -> Program {
        hlo_frontc::compile(&[(
            "m",
            r#"
            fn work(n) {
                var s = 0;
                for (var i = 0; i < n; i = i + 1) { s = s + i; }
                return s;
            }
            fn cold() { return 123; }
            fn main() { return work(25); }
            "#,
        )])
        .unwrap()
    }

    #[test]
    fn counts_blocks_and_entries() {
        let p = looping_program();
        let (db, out) = collect_profile(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 300);
        let wc = db.get("m", "work").unwrap();
        assert_eq!(wc.entry, 1);
        // The loop body must be counted ~25 times.
        assert!(wc.blocks.iter().any(|&c| c == 25));
    }

    #[test]
    fn unexecuted_functions_are_absent() {
        let p = looping_program();
        let (db, _) = collect_profile(&p, &[], &ExecOptions::default()).unwrap();
        assert!(db.get("m", "cold").is_none());
        assert!(db.get("m", "main").is_some());
    }

    #[test]
    fn from_vm_trace_matches_collect_and_roundtrips_text() {
        let p = looping_program();
        let db = ProfileDb::from_vm_trace(&p, &[], &ExecOptions::default());
        let (collected, _) = collect_profile(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(db, collected);
        // Round-trip through the on-disk text form.
        let back = ProfileDb::from_text(&db.to_text()).unwrap();
        assert_eq!(db, back);
        assert!(back.get("m", "work").is_some());
    }

    #[test]
    fn from_vm_trace_keeps_counts_from_a_trapping_run() {
        let p = hlo_frontc::compile(&[(
            "m",
            r#"
            fn crash(n) {
                var s = 0;
                for (var i = 0; i < n; i = i + 1) { s = s + i; }
                return s / (n - n);
            }
            fn main() { return crash(10); }
            "#,
        )])
        .unwrap();
        let db = ProfileDb::from_vm_trace(&p, &[], &ExecOptions::default());
        let c = db.get("m", "crash").expect("crash ran before trapping");
        assert_eq!(c.entry, 1);
        assert!(c.blocks.iter().any(|&b| b >= 10), "{:?}", c.blocks);
    }

    #[test]
    fn edges_are_counted() {
        let p = looping_program();
        let (db, _) = collect_profile(&p, &[], &ExecOptions::default()).unwrap();
        let wc = db.get("m", "work").unwrap();
        let total_edges: u64 = wc.edges.values().sum();
        assert!(total_edges > 25);
    }
}
