//! Applying a profile database to a freshly compiled program.

use crate::data::ProfileDb;
use hlo_ir::{FuncProfile, Program};

/// Annotates every function of `p` that has matching counts in `db` with a
/// [`FuncProfile`]. Returns how many functions were annotated.
///
/// Functions without counts (never executed in training, or newly created)
/// are left unannotated; the HLO driver falls back to static estimation
/// for them, as the paper's compiler does when PBO data is absent.
///
/// A database whose block vector length disagrees with the function's
/// current CFG (e.g. the source changed between training and this compile)
/// is ignored for that function rather than misapplied.
pub fn apply_profile(p: &mut Program, db: &ProfileDb) -> usize {
    let mut applied = 0;
    let module_names: Vec<String> = p.modules.iter().map(|m| m.name.clone()).collect();
    for f in &mut p.funcs {
        let Some(c) = db.get(&module_names[f.module.index()], &f.name) else {
            continue;
        };
        if c.blocks.len() != f.blocks.len() {
            continue; // stale profile; skip
        }
        f.profile = Some(FuncProfile {
            entry: c.entry as f64,
            blocks: c.blocks.iter().map(|&b| b as f64).collect(),
        });
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_profile;
    use hlo_vm::ExecOptions;

    #[test]
    fn train_then_apply_round_trip() {
        let src = &[(
            "m",
            r#"
            fn hot(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + 1; } return s; }
            fn main() { return hot(40); }
            "#,
        )];
        let train = hlo_frontc::compile(src).unwrap();
        let (db, _) = collect_profile(&train, &[], &ExecOptions::default()).unwrap();

        // Fresh compile of the same sources (different id space in
        // principle; identical here, but matched by name regardless).
        let mut fresh = hlo_frontc::compile(src).unwrap();
        let n = apply_profile(&mut fresh, &db);
        assert_eq!(n, 2);
        let hot = fresh.find_func("m", "hot").unwrap();
        let prof = fresh.func(hot).profile.as_ref().unwrap();
        assert_eq!(prof.entry, 1.0);
        assert!(prof.blocks.iter().any(|&b| (b - 40.0).abs() < 1e-9));
    }

    #[test]
    fn profiles_from_multiple_training_inputs_merge_and_apply() {
        // The paper's §5 future work: "incorporating profile information
        // from a variety of sources". Two training runs with different
        // inputs exercise different sides of a branch; the merged
        // database sees both.
        let src = &[(
            "m",
            r#"
            global acc;
            fn tick(mode) {
                var r = 0;
                if (mode == 0) { acc = acc + 1; r = 1; }
                else { acc = acc + 2; r = 2; }
                return r;
            }
            fn main(mode) {
                acc = 0;
                var s = 0;
                for (var i = 0; i < 50; i = i + 1) { s = s + tick(mode); }
                return s;
            }
            "#,
        )];
        let p = hlo_frontc::compile(src).unwrap();
        let (db0, _) = collect_profile(&p, &[0], &ExecOptions::default()).unwrap();
        let (db1, _) = collect_profile(&p, &[1], &ExecOptions::default()).unwrap();
        let mut merged = db0.clone();
        merged.merge(&db1);

        // Each single-input profile leaves one arm of tick cold; the
        // merged profile heats both (only structurally unreachable blocks
        // — the lowered return's parking block — stay at zero).
        let cold_blocks = |db: &crate::ProfileDb| {
            let c = db.get("m", "tick").unwrap();
            c.blocks.iter().filter(|&&b| b == 0).count()
        };
        assert!(cold_blocks(&merged) < cold_blocks(&db0));
        assert!(cold_blocks(&merged) < cold_blocks(&db1));

        let mut fresh = hlo_frontc::compile(src).unwrap();
        assert_eq!(apply_profile(&mut fresh, &merged), 2);
        let tick = fresh.find_func("m", "tick").unwrap();
        assert_eq!(fresh.func(tick).profile.as_ref().unwrap().entry, 100.0);
    }

    #[test]
    fn stale_profile_is_skipped() {
        let v1 = &[("m", "fn main() { return 1; }")];
        let v2 = &[("m", "fn main() { if (1) { return 1; } return 2; }")];
        let train = hlo_frontc::compile(v1).unwrap();
        let (db, _) = collect_profile(&train, &[], &ExecOptions::default()).unwrap();
        let mut fresh = hlo_frontc::compile(v2).unwrap();
        // CFG shape differs: the profile must not be applied.
        assert_eq!(apply_profile(&mut fresh, &db), 0);
        let main = fresh.entry.unwrap();
        assert!(fresh.func(main).profile.is_none());
    }
}
