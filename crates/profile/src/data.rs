//! The profile database.

use std::collections::HashMap;

/// Counts for one function from a training run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuncCounts {
    /// Times the function was entered.
    pub entry: u64,
    /// Times each block was entered (indexed by block id at collection
    /// time).
    pub blocks: Vec<u64>,
    /// Times each CFG edge `(from, to)` was followed.
    pub edges: HashMap<(u32, u32), u64>,
}

/// A profile database: counts per `(module name, function name)`.
///
/// Keys are names rather than ids so a database collected from one compile
/// can be applied to another, as with the paper's separate instrumenting
/// and optimizing compiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileDb {
    funcs: HashMap<(String, String), FuncCounts>,
}

/// Error from [`ProfileDb::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line of the malformed record.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ProfileParseError {}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Number of profiled functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True when no functions are profiled.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Inserts (or replaces) counts for a function.
    pub fn insert(&mut self, module: impl Into<String>, func: impl Into<String>, c: FuncCounts) {
        self.funcs.insert((module.into(), func.into()), c);
    }

    /// Looks up counts for `(module, func)`.
    pub fn get(&self, module: &str, func: &str) -> Option<&FuncCounts> {
        self.funcs.get(&(module.to_string(), func.to_string()))
    }

    /// Merges another database into this one, summing counts. Profiles
    /// from several training runs combine this way ("incorporating profile
    /// information from a variety of sources" is the paper's future work).
    pub fn merge(&mut self, other: &ProfileDb) {
        for (k, v) in &other.funcs {
            let e = self.funcs.entry(k.clone()).or_default();
            e.entry += v.entry;
            if e.blocks.len() < v.blocks.len() {
                e.blocks.resize(v.blocks.len(), 0);
            }
            for (i, c) in v.blocks.iter().enumerate() {
                e.blocks[i] += c;
            }
            for (edge, c) in &v.edges {
                *e.edges.entry(*edge).or_insert(0) += c;
            }
        }
    }

    /// Serializes to the line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut keys: Vec<_> = self.funcs.keys().collect();
        keys.sort();
        let mut out = String::new();
        for k in keys {
            let c = &self.funcs[k];
            out.push_str(&format!("func {} {} {}\n", k.0, k.1, c.entry));
            out.push_str("blocks");
            for b in &c.blocks {
                out.push_str(&format!(" {b}"));
            }
            out.push('\n');
            let mut edges: Vec<_> = c.edges.iter().collect();
            edges.sort();
            for ((f, t), n) in edges {
                out.push_str(&format!("edge {f} {t} {n}\n"));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses the text form produced by [`ProfileDb::to_text`].
    ///
    /// # Errors
    /// Returns a positioned error for unknown records or malformed counts.
    pub fn from_text(text: &str) -> Result<Self, ProfileParseError> {
        let mut db = ProfileDb::new();
        let mut cur: Option<((String, String), FuncCounts)> = None;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().expect("non-empty line");
            let err = |msg: &str| ProfileParseError {
                line: ln + 1,
                msg: msg.to_string(),
            };
            match tag {
                "func" => {
                    if cur.is_some() {
                        return Err(err("nested `func` record"));
                    }
                    let module = parts.next().ok_or_else(|| err("missing module"))?;
                    let func = parts.next().ok_or_else(|| err("missing function"))?;
                    let entry = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("missing entry count"))?;
                    cur = Some((
                        (module.to_string(), func.to_string()),
                        FuncCounts {
                            entry,
                            ..Default::default()
                        },
                    ));
                }
                "blocks" => {
                    let c = cur.as_mut().ok_or_else(|| err("`blocks` outside func"))?;
                    for p in parts {
                        c.1.blocks
                            .push(p.parse().map_err(|_| err("bad block count"))?);
                    }
                }
                "edge" => {
                    let c = cur.as_mut().ok_or_else(|| err("`edge` outside func"))?;
                    let f: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge"))?;
                    let t: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge"))?;
                    let n: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge count"))?;
                    c.1.edges.insert((f, t), n);
                }
                "end" => {
                    let (k, v) = cur.take().ok_or_else(|| err("`end` outside func"))?;
                    db.funcs.insert(k, v);
                }
                other => return Err(err(&format!("unknown record `{other}`"))),
            }
        }
        if cur.is_some() {
            return Err(ProfileParseError {
                line: text.lines().count(),
                msg: "unterminated func record".to_string(),
            });
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileDb {
        let mut db = ProfileDb::new();
        db.insert(
            "m",
            "f",
            FuncCounts {
                entry: 10,
                blocks: vec![10, 90, 10],
                edges: [((0, 1), 90), ((1, 2), 10)].into_iter().collect(),
            },
        );
        db
    }

    #[test]
    fn text_roundtrip() {
        let db = sample();
        let text = db.to_text();
        let back = ProfileDb::from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        let c = a.get("m", "f").unwrap();
        assert_eq!(c.entry, 20);
        assert_eq!(c.blocks, vec![20, 180, 20]);
        assert_eq!(c.edges[&(0, 1)], 180);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = ProfileDb::new();
        a.merge(&sample());
        assert_eq!(a, sample());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ProfileDb::from_text("bogus 1 2 3").is_err());
        assert!(ProfileDb::from_text("blocks 1 2").is_err());
        assert!(ProfileDb::from_text("func m f 1\nblocks 1").is_err()); // no end
    }

    #[test]
    fn lookup_miss_is_none() {
        let db = sample();
        assert!(db.get("m", "zzz").is_none());
        assert!(db.get("other", "f").is_none());
    }
}
