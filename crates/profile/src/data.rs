//! The profile database.

use std::collections::HashMap;

/// Counts for one function from a training run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuncCounts {
    /// Times the function was entered.
    pub entry: u64,
    /// Times each block was entered (indexed by block id at collection
    /// time).
    pub blocks: Vec<u64>,
    /// Times each CFG edge `(from, to)` was followed.
    pub edges: HashMap<(u32, u32), u64>,
}

/// A profile database: counts per `(module name, function name)`.
///
/// Keys are names rather than ids so a database collected from one compile
/// can be applied to another, as with the paper's separate instrumenting
/// and optimizing compiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileDb {
    funcs: HashMap<(String, String), FuncCounts>,
}

/// Error from [`ProfileDb::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line of the malformed record.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ProfileParseError {}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Number of profiled functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True when no functions are profiled.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Inserts (or replaces) counts for a function.
    pub fn insert(&mut self, module: impl Into<String>, func: impl Into<String>, c: FuncCounts) {
        self.funcs.insert((module.into(), func.into()), c);
    }

    /// Looks up counts for `(module, func)`.
    pub fn get(&self, module: &str, func: &str) -> Option<&FuncCounts> {
        self.funcs.get(&(module.to_string(), func.to_string()))
    }

    /// Merges another database into this one, summing counts. Profiles
    /// from several training runs combine this way ("incorporating profile
    /// information from a variety of sources" is the paper's future work).
    ///
    /// Sums **saturate** at `u64::MAX`: the daemon merges pushed deltas
    /// from long-lived (or hostile) clients forever, and an overflowing
    /// counter must clamp, not panic.
    pub fn merge(&mut self, other: &ProfileDb) {
        for (k, v) in &other.funcs {
            let e = self.funcs.entry(k.clone()).or_default();
            merge_counts(e, v);
        }
    }

    /// Visits every `((module, func), counts)` pair, in arbitrary order.
    /// (Use [`ProfileDb::to_text`] when a canonical order matters.)
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &FuncCounts)> {
        self.funcs.iter()
    }

    /// Serializes to the line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut keys: Vec<_> = self.funcs.keys().collect();
        keys.sort();
        let mut out = String::new();
        for k in keys {
            let c = &self.funcs[k];
            out.push_str(&format!("func {} {} {}\n", k.0, k.1, c.entry));
            out.push_str("blocks");
            for b in &c.blocks {
                out.push_str(&format!(" {b}"));
            }
            out.push('\n');
            let mut edges: Vec<_> = c.edges.iter().collect();
            edges.sort();
            for ((f, t), n) in edges {
                out.push_str(&format!("edge {f} {t} {n}\n"));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses the text form produced by [`ProfileDb::to_text`].
    ///
    /// Duplicates are **merged, never silently overwritten**: a second
    /// `func` record for the same `(module, function)` sums into the
    /// first (as [`ProfileDb::merge`] would), and a repeated `edge f t`
    /// line inside one record sums into the earlier line. Concatenating
    /// two profile texts is therefore equivalent to parsing each and
    /// merging the databases; the canonical one-record-per-function form
    /// emitted by `to_text` stays a serialization fixpoint.
    ///
    /// # Errors
    /// Returns a positioned error for unknown records or malformed counts.
    pub fn from_text(text: &str) -> Result<Self, ProfileParseError> {
        let mut db = ProfileDb::new();
        let mut cur: Option<((String, String), FuncCounts)> = None;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().expect("non-empty line");
            let err = |msg: &str| ProfileParseError {
                line: ln + 1,
                msg: msg.to_string(),
            };
            match tag {
                "func" => {
                    if cur.is_some() {
                        return Err(err("nested `func` record"));
                    }
                    let module = parts.next().ok_or_else(|| err("missing module"))?;
                    let func = parts.next().ok_or_else(|| err("missing function"))?;
                    let entry = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("missing entry count"))?;
                    cur = Some((
                        (module.to_string(), func.to_string()),
                        FuncCounts {
                            entry,
                            ..Default::default()
                        },
                    ));
                }
                "blocks" => {
                    let c = cur.as_mut().ok_or_else(|| err("`blocks` outside func"))?;
                    for p in parts {
                        c.1.blocks
                            .push(p.parse().map_err(|_| err("bad block count"))?);
                    }
                }
                "edge" => {
                    let c = cur.as_mut().ok_or_else(|| err("`edge` outside func"))?;
                    let f: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge"))?;
                    let t: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge"))?;
                    let n: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad edge count"))?;
                    let slot = c.1.edges.entry((f, t)).or_insert(0);
                    *slot = slot.saturating_add(n);
                }
                "end" => {
                    let (k, v) = cur.take().ok_or_else(|| err("`end` outside func"))?;
                    merge_counts(db.funcs.entry(k).or_default(), &v);
                }
                other => return Err(err(&format!("unknown record `{other}`"))),
            }
        }
        if cur.is_some() {
            return Err(ProfileParseError {
                line: text.lines().count(),
                msg: "unterminated func record".to_string(),
            });
        }
        Ok(db)
    }
}

/// Saturating element-wise sum of `src` into `dst` — the one merge rule
/// shared by [`ProfileDb::merge`] and duplicate records in
/// [`ProfileDb::from_text`].
fn merge_counts(dst: &mut FuncCounts, src: &FuncCounts) {
    dst.entry = dst.entry.saturating_add(src.entry);
    if dst.blocks.len() < src.blocks.len() {
        dst.blocks.resize(src.blocks.len(), 0);
    }
    for (i, c) in src.blocks.iter().enumerate() {
        dst.blocks[i] = dst.blocks[i].saturating_add(*c);
    }
    for (edge, c) in &src.edges {
        let slot = dst.edges.entry(*edge).or_insert(0);
        *slot = slot.saturating_add(*c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileDb {
        let mut db = ProfileDb::new();
        db.insert(
            "m",
            "f",
            FuncCounts {
                entry: 10,
                blocks: vec![10, 90, 10],
                edges: [((0, 1), 90), ((1, 2), 10)].into_iter().collect(),
            },
        );
        db
    }

    #[test]
    fn text_roundtrip() {
        let db = sample();
        let text = db.to_text();
        let back = ProfileDb::from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        let c = a.get("m", "f").unwrap();
        assert_eq!(c.entry, 20);
        assert_eq!(c.blocks, vec![20, 180, 20]);
        assert_eq!(c.edges[&(0, 1)], 180);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = ProfileDb::new();
        a.merge(&sample());
        assert_eq!(a, sample());
    }

    #[test]
    fn merge_saturates_instead_of_panicking() {
        let near = u64::MAX - 5;
        let mut a = ProfileDb::new();
        a.insert(
            "m",
            "f",
            FuncCounts {
                entry: near,
                blocks: vec![near],
                edges: [((0, 1), near)].into_iter().collect(),
            },
        );
        let b = a.clone();
        a.merge(&b);
        let c = a.get("m", "f").unwrap();
        assert_eq!(c.entry, u64::MAX);
        assert_eq!(c.blocks, vec![u64::MAX]);
        assert_eq!(c.edges[&(0, 1)], u64::MAX);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ProfileDb::from_text("bogus 1 2 3").is_err());
        assert!(ProfileDb::from_text("blocks 1 2").is_err());
        assert!(ProfileDb::from_text("func m f 1\nblocks 1").is_err()); // no end
    }

    #[test]
    fn lookup_miss_is_none() {
        let db = sample();
        assert!(db.get("m", "zzz").is_none());
        assert!(db.get("other", "f").is_none());
    }
}
