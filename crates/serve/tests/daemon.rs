//! End-to-end daemon tests: real sockets, hostile clients, graceful drain.

use hlo_serve::wire::{Frame, Kind, HEADER_LEN, MAGIC, VERSION};
use hlo_serve::{
    Client, OptimizeRequest, ProfilePushRequest, ProfileSpec, ServeConfig, ServeError, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SOURCES: &[(&str, &str)] = &[(
    "m",
    "static fn sq(x) { return x * x; }
     static fn cube(x) { return sq(x) * x; }
     fn main() { var s = 0;
         for (var i = 0; i < 20; i = i + 1) { s = s + cube(i); }
         return s; }",
)];

fn spawn_default() -> Server {
    Server::spawn("127.0.0.1:0", ServeConfig::default()).unwrap()
}

fn minc_request() -> OptimizeRequest {
    OptimizeRequest::from_minc(
        SOURCES
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect(),
    )
}

#[test]
fn optimize_roundtrip_matches_in_process_and_warms_the_cache() {
    let server = spawn_default();
    let addr = server.local_addr();

    // The ground truth: optimize the same program in-process.
    let mut program = hlo_frontc::compile(SOURCES).unwrap();
    let opts = hlo::HloOptions::default();
    let report = hlo::optimize(&mut program, None, &opts);
    let expect_ir = hlo_ir::program_to_text(&program);

    let mut client = Client::connect(addr).unwrap();
    let cold = client.optimize(&minc_request()).unwrap();
    assert!(!cold.outcome.hit, "first request must be a miss");
    assert_eq!(
        cold.ir_text, expect_ir,
        "daemon output differs from in-process"
    );
    assert_eq!(cold.report.inlines, report.inlines);
    assert_eq!(cold.report.final_cost, report.final_cost);

    let warm = client.optimize(&minc_request()).unwrap();
    assert!(warm.outcome.hit, "identical request must be a pure lookup");
    assert_eq!(
        warm.ir_text, cold.ir_text,
        "warm response must be byte-identical"
    );
    assert_eq!(
        warm.outcome.func_misses, 0,
        "no cone key may be new on a warm hit"
    );
    assert!(warm.outcome.func_hits > 0);

    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn callee_edit_invalidates_exactly_the_dependent_cones() {
    // Two independent call chains under main. Warm the cache, then edit
    // only one leaf: the per-function cone accounting must report misses
    // for exactly that leaf's dependence cone (leaf_a, mid_a, main) and
    // hits for the untouched chain (leaf_b, mid_b).
    let v1 = "global acc;
              static fn leaf_a(x) { return x + 1; }
              static fn mid_a(x) { return leaf_a(x) * 2; }
              static fn leaf_b(x) { return x - 1; }
              static fn mid_b(x) { return leaf_b(x) * 3; }
              fn main() { return mid_a(4) + mid_b(5); }";
    let v2 = "global acc;
              static fn leaf_a(x) { acc = acc + x; return x + 1; }
              static fn mid_a(x) { return leaf_a(x) * 2; }
              static fn leaf_b(x) { return x - 1; }
              static fn mid_b(x) { return leaf_b(x) * 3; }
              fn main() { return mid_a(4) + mid_b(5); }";
    let req_of = |src: &str| OptimizeRequest::from_minc(vec![("m".to_string(), src.to_string())]);

    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let cold = client.optimize(&req_of(v1)).unwrap();
    assert!(!cold.outcome.hit);
    let warm = client.optimize(&req_of(v1)).unwrap();
    assert!(warm.outcome.hit);
    assert_eq!(warm.outcome.func_misses, 0);
    assert_eq!(warm.outcome.func_hits, 5);

    let edited = client.optimize(&req_of(v2)).unwrap();
    assert!(!edited.outcome.hit, "edited program must re-optimize");
    assert_eq!(
        edited.outcome.func_misses, 3,
        "exactly leaf_a, mid_a and main are in the edited cone"
    );
    assert_eq!(
        edited.outcome.func_hits, 2,
        "leaf_b and mid_b keys must survive the edit"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn fuzz_generated_programs_round_trip_byte_identical() {
    // The cache key must be a pure function of (sources, options): for
    // arbitrary generated programs the daemon's cold answer equals a
    // fresh in-process optimize byte for byte, and the warm answer is a
    // pure lookup returning the same bytes.
    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    for seed in 0..8u64 {
        let sources = hlo_fuzz::gen::generate_sources(seed, &hlo_fuzz::GenConfig::default());
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        let mut program = hlo_frontc::compile(&refs).unwrap();
        hlo::optimize(&mut program, None, &hlo::HloOptions::default());
        let expect_ir = hlo_ir::program_to_text(&program);

        let req = OptimizeRequest::from_minc(sources.clone());
        let cold = client.optimize(&req).unwrap();
        assert!(!cold.outcome.hit, "seed {seed}: first sight must miss");
        assert_eq!(
            cold.ir_text, expect_ir,
            "seed {seed}: daemon differs from in-process optimize"
        );

        let warm = client.optimize(&req).unwrap();
        assert!(warm.outcome.hit, "seed {seed}: repeat must be a cache hit");
        assert_eq!(
            warm.ir_text, cold.ir_text,
            "seed {seed}: warm response not byte-identical"
        );
        assert_eq!(warm.outcome.func_misses, 0, "seed {seed}: warm cone miss");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 16);
    assert_eq!(stats.hits, 8);
    assert_eq!(stats.misses, 8);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn train_arg_runs_the_optimized_program_on_the_bytecode_tier() {
    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // No training run requested: no `train` line in the response.
    let plain = client.optimize(&minc_request()).unwrap();
    assert_eq!(plain.train, None);

    // Ground truth: optimize in-process and run on the bytecode tier.
    let mut program = hlo_frontc::compile(SOURCES).unwrap();
    hlo::optimize(&mut program, None, &hlo::HloOptions::default());
    let opts = hlo_vm::ExecOptions {
        tier: hlo_vm::Tier::Bytecode,
        ..Default::default()
    };
    let out = hlo_vm::run_program(&program, &[7], &opts).unwrap();

    let mut req = minc_request();
    req.train_arg = Some(7);
    let resp = client.optimize(&req).unwrap();
    assert!(resp.outcome.hit, "train run must not perturb the cache key");
    assert_eq!(
        resp.train.as_deref(),
        Some(
            format!(
                "ret {} retired {} output {} checksum {:#x}",
                out.ret,
                out.retired,
                out.output.len(),
                out.checksum
            )
            .as_str()
        )
    );

    // The run fed the daemon's per-tier VM metrics.
    let metrics = client.metrics().unwrap();
    assert_eq!(
        series(&metrics, "vm_runs_total{tier=\"bytecode\"}"),
        Some(1)
    );
    assert_eq!(
        series(&metrics, "vm_instructions_total{tier=\"bytecode\"}"),
        Some(out.retired as i64)
    );

    client.shutdown().unwrap();
    server.wait();
}

/// Pulls one series value out of a Prometheus exposition.
fn series(text: &str, name: &str) -> Option<i64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
}

#[test]
fn metrics_exposition_parses_and_counters_move_cold_to_warm() {
    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let cold = client.optimize(&minc_request()).unwrap();
    assert!(!cold.outcome.hit);
    let after_cold = client.metrics().unwrap();

    // Structural check: every line is a `# TYPE` comment or `series value`,
    // and each base name is typed before its first sample.
    let mut typed = std::collections::HashSet::new();
    for line in after_cold.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut w = rest.split_whitespace();
            typed.insert(w.next().unwrap().to_string());
            assert!(
                matches!(w.next(), Some("counter" | "gauge" | "histogram")),
                "bad TYPE line: {line}"
            );
            continue;
        }
        let mut w = line.split_whitespace();
        let name = w.next().expect("non-empty line");
        w.next()
            .unwrap_or_else(|| panic!("series without value: {line}"))
            .parse::<i64>()
            .unwrap_or_else(|_| panic!("non-numeric sample: {line}"));
        let base = name.split('{').next().unwrap();
        let base = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .unwrap_or(base);
        assert!(typed.contains(base), "untyped series `{name}`");
    }

    assert_eq!(series(&after_cold, "requests_total"), Some(1));
    assert_eq!(series(&after_cold, "cache_misses_total"), Some(1));
    assert_eq!(series(&after_cold, "cache_entries"), Some(1));
    assert!(series(&after_cold, "cache_resident_bytes").unwrap() > 0);
    assert_eq!(series(&after_cold, "request_optimize_us_count"), Some(1));
    assert_eq!(series(&after_cold, "request_queue_wait_us_count"), Some(1));
    assert_eq!(series(&after_cold, "request_cache_probe_us_count"), Some(1));

    let warm = client.optimize(&minc_request()).unwrap();
    assert!(warm.outcome.hit);
    let after_warm = client.metrics().unwrap();
    assert_eq!(series(&after_warm, "requests_total"), Some(2));
    assert_eq!(series(&after_warm, "cache_hits_total"), Some(1));
    assert_eq!(series(&after_warm, "cache_misses_total"), Some(1));
    // A hit never runs the optimizer, so that histogram must not move.
    assert_eq!(series(&after_warm, "request_optimize_us_count"), Some(1));
    assert_eq!(series(&after_warm, "request_cache_probe_us_count"), Some(2));

    // The same numbers surface through `stats` as occupancy + latencies.
    let stats = client.stats().unwrap();
    assert!(stats.cache_bytes > 0);
    let queue_wait = stats
        .latencies
        .iter()
        .find(|(p, _, _)| p == "queue_wait")
        .expect("queue_wait latency line");
    assert_eq!(queue_wait.1, 2);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn malformed_and_oversized_frames_get_an_error_not_a_crash() {
    let server = spawn_default();
    let addr = server.local_addr();

    // Garbage magic: daemon answers with an error frame and hangs up.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let reply = Frame::read_from(&mut raw, 1 << 20).unwrap();
    assert_eq!(reply.kind, Kind::Error);
    // The daemon hangs up after the error (FIN, or RST if our garbage had
    // unread bytes left); either way no further frame arrives.
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty());

    // Announcing an absurd payload length is rejected before allocation.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.push(Kind::Optimize as u8);
    header.push(0);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(header.len(), HEADER_LEN);
    raw.write_all(&header).unwrap();
    let reply = Frame::read_from(&mut raw, 1 << 20).unwrap();
    assert_eq!(reply.kind, Kind::Error);

    // A structurally valid optimize frame with an undecodable payload gets
    // a per-request error and the connection stays usable.
    let mut client = Client::connect(addr).unwrap();
    let mut bogus = Frame::bare(Kind::Optimize);
    bogus.payload = b"not sections at all".to_vec();
    // Reach into the stream via a raw frame write on a fresh connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    bogus.write_to(&mut raw).unwrap();
    let reply = Frame::read_from(&mut raw, 1 << 20).unwrap();
    assert_eq!(reply.kind, Kind::Error);

    // The daemon survived all three abuses.
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn client_disconnect_mid_request_does_not_kill_the_daemon() {
    let server = spawn_default();
    let addr = server.local_addr();

    // Half a header, then hang up.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&MAGIC[..2]).unwrap();
    drop(raw);

    // A full optimize request, then hang up without reading the reply:
    // the worker still runs the job; the write to the dead socket is
    // swallowed.
    let mut raw = TcpStream::connect(addr).unwrap();
    Frame::new(Kind::Optimize, &minc_request().to_sections())
        .write_to(&mut raw)
        .unwrap();
    drop(raw);

    // Give the abandoned job time to finish, then prove the daemon is
    // healthy and that the abandoned request warmed the cache.
    let mut client = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().unwrap();
        if stats.misses >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned job never ran"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let resp = client.optimize(&minc_request()).unwrap();
    assert!(
        resp.outcome.hit,
        "abandoned request should have filled the cache"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn concurrent_clients_all_get_correct_byte_identical_answers() {
    let server = spawn_default();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.optimize(&minc_request()).unwrap().ir_text
            })
        })
        .collect();
    let texts: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for t in &texts[1..] {
        assert_eq!(*t, texts[0]);
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.hits + stats.misses, 8);
    assert!(stats.misses >= 1);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    // One worker and a deep queue: stack up several requests, shut down
    // while they are pending, and require every response to arrive.
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.optimize(&minc_request())
            })
        })
        .collect();
    // Let the requests reach the queue before pulling the plug.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    server.wait();

    let mut answered = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(resp) => {
                assert!(!resp.ir_text.is_empty());
                answered += 1;
            }
            // A request that raced the drain flag gets a clean error; one
            // that raced the listener teardown gets a socket error.
            Err(ServeError::Remote(msg)) => assert!(msg.contains("draining"), "{msg}"),
            Err(ServeError::Io(_)) => {}
            Err(e) => panic!("unexpected failure during drain: {e}"),
        }
    }
    assert!(
        answered >= 1,
        "drain must finish work that was already queued"
    );

    // The listener is gone.
    assert!(
        Client::connect(addr).is_err() || {
            // Accept may race OS-side; a connected socket must at least be
            // dead on arrival.
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn busy_backpressure_when_the_queue_is_full() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Flood with more concurrent requests than worker+queue can hold;
    // every client must get either a result or a clean Busy.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.optimize(&minc_request())
            })
        })
        .collect();
    let mut ok = 0;
    let mut busy = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(_) => ok += 1,
            Err(ServeError::Busy) => busy += 1,
            Err(e) => panic!("unexpected failure under load: {e}"),
        }
    }
    assert!(ok >= 1);
    assert_eq!(ok + busy, 6);

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.busy, busy);
    client.shutdown().unwrap();
    server.wait();
}

/// The key the daemon computes for [`SOURCES`] at dequeue time; clients
/// derive the same key from a local compile.
fn sources_key() -> String {
    hlo_pgo::program_key(&hlo_frontc::compile(SOURCES).unwrap())
}

/// A hand-planted profile delta for [`SOURCES`] with a distinctive shape
/// (`sq` hot, `cube` warm) — hand-written so tests can plant *drift*, not
/// just presence.
const DELTA: &str = "func m cube 90\nblocks 90\nend\nfunc m sq 900\nblocks 900\nend\n";

#[test]
fn continuous_pgo_drift_triggers_reoptimization_and_noop_pushes_do_not() {
    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let mut server_req = minc_request();
    server_req.profile = ProfileSpec::Server;

    // Cold, no pushes: an empty aggregate must behave exactly like a
    // profile-free build.
    let mut plain = hlo_frontc::compile(SOURCES).unwrap();
    hlo::optimize(&mut plain, None, &hlo::HloOptions::default());
    let plain_ir = hlo_ir::program_to_text(&plain);

    let cold = client.optimize(&server_req).unwrap();
    assert!(!cold.outcome.hit);
    assert_eq!(cold.pgo, None, "no cached entry, so no drift verdict");
    assert_eq!(
        cold.ir_text, plain_ir,
        "empty aggregate must act as no profile"
    );

    // Warm, still no pushes: a plain hit with zero drift.
    let warm = client.optimize(&server_req).unwrap();
    assert!(warm.outcome.hit && !warm.outcome.stale);
    assert_eq!(warm.outcome.drift_millis, 0);
    assert!(
        warm.pgo
            .as_deref()
            .unwrap()
            .starts_with("pgo-profile-stable"),
        "{:?}",
        warm.pgo
    );

    // Push a profile: empty -> populated is total (cold-start) drift, so
    // the next server-mode build must re-optimize with the aggregate.
    let key = sources_key();
    let ack = client
        .profile_push(&ProfilePushRequest {
            program: key.clone(),
            delta: DELTA.to_string(),
            advance: 0,
        })
        .unwrap();
    assert_eq!((ack.pushes, ack.functions), (1, 2));

    let mut with_profile = hlo_frontc::compile(SOURCES).unwrap();
    let db = hlo_profile::ProfileDb::from_text(DELTA).unwrap();
    hlo::optimize(&mut with_profile, Some(&db), &hlo::HloOptions::default());
    let pgo_ir = hlo_ir::program_to_text(&with_profile);

    let stale = client.optimize(&server_req).unwrap();
    assert!(stale.outcome.stale && !stale.outcome.hit);
    assert_eq!(stale.outcome.drift_millis, 1000);
    assert!(
        stale.pgo.as_deref().unwrap().starts_with("pgo-cold-start"),
        "{:?}",
        stale.pgo
    );
    assert_eq!(
        stale.ir_text, pgo_ir,
        "stale rebuild must use the merged aggregate"
    );

    // Pushing the identical delta again doubles every count but moves no
    // shares — scaling-invariant drift stays 0 and the entry is served.
    client
        .profile_push(&ProfilePushRequest {
            program: key.clone(),
            delta: DELTA.to_string(),
            advance: 0,
        })
        .unwrap();
    let warm2 = client.optimize(&server_req).unwrap();
    assert!(warm2.outcome.hit && !warm2.outcome.stale);
    assert_eq!(warm2.outcome.drift_millis, 0);
    assert_eq!(warm2.ir_text, stale.ir_text);

    // Counters, stats and metrics all tell the same story.
    let st = client.stats().unwrap();
    assert_eq!(st.pgo_pushes, 2);
    assert_eq!(st.reoptimizations, 1);
    assert_eq!(st.stale_hits, 1);
    assert_eq!(st.hits, 2, "warm + warm2 (the stale hit was reclassified)");
    assert_eq!(st.misses, 1, "only the cold request was a true miss");
    assert_eq!(st.pgo_programs, 1);
    assert!(st.pgo_bytes > 0);

    let metrics = client.metrics().unwrap();
    assert_eq!(series(&metrics, "pgo_push_total"), Some(2));
    assert_eq!(series(&metrics, "pgo_reoptimize_total"), Some(1));
    assert_eq!(series(&metrics, "pgo_drift_millis_count"), Some(3));
    assert_eq!(series(&metrics, "pgo_programs"), Some(1));
    assert_eq!(series(&metrics, "cache_misses_total"), Some(2));

    // profile-stats names the program and returns the merged aggregate:
    // two identical pushes, same generation, so every count doubled.
    let reply = client.profile_stats(Some(&key)).unwrap();
    assert!(reply.text.contains("programs 1"), "{}", reply.text);
    assert!(
        reply.text.contains(&format!("program {key} 0 2 2")),
        "{}",
        reply.text
    );
    let merged = reply.profile.unwrap();
    assert!(merged.contains("func m sq 1800"), "{merged}");
    assert!(merged.contains("func m cube 180"), "{merged}");

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn profile_push_refusals_leave_the_store_unchanged() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            max_payload: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Register SOURCES and plant one good push as the baseline state.
    client.optimize(&minc_request()).unwrap();
    let key = sources_key();
    client
        .profile_push(&ProfilePushRequest {
            program: key.clone(),
            delta: DELTA.to_string(),
            advance: 0,
        })
        .unwrap();
    let baseline = client.profile_stats(None).unwrap();

    let push = |client: &mut Client, program: &str, delta: &str| {
        client.profile_push(&ProfilePushRequest {
            program: program.to_string(),
            delta: delta.to_string(),
            advance: 0,
        })
    };

    // Malformed delta.
    match push(&mut client, &key, "func truncated\n") {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("bad profile delta"), "{msg}"),
        other => panic!("malformed delta must be refused, got {other:?}"),
    }
    // Well-formed key the daemon has never optimized.
    match push(&mut client, "00000000deadbeef", DELTA) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("unknown program key"), "{msg}"),
        other => panic!("unknown key must be refused, got {other:?}"),
    }
    // Structurally invalid key.
    match push(&mut client, "not-a-key", DELTA) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("bad program key"), "{msg}"),
        other => panic!("bad key must be refused, got {other:?}"),
    }
    // A delta bigger than the daemon's frame bound is rejected before
    // allocation; the connection is dead afterwards, so reconnect.
    let huge = "func m sq 1\nblocks 1\nend\n".repeat(400);
    assert!(huge.len() > 4096);
    assert!(push(&mut client, &key, &huge).is_err());
    let mut client = Client::connect(addr).unwrap();

    // Hang up mid-push: a complete header announcing more payload than
    // ever arrives.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(&MAGIC);
    partial.extend_from_slice(&VERSION.to_le_bytes());
    partial.push(Kind::ProfilePush as u8);
    partial.push(0);
    partial.extend_from_slice(&1024u32.to_le_bytes());
    assert_eq!(partial.len(), HEADER_LEN);
    partial.extend_from_slice(b"program 16\n0123456789abcdef\n");
    raw.write_all(&partial).unwrap();
    drop(raw);

    // After every refusal the store reads back byte-identical.
    let after = client.profile_stats(None).unwrap();
    assert_eq!(after.text, baseline.text);
    assert_eq!(
        client.profile_stats(Some(&key)).unwrap().profile,
        Some(hlo_profile::ProfileDb::from_text(DELTA).unwrap().to_text()),
        "the one good push must be exactly what is resident"
    );
    let st = client.stats().unwrap();
    assert_eq!(st.pgo_pushes, 1);
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn queued_deadline_expiry_is_reported() {
    let server = spawn_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let mut req = minc_request();
    req.deadline_ms = Some(0); // expires the moment it is queued
    std::thread::sleep(Duration::from_millis(5));
    match client.optimize(&req) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("deadline"), "{msg}"),
        other => panic!("expected a deadline error, got {other:?}"),
    }
    client.shutdown().unwrap();
    server.wait();
}
