//! End-to-end daemon observability: request-scoped tracing, the
//! structured event log, the flight recorder, latency quantiles, and the
//! determinism gate proving traced content is identical across worker
//! counts.

use hlo_serve::{
    mint_trace_id, Client, OptimizeRequest, ServeConfig, ServeError, Server, TraceFetchReply,
};
use std::path::PathBuf;

const SOURCES: &[(&str, &str)] = &[(
    "m",
    "static fn sq(x) { return x * x; }
     static fn cube(x) { return sq(x) * x; }
     fn main() { var s = 0;
         for (var i = 0; i < 20; i = i + 1) { s = s + cube(i); }
         return s; }",
)];

fn minc_request() -> OptimizeRequest {
    OptimizeRequest::from_minc(
        SOURCES
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect(),
    )
}

/// A scratch file path that cleans up after itself.
struct TempLog(PathBuf);

impl TempLog {
    fn new(tag: &str) -> TempLog {
        TempLog(std::env::temp_dir().join(format!(
            "hlo-obs-{}-{tag}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        )))
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn traced_request_round_trips_spans_flight_and_chrome() {
    let log = TempLog::new("traced");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            // A zero threshold plants slowness: every request must be
            // flagged slow and auto-dump the flight recorder.
            slow_ms: Some(0),
            event_log_path: Some(log.0.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let id = mint_trace_id();
    let mut req = minc_request();
    req.trace_id = Some(id.clone());
    let resp = client.optimize(&req).unwrap();
    assert_eq!(
        resp.trace_id.as_deref(),
        Some(id.as_str()),
        "daemon must echo the client-minted trace id"
    );
    assert!(!resp.outcome.hit);

    // The span tree names the request and the per-phase leaves, and the
    // phases sum exactly to the reported wall time.
    let trace = client.trace_fetch(&id).unwrap();
    assert_eq!(trace.trace_id, id);
    assert!(
        trace.spans.starts_with(&format!("request:{id}\n")),
        "{}",
        trace.spans
    );
    for phase in ["queue_wait", "cache_probe", "optimize", "reply"] {
        assert!(
            trace.spans.contains(phase),
            "missing {phase}:\n{}",
            trace.spans
        );
        assert!(
            trace.phases.iter().any(|(p, _)| p == phase),
            "no {phase} timing in {:?}",
            trace.phases
        );
    }
    let sum: u64 = trace.phases.iter().map(|(_, us)| us).sum();
    assert_eq!(sum, trace.wall_us, "phases must sum to the wall time");
    assert_eq!(trace.cache, resp.outcome.to_text());

    // The Chrome export passes the same schema gate `tier2 trace-schema`
    // applies, and is pure ASCII (hostile names are escaped).
    let events = hlo::validate_chrome_trace(&trace.chrome).unwrap();
    assert!(events > 4, "expected a real span tree, got {events} events");
    assert!(trace.chrome.is_ascii());

    // The flight recorder holds the request, keyed by the trace id.
    let (dump, admitted) = client.flight_dump().unwrap();
    assert_eq!(admitted, 1);
    let records = hlo::parse_flight_dump(&dump).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].trace_id, id);
    assert_eq!(records[0].kind, "optimize");
    assert_eq!(records[0].outcome, "miss");

    // Stats and quantiles reflect the one served request.
    let st = client.stats().unwrap();
    assert_eq!(st.requests, 1);
    assert_eq!(st.slow_requests, 1, "slow-ms 0 flags every request");
    assert_eq!(st.traces_stored, 1);
    assert_eq!(st.flight_records, 1);
    assert!(st.events_emitted > 0);
    assert_eq!(st.quantiles.len(), 4);
    let optimize_q = st.quantiles.iter().find(|(p, ..)| p == "optimize").unwrap();
    let optimize_lat = st.latencies.iter().find(|(p, ..)| p == "optimize").unwrap();
    // One observation: every quantile is that observation, within the
    // sketch's documented overshoot bound.
    let truth = optimize_lat.2;
    for q in [optimize_q.1, optimize_q.2, optimize_q.3] {
        assert!(
            q >= truth,
            "quantile {q} undershoots the observation {truth}"
        );
        assert!(
            q <= truth + truth * hlo::SKETCH_ERROR_PERCENT / 100 + 1,
            "quantile {q} overshoots {truth} past the documented bound"
        );
    }

    // The quantile gauges surface in the metrics exposition.
    let metrics = client.metrics().unwrap();
    for phase in ["queue_wait", "cache_probe", "optimize", "reply"] {
        for p in ["p50", "p95", "p99"] {
            assert!(
                metrics.contains(&format!("request_{phase}_{p}_us")),
                "missing request_{phase}_{p}_us in exposition"
            );
        }
    }

    // An id the daemon never saw is a clean error.
    match client.trace_fetch("00000000000000ee") {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("no stored trace"), "{msg}"),
        other => panic!("expected a remote error, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.wait();

    // The event log saw the whole story: request lifecycle, the planted
    // slowness, the auto-dumped flight record, and the drain.
    let text = std::fs::read_to_string(&log.0).unwrap();
    for needle in [
        "info request.start",
        "request.finish",
        "warn request.slow",
        "warn flight.dump",
        "info daemon.drain",
        &format!("id={id}")[..],
    ] {
        assert!(text.contains(needle), "event log lacks `{needle}`:\n{text}");
    }
    // Every line round-trips through the strict parser.
    for line in text.lines() {
        hlo::Event::parse(line).unwrap_or_else(|e| panic!("bad event line `{line}`: {e}"));
    }
}

#[test]
fn refusals_and_evictions_reach_the_event_log_and_flight_recorder() {
    let log = TempLog::new("refuse");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            cache_cap: 1,
            event_log_path: Some(log.0.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Two distinct programs through a one-entry cache: the second insert
    // evicts the first.
    client.optimize(&minc_request()).unwrap();
    let other = OptimizeRequest::from_minc(vec![(
        "m".to_string(),
        "fn main() { return 41; }".to_string(),
    )]);
    client.optimize(&other).unwrap();

    let (dump, admitted) = client.flight_dump().unwrap();
    assert_eq!(admitted, 2);
    assert_eq!(hlo::parse_flight_dump(&dump).unwrap().len(), 2);

    client.shutdown().unwrap();
    server.wait();
    let text = std::fs::read_to_string(&log.0).unwrap();
    assert!(text.contains("cache.evict"), "no eviction event:\n{text}");
}

/// Strips every measured number from a span tree + decision report pair:
/// span names and decisions carry no timings by construction, so the
/// content is compared verbatim. (The Chrome export carries real `ts`
/// values and is deliberately excluded.)
fn traced_content(t: &TraceFetchReply) -> (String, String, String, Vec<String>) {
    (
        t.spans.clone(),
        t.decisions.clone(),
        t.cache.clone(),
        t.phases.iter().map(|(p, _)| p.clone()).collect(),
    )
}

#[test]
fn traced_content_is_identical_across_worker_counts() {
    // The determinism gate, extended to observability: the same requests
    // through a 1-worker and a 4-worker daemon must produce byte-identical
    // span trees, decision reports, cache outcomes, and (after timestamp
    // normalization) event logs. Two daemons because `--jobs` is outside
    // the cache fingerprint — one daemon would answer the second run from
    // its cache.
    let run = |jobs: usize, log: &TempLog| {
        let server = Server::spawn(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1, // one worker: a deterministic event order
                event_log_path: Some(log.0.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut traces = Vec::new();
        for (i, id) in ["00000000000000a1", "00000000000000a2"].iter().enumerate() {
            let mut req = minc_request();
            req.options.jobs = jobs;
            req.trace_id = Some(id.to_string());
            // Second request is a warm hit; both phases of the cache are
            // exercised under tracing.
            let resp = client.optimize(&req).unwrap();
            assert_eq!(resp.outcome.hit, i == 1);
            traces.push(client.trace_fetch(id).unwrap());
        }
        client.shutdown().unwrap();
        server.wait();
        let text = std::fs::read_to_string(&log.0).unwrap();
        (traces, hlo::normalize_log(&text))
    };

    let log1 = TempLog::new("jobs1");
    let log4 = TempLog::new("jobs4");
    let (traces1, events1) = run(1, &log1);
    let (traces4, events4) = run(4, &log4);

    for (a, b) in traces1.iter().zip(&traces4) {
        assert_eq!(
            traced_content(a),
            traced_content(b),
            "traced content differs between --jobs 1 and --jobs 4"
        );
    }
    assert_eq!(
        events1, events4,
        "normalized event logs differ between --jobs 1 and --jobs 4"
    );
}

#[test]
fn daemon_metric_name_set_is_pinned() {
    // Golden test: the set of metric base names a standard request
    // sequence produces. A new daemon metric (or a renamed one) must
    // update this list — dashboards key on these names.
    let server = Server::spawn("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut req = minc_request();
    req.trace_id = Some(mint_trace_id());
    client.optimize(&req).unwrap();
    client.optimize(&minc_request()).unwrap(); // warm hit
    let exposition = client.metrics().unwrap();
    client.shutdown().unwrap();
    server.wait();

    let mut names: Vec<&str> = exposition
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .collect();
    names.sort_unstable();
    assert_eq!(
        names,
        [
            "cache_entries",
            "cache_evictions",
            "cache_hits_total",
            "cache_misses_total",
            "cache_resident_bytes",
            "incr_partition_hits_total",
            "incr_partition_rebuilds_total",
            "partition_entries",
            "pgo_programs",
            "pgo_resident_bytes",
            "request_cache_probe_p50_us",
            "request_cache_probe_p95_us",
            "request_cache_probe_p99_us",
            "request_cache_probe_us",
            "request_optimize_p50_us",
            "request_optimize_p95_us",
            "request_optimize_p99_us",
            "request_optimize_us",
            "request_queue_wait_p50_us",
            "request_queue_wait_p95_us",
            "request_queue_wait_p99_us",
            "request_queue_wait_us",
            "request_reply_p50_us",
            "request_reply_p95_us",
            "request_reply_p99_us",
            "request_reply_us",
            "requests_total",
        ],
        "daemon metric-name set changed — update this golden list \
         deliberately, dashboards depend on it"
    );
}
