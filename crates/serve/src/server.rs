//! The daemon: accept loop, session scheduler, worker pool, drain.
//!
//! One connection thread per client reads frames and answers `ping`,
//! `stats` and `shutdown` inline; `optimize` requests go through the
//! **session scheduler** — a bounded queue in front of a fixed worker
//! pool. A full queue answers [`wire::Kind::Busy`] immediately instead of
//! buffering without bound; each request's deadline is checked when a
//! worker picks it up, so a queue stuffed by a slow burst sheds expired
//! work instead of optimizing it late. Workers run the ordinary
//! [`hlo::optimize`] pipeline, whose per-function stages fan out over the
//! `hlo::par` pool at the request's `jobs` setting — or, on a warm miss
//! with incremental recompilation enabled, [`hlo::optimize_partial`] with
//! a plan that splices cached partition bodies (see [`crate::incremental`]).
//!
//! Shutdown is graceful: draining stops the accept loop and makes new
//! optimize requests fail fast, but everything already queued or running
//! is finished and its response written before [`Server::wait`] returns.

use crate::cache::{request_key, CacheOutcome, CachedResult, RequestKey, ResultCache};
use crate::incremental;
use crate::wire::{Frame, FrameError, Kind, Sections, DEFAULT_MAX_PAYLOAD};
use crate::{
    OptimizeRequest, ProfilePushOutcome, ProfilePushRequest, ProfileSpec, SourceKind,
    TraceFetchReply,
};
use hlo::par::effective_jobs;
use hlo::{
    chrome_trace_json, CallGraphCache, Event, EventLevel, EventLog, FlightRecord, FlightRecorder,
    HloOptions, MetricsRegistry, PartitionAction, QuantileSketch, TraceLevel, Tracer,
    DRIFT_BUCKETS_MILLIS, LATENCY_BUCKETS_US,
};
use hlo_ir::Program;
use hlo_pgo::ProfileStore;
use hlo_profile::ProfileDb;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing optimize requests (`0` = all hardware
    /// parallelism).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `Busy`.
    pub queue_cap: usize,
    /// Program results kept in the cache (LRU past this).
    pub cache_cap: usize,
    /// Largest accepted frame payload, bytes.
    pub max_payload: u32,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Drift score (thousandths) past which a cached `profile: server`
    /// result is re-optimized instead of served.
    pub pgo_threshold_millis: u64,
    /// Hot-set size for the drift metric's churn component.
    pub pgo_hot_set: usize,
    /// Program aggregates kept in the profile store (LRU past this;
    /// `0` = unbounded).
    pub pgo_cap: usize,
    /// When set, the profile store is loaded from this path at startup
    /// and persisted (write-temp-then-rename) after every mutation, so
    /// aggregates survive restarts.
    pub pgo_store_path: Option<PathBuf>,
    /// Function-grain incremental recompilation: on a program-cache miss,
    /// splice cached partition bodies and re-optimize only invalidated
    /// partitions. `false` makes every miss a full rebuild
    /// (`hlod --no-incremental`).
    pub incremental: bool,
    /// Structured event log file (`hlod --log PATH`): crash-safe append,
    /// one event per line. `None` = no file sink.
    pub event_log_path: Option<PathBuf>,
    /// Also write structured events to stderr (`hlod --log-stderr`).
    pub log_stderr: bool,
    /// Slow-request threshold (`hlod --slow-ms N`): a request whose wall
    /// time exceeds this is counted, warned about in the event log, and
    /// triggers a flight-recorder auto-dump. `None` disables the check.
    pub slow_ms: Option<u64>,
    /// Flight-recorder capacity: the last N request summaries kept
    /// (always on; `hloc remote flight` dumps them).
    pub flight_cap: usize,
    /// Traced-request artifacts kept for `trace-fetch` (LRU past this).
    pub trace_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            cache_cap: 128,
            max_payload: DEFAULT_MAX_PAYLOAD,
            default_deadline_ms: None,
            pgo_threshold_millis: hlo_pgo::DEFAULT_THRESHOLD_MILLIS,
            pgo_hot_set: hlo_pgo::DEFAULT_HOT_SET,
            pgo_cap: hlo_pgo::store::DEFAULT_CAP,
            pgo_store_path: None,
            incremental: true,
            event_log_path: None,
            log_stderr: false,
            slow_ms: None,
            flight_cap: 256,
            trace_cap: 64,
        }
    }
}

/// One queued optimize request.
struct Job {
    req: OptimizeRequest,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// Request payload size on the wire, for flight records.
    req_bytes: u64,
    reply: mpsc::Sender<Frame>,
}

/// Names of the per-request phase latency histograms, in request order:
/// time spent queued, probing the cache, optimizing (misses only), and
/// writing the reply. Each is a `request_<phase>_us` histogram over
/// [`LATENCY_BUCKETS_US`].
pub const REQUEST_PHASES: &[&str] = &["queue_wait", "cache_probe", "optimize", "reply"];

fn phase_metric(phase: &str) -> String {
    format!("request_{phase}_us")
}

/// Records one measured phase duration into both the fixed-bucket
/// histogram (`metrics` exposition) and the streaming quantile sketch
/// (`stats` p50/p95/p99).
fn observe_phase(shared: &Shared, phase: &str, us: u64) {
    shared
        .metrics
        .observe(&phase_metric(phase), LATENCY_BUCKETS_US, us);
    if let Some(i) = REQUEST_PHASES.iter().position(|p| *p == phase) {
        shared.sketches[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(us);
    }
}

/// Microseconds since daemon start — the `ts` field on emitted events
/// (stripped by normalization, so event *content* stays comparable
/// across runs).
fn event_ts(shared: &Shared) -> u64 {
    shared.started.elapsed().as_micros() as u64
}

/// The `id` field spelling for an optional trace id.
fn id_field(trace_id: &str) -> &str {
    if trace_id.is_empty() {
        "-"
    } else {
        trace_id
    }
}

/// Dumps the flight recorder into the event log — the incident record
/// written whenever a request traps, is refused, or runs slow.
fn auto_dump(shared: &Shared, trigger: &str) {
    if !shared.events.enabled() {
        return;
    }
    shared.events.emit(
        &Event::new(EventLevel::Warn, "flight.dump")
            .field("ts", event_ts(shared))
            .field("trigger", trigger)
            .field("records", shared.flight.len()),
    );
    for rec in shared.flight.dump() {
        if let Ok(e) = Event::parse(&rec.to_line()) {
            shared.events.emit(&e);
        }
    }
}

/// Finishes a failed optimize request: narrates it in the event log,
/// records it in the flight recorder, and builds the error reply. The
/// caller bumps whichever counter classifies the failure.
fn job_failed(
    shared: &Shared,
    trace_id: &str,
    reason: &str,
    msg: &str,
    queue_us: u64,
    req_bytes: u64,
) -> Frame {
    shared.events.emit(
        &Event::new(EventLevel::Error, "request.finish")
            .field("ts", event_ts(shared))
            .field("id", id_field(trace_id))
            .field("kind", "optimize")
            .field("outcome", "error")
            .field("reason", reason)
            .field("error", msg),
    );
    shared.flight.record(FlightRecord {
        trace_id: trace_id.to_string(),
        kind: "optimize".to_string(),
        outcome: "error".to_string(),
        reason: reason.to_string(),
        req_bytes,
        phases: vec![("queue_wait".to_string(), queue_us)],
        ..Default::default()
    });
    error_frame(msg)
}

/// Counters behind the `stats` request (cache counters live in
/// [`ResultCache`]).
#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    busy: u64,
    errors: u64,
    deadline_missed: u64,
    /// Accepted `profile-push` requests.
    pgo_pushes: u64,
    /// Cached results re-optimized because their build profile drifted
    /// past threshold (one per stale hit).
    reoptimizations: u64,
    /// Aggregated per-stage `(name, wall_us, work_us)` over every
    /// non-cached optimize this daemon ran.
    stages: Vec<(String, u64, u64)>,
}

impl Counters {
    fn add_stages(&mut self, report: &hlo::HloReport) {
        for t in &report.stage_timings {
            if let Some(e) = self.stages.iter_mut().find(|(n, _, _)| *n == t.stage) {
                e.1 += t.wall_us;
                e.2 += t.work_us;
            } else {
                self.stages.push((t.stage.clone(), t.wall_us, t.work_us));
            }
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<std::collections::VecDeque<Job>>,
    work_ready: Condvar,
    draining: AtomicBool,
    /// Requests popped by a worker whose response has not been written to
    /// the client yet; drain waits for this to reach zero.
    in_flight: AtomicU64,
    cache: Mutex<ResultCache>,
    /// Per-program profile aggregates (continuous PGO). Mutated by
    /// `profile-push` on connection threads and read at dequeue time by
    /// `profile: server` requests.
    pgo: Mutex<ProfileStore>,
    counters: Mutex<Counters>,
    /// Request counters and phase-latency histograms, exposed by the
    /// `metrics` request in Prometheus text form.
    metrics: MetricsRegistry,
    /// The structured event log (file and/or stderr sinks per config).
    events: EventLog,
    /// Always-on ring of the last N request summaries.
    flight: FlightRecorder,
    /// Rendered artifacts of traced requests, newest at the back, served
    /// by `trace-fetch`. Rendered text is stored (not the tracer itself)
    /// so a fetch is a pure copy.
    traces: Mutex<std::collections::VecDeque<TraceFetchReply>>,
    /// Streaming phase-latency quantile sketches, parallel to
    /// [`REQUEST_PHASES`].
    sketches: Vec<Mutex<QuantileSketch>>,
    /// Requests past the `slow_ms` threshold.
    slow: AtomicU64,
    started: Instant,
    addr: SocketAddr,
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send a `shutdown` frame) then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7457"`, port 0 for ephemeral) and
    /// spawns the accept loop and worker pool.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Warm the profile store from its persisted snapshot, if any: a
        // restarted daemon answers `profile: server` with the same
        // aggregate it drained with.
        let pgo = match &cfg.pgo_store_path {
            Some(path) => ProfileStore::load(path, cfg.pgo_cap)?,
            None => ProfileStore::new(cfg.pgo_cap),
        };
        let events = EventLog::new(cfg.event_log_path.as_deref(), cfg.log_stderr)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            cache: Mutex::new(ResultCache::new(cfg.cache_cap)),
            pgo: Mutex::new(pgo),
            counters: Mutex::new(Counters::default()),
            metrics: MetricsRegistry::new(),
            events,
            flight: FlightRecorder::new(cfg.flight_cap),
            traces: Mutex::new(std::collections::VecDeque::new()),
            sketches: REQUEST_PHASES
                .iter()
                .map(|_| Mutex::new(QuantileSketch::new()))
                .collect(),
            slow: AtomicU64::new(0),
            started: Instant::now(),
            addr: local,
            cfg,
        });
        let workers = (0..effective_jobs(shared.cfg.workers))
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let accept = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&sh, listener))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts draining: stop accepting, finish queued and in-flight work.
    /// Idempotent; returns immediately — pair with [`Server::wait`].
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until the daemon has drained: the accept loop has stopped,
    /// every queued request has been optimized and every response written.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so nothing new enters flight; wait for the
        // connection threads to finish writing the last responses.
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn begin_drain(shared: &Arc<Shared>) {
    // Flip the flag while holding the queue lock: `submit` checks it under
    // the same lock, so a job is either enqueued before draining is
    // visible (workers drain the queue before exiting) or refused — never
    // stranded in a queue no worker will look at again.
    {
        let _q = shared.queue.lock().unwrap();
        if shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
    }
    shared
        .events
        .emit(&Event::new(EventLevel::Info, "daemon.drain").field("ts", event_ts(shared)));
    shared.work_ready.notify_all();
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let sh = Arc::clone(shared);
        // Connection threads are detached: they die with the process (or
        // sit in `read` until the client goes away). Drain correctness is
        // carried by the queue + in_flight counter, not by joining them.
        std::thread::spawn(move || connection_loop(&sh, stream));
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match Frame::read_from(&mut stream, shared.cfg.max_payload) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return, // disconnect / EOF
            Err(e) => {
                // Malformed or oversized: tell the client why, then hang
                // up — the stream position is unrecoverable.
                let _ = error_frame(&e.to_string()).write_to(&mut stream);
                return;
            }
        };
        let reply = match frame.kind {
            Kind::Ping => Frame::bare(Kind::Pong),
            Kind::Stats => stats_frame(shared),
            Kind::Metrics => metrics_frame(shared),
            Kind::ProfilePush => profile_push_frame(shared, &frame),
            Kind::ProfileStats => profile_stats_frame(shared, &frame),
            Kind::TraceFetch => trace_fetch_frame(shared, &frame),
            Kind::FlightDump => flight_dump_frame(shared),
            Kind::Shutdown => {
                begin_drain(shared);
                Frame::bare(Kind::ShutdownAck)
            }
            Kind::Optimize => match submit(shared, &frame) {
                Submitted::Reply(f) => f,
                Submitted::Pending(rx) => match rx.recv() {
                    Ok(f) => f,
                    Err(_) => error_frame("worker dropped the request"),
                },
            },
            _ => error_frame(&format!("unexpected frame kind {:?}", frame.kind)),
        };
        let is_optimize = frame.kind == Kind::Optimize;
        let write_res = reply.write_to(&mut stream);
        if is_optimize {
            // The `reply` phase (response-frame construction) is measured
            // inside `run_job`, where its duration can feed the request's
            // trace; the socket write is excluded so phase sums equal the
            // reported wall time. Counted up either at submit (fast-path
            // replies) or when a worker popped the job; the response is
            // on the wire (or the client is gone) — flight over.
            shared.in_flight.fetch_sub(1, Ordering::Release);
        }
        if write_res.is_err() {
            return; // client went away mid-response
        }
    }
}

enum Submitted {
    /// Fast-path reply (busy, draining, parse error): no worker involved.
    Reply(Frame),
    /// Queued; the worker will send the response frame here.
    Pending(mpsc::Receiver<Frame>),
}

/// Parses and enqueues one optimize request, applying backpressure.
/// Whatever the outcome, `in_flight` has been incremented exactly once
/// (the connection loop decrements after writing the response).
fn submit(shared: &Arc<Shared>, frame: &Frame) -> Submitted {
    shared.in_flight.fetch_add(1, Ordering::Acquire);
    let req_bytes = frame.payload.len() as u64;
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => {
            shared.counters.lock().unwrap().errors += 1;
            return Submitted::Reply(job_failed(
                shared,
                "",
                "payload",
                &format!("bad request payload: {e}"),
                0,
                req_bytes,
            ));
        }
    };
    let req = match OptimizeRequest::from_sections(&sections) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.lock().unwrap().errors += 1;
            return Submitted::Reply(job_failed(
                shared,
                "",
                "request",
                &format!("bad request: {e}"),
                0,
                req_bytes,
            ));
        }
    };
    let trace_id = req.trace_id.clone().unwrap_or_default();
    // A refused request never reaches a worker; it is still narrated and
    // flight-recorded here, and a refusal is one of the flight recorder's
    // auto-dump triggers.
    let refuse = |reason: &str| {
        shared.events.emit(
            &Event::new(EventLevel::Warn, "request.refused")
                .field("ts", event_ts(shared))
                .field("id", id_field(&trace_id))
                .field("kind", "optimize")
                .field("reason", reason),
        );
        shared.flight.record(FlightRecord {
            trace_id: trace_id.clone(),
            kind: "optimize".to_string(),
            outcome: "refused".to_string(),
            reason: reason.to_string(),
            req_bytes,
            ..Default::default()
        });
        auto_dump(shared, "refused");
    };
    let deadline_ms = req.deadline_ms.or(shared.cfg.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap();
        // Checked under the queue lock — see `begin_drain`.
        if shared.draining.load(Ordering::SeqCst) {
            drop(q);
            refuse("draining");
            return Submitted::Reply(error_frame("daemon is draining"));
        }
        if q.len() >= shared.cfg.queue_cap {
            shared.counters.lock().unwrap().busy += 1;
            drop(q);
            refuse("busy");
            return Submitted::Reply(Frame::bare(Kind::Busy));
        }
        q.push_back(Job {
            req,
            deadline,
            enqueued: Instant::now(),
            req_bytes,
            reply: tx,
        });
        shared.counters.lock().unwrap().requests += 1;
        shared.metrics.inc("requests_total");
    }
    shared.work_ready.notify_one();
    Submitted::Pending(rx)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.work_ready.wait(q).unwrap();
            }
        };
        let Some(job) = job else { return };
        let queue_us = job.enqueued.elapsed().as_micros() as u64;
        observe_phase(shared, "queue_wait", queue_us);
        let reply = run_job(shared, &job, queue_us);
        // The connection thread may have died with its client; a closed
        // channel just means nobody wants the answer any more.
        let _ = job.reply.send(reply);
    }
}

/// Executes one optimize request: deadline check, compile, cache lookup,
/// optimize on miss, cache fill — narrating the request into the event
/// log and flight recorder, and (for traced requests) recording a span
/// tree whose phase leaves carry the measured durations, so the stored
/// trace's phases sum exactly to the reported wall time.
fn run_job(shared: &Arc<Shared>, job: &Job, queue_us: u64) -> Frame {
    let req = &job.req;
    let trace_id = req.trace_id.clone().unwrap_or_default();
    shared.events.emit(
        &Event::new(EventLevel::Info, "request.start")
            .field("ts", event_ts(shared))
            .field("id", id_field(&trace_id))
            .field("kind", "optimize"),
    );
    if let Some(d) = job.deadline {
        if Instant::now() > d {
            shared.counters.lock().unwrap().deadline_missed += 1;
            return job_failed(
                shared,
                &trace_id,
                "deadline",
                "deadline exceeded while queued",
                queue_us,
                job.req_bytes,
            );
        }
    }
    // The request tracer. Untraced requests get a disabled tracer the
    // optimizer still threads its spans through (and ignores); traced
    // requests record at `Decisions` so the stored report carries full
    // per-site provenance. The tracer never reads a clock — every
    // duration below is measured here and handed to it, which is what
    // keeps trace content byte-identical across `--jobs`.
    let traced = !trace_id.is_empty();
    let mut tracer = if traced {
        Tracer::new(TraceLevel::Decisions)
    } else {
        Tracer::disabled()
    };
    let root = traced.then(|| tracer.push(&format!("request:{trace_id}")));
    let mut phases: Vec<(String, u64)> = vec![("queue_wait".to_string(), queue_us)];
    if traced {
        tracer.leaf_seq("queue_wait", Duration::from_micros(queue_us));
    }
    let fail = |reason: &str, msg: &str| -> Frame {
        shared.counters.lock().unwrap().errors += 1;
        job_failed(shared, &trace_id, reason, msg, queue_us, job.req_bytes)
    };
    let mut program = match &req.source {
        SourceKind::Minc(mods) => {
            let refs: Vec<(&str, &str)> =
                mods.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
            match hlo_frontc::compile(&refs) {
                Ok(p) => p,
                Err(e) => return fail("compile", &format!("compile failed: {e}")),
            }
        }
        SourceKind::Ir(text) => match hlo_ir::parse_program_text(text) {
            Ok(p) => {
                if let Err(e) = hlo_ir::verify_program(&p) {
                    return fail("verify", &format!("invalid IR: {e}"));
                }
                p
            }
            Err(e) => return fail("parse", &format!("bad IR text: {e}")),
        },
    };
    // Every optimized program registers with the pgo store, whatever
    // profile mode built it: pushes are accepted for any program the
    // daemon has seen, so a fleet can start streaming profiles before
    // the first `profile: server` rebuild.
    let pkey = hlo_pgo::program_key(&program);
    {
        let mut store = shared.pgo.lock().unwrap();
        let created = store.register(&pkey).expect("program keys are well-formed");
        if created {
            persist_store(shared, &store);
        }
    }
    // Resolve the request's profile. `server` mode consults the pgo
    // store *at dequeue time* — the whole point of continuous PGO is
    // that the profile a request optimizes with is whatever the fleet
    // has pushed by now, not whatever the client last saw.
    let (profile, key_profile_text, server_mode) = match &req.profile {
        ProfileSpec::None => (None, String::new(), false),
        ProfileSpec::Text(text) => match ProfileDb::from_text(text) {
            // Key on the canonical (re-serialized) profile so equivalent
            // profile texts address the same result.
            Ok(db) => {
                let canonical = db.to_text();
                (Some(db), canonical, false)
            }
            Err(e) => return fail("profile", &format!("bad profile: {e}")),
        },
        ProfileSpec::Server => {
            // The cache key uses a fixed marker, not the aggregate text:
            // the entry must be *found* across profile drift so the
            // drift check (below) can decide hit vs stale, and a
            // server-mode request must never collide with a profile-free
            // one.
            let merged = shared.pgo.lock().unwrap().merged(&pkey);
            (merged, SERVER_PROFILE_MARKER.to_string(), true)
        }
    };
    let profile_text = profile.as_ref().map(ProfileDb::to_text).unwrap_or_default();

    let probe_t = Instant::now();
    let mut cg = CallGraphCache::new();
    let key = request_key(&program, &req.options, &key_profile_text, &mut cg);
    let (cached, mut outcome) = shared.cache.lock().unwrap().lookup(&key);

    // Continuous PGO: a resident entry is only servable while the
    // aggregate is still within threshold of the profile it was built
    // with. Past threshold it is a *stale hit*: re-optimize with the
    // current aggregate and replace the entry.
    let mut pgo_line = None;
    let cached = match cached {
        Some(c) if server_mode => {
            let built_with = ProfileDb::from_text(&c.profile_text).unwrap_or_default();
            let current = profile.clone().unwrap_or_default();
            let report = hlo_pgo::drift(&built_with, &current, shared.cfg.pgo_hot_set);
            let threshold = shared.cfg.pgo_threshold_millis;
            outcome.drift_millis = report.score_millis();
            shared.metrics.observe(
                "pgo_drift_millis",
                DRIFT_BUCKETS_MILLIS,
                report.score_millis(),
            );
            pgo_line = Some(report.summary(threshold));
            if report.exceeds(threshold) {
                let mut cache = shared.cache.lock().unwrap();
                cache.mark_stale();
                drop(cache);
                shared.counters.lock().unwrap().reoptimizations += 1;
                shared.metrics.inc("pgo_reoptimize_total");
                shared.events.emit(
                    &Event::new(EventLevel::Warn, "pgo.reoptimize")
                        .field("ts", event_ts(shared))
                        .field("id", id_field(&trace_id))
                        .field("drift_millis", report.score_millis())
                        .field("threshold_millis", threshold),
                );
                outcome.hit = false;
                outcome.stale = true;
                None
            } else {
                Some(c)
            }
        }
        other => other,
    };
    let probe_us = probe_t.elapsed().as_micros() as u64;
    observe_phase(shared, "cache_probe", probe_us);
    phases.push(("cache_probe".to_string(), probe_us));
    if traced {
        tracer.leaf_seq("cache_probe", Duration::from_micros(probe_us));
    }
    shared.metrics.inc(if outcome.hit {
        "cache_hits_total"
    } else {
        "cache_misses_total"
    });

    let (ir_text, report_text) = match cached {
        Some(c) => (c.ir_text, c.report_text),
        None => {
            let opt_t = Instant::now();
            let report = optimize_miss(
                shared,
                &mut program,
                profile.as_ref(),
                &req.options,
                &key,
                hlo_ir::fnv1a_64(profile_text.as_bytes()),
                &mut cg,
                &mut outcome,
                &mut tracer,
                &trace_id,
            );
            let opt_us = opt_t.elapsed().as_micros() as u64;
            observe_phase(shared, "optimize", opt_us);
            phases.push(("optimize".to_string(), opt_us));
            let ir_text = hlo_ir::program_to_text(&program);
            let report_text = report.to_text();
            shared.counters.lock().unwrap().add_stages(&report);
            let evicted = shared.cache.lock().unwrap().insert(
                &key,
                CachedResult {
                    ir_text: ir_text.clone(),
                    report_text: report_text.clone(),
                    profile_text,
                },
            );
            if evicted > 0 {
                shared.events.emit(
                    &Event::new(EventLevel::Info, "cache.evict")
                        .field("ts", event_ts(shared))
                        .field("count", evicted),
                );
            }
            (ir_text, report_text)
        }
    };
    // Tag leaves: zero-duration stage spans naming the cache outcome and
    // partition reuse counts, so a span tree is self-describing.
    let outcome_str = if outcome.stale {
        "stale"
    } else if outcome.hit {
        "hit"
    } else {
        "miss"
    };
    if traced {
        tracer.leaf_seq(&format!("outcome.{outcome_str}"), Duration::ZERO);
        tracer.leaf_seq(
            &format!("partitions.hit.{}", outcome.partition_hits),
            Duration::ZERO,
        );
        tracer.leaf_seq(
            &format!("partitions.rebuild.{}", outcome.partition_rebuilds),
            Duration::ZERO,
        );
    }
    let train = req
        .train_arg
        .map(|arg| train_run(&ir_text, arg, &shared.metrics));
    let trapped = train.as_deref().is_some_and(|t| t.starts_with("trap:"));

    // The reply phase is the response-frame construction (the socket
    // write happens on the connection thread and is excluded, so the
    // phase list sums exactly to the wall time reported with the trace).
    let reply_t = Instant::now();
    let mut s = Sections::new();
    s.push("ir", ir_text);
    s.push("report", report_text);
    s.push("cache", outcome.to_text());
    if let Some(p) = pgo_line {
        s.push("pgo", p);
    }
    if let Some(t) = train {
        s.push("train", t);
    }
    if traced {
        s.push("trace-id", trace_id.as_str());
    }
    let frame = Frame::new(Kind::Result, &s);
    let reply_us = reply_t.elapsed().as_micros() as u64;
    observe_phase(shared, "reply", reply_us);
    phases.push(("reply".to_string(), reply_us));
    let wall_us: u64 = phases.iter().map(|(_, us)| us).sum();

    if let Some(root) = root {
        tracer.leaf_seq("reply", Duration::from_micros(reply_us));
        tracer.pop(root, Duration::from_micros(wall_us));
        let stored = TraceFetchReply {
            trace_id: trace_id.clone(),
            spans: tracer.span_tree_text(),
            decisions: tracer.decision_report(None),
            chrome: chrome_trace_json(&tracer),
            cache: outcome.to_text(),
            wall_us,
            phases: phases.clone(),
        };
        let mut traces = shared.traces.lock().unwrap();
        traces.push_back(stored);
        while traces.len() > shared.cfg.trace_cap.max(1) {
            traces.pop_front();
        }
    }

    let reason = if trapped { "trap" } else { "ok" };
    shared.flight.record(FlightRecord {
        seq: 0,
        trace_id: trace_id.clone(),
        kind: "optimize".to_string(),
        outcome: outcome_str.to_string(),
        reason: reason.to_string(),
        req_bytes: job.req_bytes,
        resp_bytes: frame.payload.len() as u64,
        phases,
    });
    shared.events.emit(
        &Event::new(
            if trapped {
                EventLevel::Warn
            } else {
                EventLevel::Info
            },
            "request.finish",
        )
        .field("ts", event_ts(shared))
        .field("id", id_field(&trace_id))
        .field("kind", "optimize")
        .field("outcome", outcome_str)
        .field("reason", reason)
        .field("req_bytes", job.req_bytes)
        .field("resp_bytes", frame.payload.len())
        .field("partition_hits", outcome.partition_hits)
        .field("partition_rebuilds", outcome.partition_rebuilds)
        .field("wall_us", wall_us),
    );
    if trapped {
        auto_dump(shared, "trap");
    }
    if let Some(slow_ms) = shared.cfg.slow_ms {
        if wall_us > slow_ms.saturating_mul(1000) {
            shared.slow.fetch_add(1, Ordering::Relaxed);
            shared.events.emit(
                &Event::new(EventLevel::Warn, "request.slow")
                    .field("ts", event_ts(shared))
                    .field("id", id_field(&trace_id))
                    .field("wall_us", wall_us)
                    .field("threshold_ms", slow_ms),
            );
            auto_dump(shared, "slow");
        }
    }
    frame
}

/// Optimizes a program the cache could not serve whole. With incremental
/// recompilation enabled (daemon *and* request), probe the partition
/// store per call-graph partition and hand [`hlo::optimize_partial`] a
/// plan that splices every hit byte-for-byte; only invalidated partitions
/// run the pipeline. The finished partitions (spliced and rebuilt alike)
/// re-populate the store, so the next edit's unchanged partitions keep
/// hitting. Any refusal — the request is not partition-cacheable, or the
/// spliced result fails IR verification — falls back to a plain full
/// [`hlo::optimize`] and is counted (`incr_fallback`).
#[allow(clippy::too_many_arguments)] // the request's full dequeue context
fn optimize_miss(
    shared: &Arc<Shared>,
    program: &mut Program,
    profile: Option<&ProfileDb>,
    opts: &HloOptions,
    key: &RequestKey,
    profile_salt: u64,
    cg: &mut CallGraphCache,
    outcome: &mut CacheOutcome,
    tracer: &mut Tracer,
    trace_id: &str,
) -> hlo::HloReport {
    let note_fallback = |shared: &Arc<Shared>, reason: &str| {
        shared.cache.lock().unwrap().note_incr_fallback();
        shared.metrics.inc("incr_fallback_total");
        shared.events.emit(
            &Event::new(EventLevel::Warn, "incr.fallback")
                .field("ts", event_ts(shared))
                .field("id", id_field(trace_id))
                .field("reason", reason),
        );
    };
    if shared.cfg.incremental {
        match incremental::eligible_partitions(program, opts, cg) {
            Ok(partitions) => {
                let pkeys =
                    incremental::partition_keys(program, &partitions, &key.funcs, profile_salt);
                let plan: Vec<PartitionAction> = {
                    let mut cache = shared.cache.lock().unwrap();
                    pkeys
                        .iter()
                        .map(|&k| match cache.probe_partition(k) {
                            Some(stored) => PartitionAction::Reuse(stored),
                            None => PartitionAction::Rebuild,
                        })
                        .collect()
                };
                let hits = plan
                    .iter()
                    .filter(|a| matches!(a, PartitionAction::Reuse(_)))
                    .count() as u64;
                let rebuilds = pkeys.len() as u64 - hits;
                // Splicing stored bodies is the only step that can go
                // wrong at request time; keep the input around so a
                // verification failure can rebuild from scratch. A plan
                // with no hits *is* a from-scratch build — nothing to
                // verify or restore.
                let backup = (hits > 0).then(|| program.clone());
                let out = hlo::optimize_partial(program, profile, opts, Some(&plan), tracer);
                if hits == 0 || hlo_ir::verify_program(program).is_ok() {
                    outcome.partition_hits = hits;
                    outcome.partition_rebuilds = rebuilds;
                    {
                        let mut cache = shared.cache.lock().unwrap();
                        cache.note_incremental(hits, rebuilds);
                        // A build that renamed globals mutated state
                        // outside its partitions' bodies — its outputs
                        // are not pure functions of their partitions, so
                        // they must not seed future splices.
                        if !out.log.globals_mutated {
                            for (pi, &k) in pkeys.iter().enumerate() {
                                cache.insert_partition(
                                    k,
                                    hlo::extract_partition(program, &out.log, pi),
                                );
                            }
                        }
                    }
                    shared.metrics.add("incr_partition_hits_total", hits);
                    shared
                        .metrics
                        .add("incr_partition_rebuilds_total", rebuilds);
                    return out.report;
                }
                *program = backup.expect("hits > 0 implies a backup was taken");
                outcome.incr_fallback = true;
                note_fallback(shared, "verify");
            }
            Err(_reason) => {
                // Only count a fallback when the request *wanted*
                // incremental — `--no-incremental` requests asked for a
                // full rebuild, that is not a fallback.
                if opts.incremental {
                    outcome.incr_fallback = true;
                    note_fallback(shared, "ineligible");
                }
            }
        }
    }
    hlo::optimize_traced(program, profile, opts, tracer)
}

/// The fixed profile component of a `profile: server` cache key. The
/// entry must stay addressable while the aggregate drifts (staleness is
/// decided by the drift check, not by key mismatch), and the marker can
/// never equal a canonical profile text, so server-mode and inline-text
/// requests cannot collide.
const SERVER_PROFILE_MARKER: &str = "profile-mode server\n";

/// Executes the optimized program once on the bytecode tier with `arg`
/// and summarizes the outcome on one line. The run feeds the daemon's
/// per-tier VM metrics; a trap (or unparsable IR, which cannot happen for
/// text the daemon just produced) is reported in the summary, never as a
/// request failure.
fn train_run(ir_text: &str, arg: i64, metrics: &MetricsRegistry) -> String {
    let program = match hlo_ir::parse_program_text(ir_text) {
        Ok(p) => p,
        Err(e) => return format!("error: bad optimized IR: {e}"),
    };
    let opts = hlo_vm::ExecOptions {
        tier: hlo_vm::Tier::Bytecode,
        ..Default::default()
    };
    let mut monitor = hlo_vm::NullMonitor;
    match hlo_vm::run_with_monitor_metrics(&program, &[arg], &opts, &mut monitor, metrics) {
        Ok(out) => format!(
            "ret {} retired {} output {} checksum {:#x}",
            out.ret,
            out.retired,
            out.output.len(),
            out.checksum
        ),
        Err(t) => format!("trap: {t}"),
    }
}

fn error_frame(msg: &str) -> Frame {
    let mut s = Sections::new();
    s.push("message", msg);
    Frame::new(Kind::Error, &s)
}

/// Persists the store snapshot when the daemon was given a path. Called
/// with the store lock held so snapshots hit the disk in mutation order;
/// an I/O failure is counted, not fatal — the in-memory aggregate stays
/// authoritative.
fn persist_store(shared: &Arc<Shared>, store: &ProfileStore) {
    if let Some(path) = &shared.cfg.pgo_store_path {
        if let Err(e) = store.save(path) {
            shared.metrics.inc("pgo_persist_errors_total");
            shared.events.emit(
                &Event::new(EventLevel::Error, "pgo.save-error")
                    .field("ts", event_ts(shared))
                    .field("path", path.display())
                    .field("error", e),
            );
        }
    }
}

/// Handles one `profile-push`: parse, validate, merge into the program's
/// aggregate, persist. Every refusal leaves the store untouched.
fn profile_push_frame(shared: &Arc<Shared>, frame: &Frame) -> Frame {
    let fail = |msg: String| {
        shared.counters.lock().unwrap().errors += 1;
        error_frame(&msg)
    };
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => return fail(format!("bad push payload: {e}")),
    };
    let req = match ProfilePushRequest::from_sections(&sections) {
        Ok(r) => r,
        Err(e) => return fail(format!("bad push request: {e}")),
    };
    let delta = match ProfileDb::from_text(&req.delta) {
        Ok(d) => d,
        Err(e) => return fail(format!("bad profile delta: {e}")),
    };
    let mut store = shared.pgo.lock().unwrap();
    if req.advance > 0 {
        // Validates the key and that the program is known; the merge
        // below can no longer fail after this succeeds.
        if let Err(e) = store.advance(&req.program, req.advance) {
            drop(store);
            return fail(format!("push refused: {e}"));
        }
    }
    let outcome = match store.push(&req.program, &delta) {
        Ok(o) => o,
        Err(e) => {
            drop(store);
            return fail(format!("push refused: {e}"));
        }
    };
    persist_store(shared, &store);
    drop(store);
    shared.counters.lock().unwrap().pgo_pushes += 1;
    shared.metrics.inc("pgo_push_total");
    let out = ProfilePushOutcome {
        generation: outcome.generation,
        pushes: outcome.pushes,
        functions: outcome.functions,
        resident_bytes: outcome.resident_bytes,
    };
    let mut s = Sections::new();
    s.push("ack", out.to_text());
    Frame::new(Kind::ProfilePushAck, &s)
}

/// Handles one `profile-stats`: store-wide counters plus, when the
/// request names a program, that program's merged aggregate text.
fn profile_stats_frame(shared: &Arc<Shared>, frame: &Frame) -> Frame {
    use std::fmt::Write as _;
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => return error_frame(&format!("bad stats payload: {e}")),
    };
    let store = shared.pgo.lock().unwrap();
    let mut s = Sections::new();
    if let Some(raw) = sections.get("program") {
        let key = match std::str::from_utf8(raw) {
            Ok(k) => k.trim(),
            Err(_) => return error_frame("program key is not UTF-8"),
        };
        match store.aggregate(key) {
            Some(agg) => {
                s.push("profile", agg.db().to_text());
            }
            None => {
                return error_frame(&if hlo_pgo::is_valid_key(key) {
                    format!("unknown program key `{key}`")
                } else {
                    format!("bad program key `{key}` (want 16 lowercase hex)")
                })
            }
        }
    }
    let st = store.stats();
    let mut text = String::new();
    let _ = writeln!(text, "programs {}", st.programs);
    let _ = writeln!(text, "bytes {}", st.resident_bytes);
    let _ = writeln!(text, "pushes {}", st.pushes);
    let _ = writeln!(text, "evictions {}", st.evictions);
    for key in store.keys() {
        let agg = store.aggregate(&key).expect("listed key is resident");
        let _ = writeln!(
            text,
            "program {key} {} {} {} {}",
            agg.generation,
            agg.pushes,
            agg.db().len(),
            agg.resident_bytes()
        );
    }
    drop(store);
    s.push("stats", text);
    Frame::new(Kind::ProfileStatsReply, &s)
}

/// Handles one `trace-fetch`: look up a previously stored request trace
/// by its client-minted id and reply with the rendered span tree,
/// decision report, Chrome JSON, cache outcome, and per-phase timings.
/// Traces live in a bounded in-memory ring, so a sufficiently old id is
/// simply gone — that is an error reply, not a crash.
fn trace_fetch_frame(shared: &Arc<Shared>, frame: &Frame) -> Frame {
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => return error_frame(&format!("bad trace-fetch payload: {e}")),
    };
    let id = match sections.get("trace-id").map(std::str::from_utf8) {
        Some(Ok(id)) => id.trim().to_string(),
        Some(Err(_)) => return error_frame("trace id is not UTF-8"),
        None => return error_frame("trace-fetch needs a `trace-id` section"),
    };
    if !crate::valid_trace_id(&id) {
        return error_frame(&format!("bad trace id `{id}` (want 16 lowercase hex)"));
    }
    let traces = shared.traces.lock().unwrap();
    // Newest first: if the same id was (unwisely) reused, the most
    // recent request wins.
    match traces.iter().rev().find(|t| t.trace_id == id) {
        Some(t) => Frame::new(Kind::TraceReply, &t.to_sections()),
        None => error_frame(&format!(
            "no stored trace for id `{id}` (daemon keeps the last {})",
            shared.cfg.trace_cap.max(1)
        )),
    }
}

/// Handles one `flight-dump`: serialize the flight recorder's ring of
/// recent request summaries. Always answerable — the recorder is always
/// on — so an empty dump means the daemon genuinely served nothing yet.
fn flight_dump_frame(shared: &Arc<Shared>) -> Frame {
    let mut s = Sections::new();
    s.push("flight", shared.flight.dump_text());
    s.push("admitted", format!("{}\n", shared.flight.admitted()));
    Frame::new(Kind::FlightReply, &s)
}

fn stats_frame(shared: &Arc<Shared>) -> Frame {
    use std::fmt::Write as _;
    let cache = shared.cache.lock().unwrap().stats();
    let c = shared.counters.lock().unwrap();
    let mut text = String::new();
    let _ = writeln!(text, "uptime_ms {}", shared.started.elapsed().as_millis());
    let _ = writeln!(text, "requests {}", c.requests);
    let _ = writeln!(text, "busy {}", c.busy);
    let _ = writeln!(text, "errors {}", c.errors);
    let _ = writeln!(text, "deadline_missed {}", c.deadline_missed);
    let _ = writeln!(text, "hits {}", cache.hits);
    let _ = writeln!(text, "misses {}", cache.misses);
    let _ = writeln!(text, "stale_hits {}", cache.stale_hits);
    let _ = writeln!(text, "evictions {}", cache.evictions);
    let _ = writeln!(text, "func_hits {}", cache.func_hits);
    let _ = writeln!(text, "func_misses {}", cache.func_misses);
    let _ = writeln!(text, "entries {}", cache.entries);
    let _ = writeln!(text, "cache_bytes {}", cache.resident_bytes);
    let _ = writeln!(text, "partition_hits {}", cache.partition_hits);
    let _ = writeln!(text, "partition_rebuilds {}", cache.partition_rebuilds);
    let _ = writeln!(text, "incr_fallbacks {}", cache.incr_fallbacks);
    let _ = writeln!(text, "partition_entries {}", cache.partition_entries);
    let _ = writeln!(text, "pgo_pushes {}", c.pgo_pushes);
    let _ = writeln!(text, "reoptimizations {}", c.reoptimizations);
    let _ = writeln!(
        text,
        "slow_requests {}",
        shared.slow.load(Ordering::Relaxed)
    );
    let _ = writeln!(text, "flight_records {}", shared.flight.len());
    let _ = writeln!(
        text,
        "traces_stored {}",
        shared.traces.lock().unwrap().len()
    );
    let _ = writeln!(text, "events_emitted {}", shared.events.emitted());
    let pgo = shared.pgo.lock().unwrap().stats();
    let _ = writeln!(text, "pgo_programs {}", pgo.programs);
    let _ = writeln!(text, "pgo_bytes {}", pgo.resident_bytes);
    for (name, wall, work) in &c.stages {
        let _ = writeln!(text, "stage {name} {wall} {work}");
    }
    drop(c);
    for phase in REQUEST_PHASES {
        let (count, sum) = shared.metrics.histogram(&phase_metric(phase));
        let _ = writeln!(text, "latency {phase} {count} {sum}");
    }
    for (i, phase) in REQUEST_PHASES.iter().enumerate() {
        let sketch = shared.sketches[i].lock().unwrap();
        let _ = writeln!(
            text,
            "quantile {phase} {} {} {}",
            sketch.quantile(500),
            sketch.quantile(950),
            sketch.quantile(990)
        );
    }
    let mut s = Sections::new();
    s.push("stats", text);
    Frame::new(Kind::StatsReply, &s)
}

/// Answers a `metrics` request with the full Prometheus-style text
/// exposition. Cache occupancy is read at reply time and published as
/// gauges so scrapes see current state, not last-insert state.
fn metrics_frame(shared: &Arc<Shared>) -> Frame {
    let cache = shared.cache.lock().unwrap().stats();
    shared
        .metrics
        .set_gauge("cache_entries", cache.entries as i64);
    shared
        .metrics
        .set_gauge("cache_resident_bytes", cache.resident_bytes as i64);
    shared
        .metrics
        .set_gauge("cache_evictions", cache.evictions as i64);
    shared
        .metrics
        .set_gauge("partition_entries", cache.partition_entries as i64);
    let pgo = shared.pgo.lock().unwrap().stats();
    shared
        .metrics
        .set_gauge("pgo_programs", pgo.programs as i64);
    shared
        .metrics
        .set_gauge("pgo_resident_bytes", pgo.resident_bytes as i64);
    for (i, phase) in REQUEST_PHASES.iter().enumerate() {
        let sketch = shared.sketches[i].lock().unwrap();
        for (suffix, permille) in [("p50", 500), ("p95", 950), ("p99", 990)] {
            shared.metrics.set_gauge(
                &format!("request_{phase}_{suffix}_us"),
                sketch.quantile(permille) as i64,
            );
        }
    }
    let mut s = Sections::new();
    s.push("metrics", shared.metrics.expose());
    Frame::new(Kind::MetricsReply, &s)
}

/// Flush helper for `hlod`'s startup banner; kept here so the binary
/// stays a thin argument parser.
pub fn banner(addr: SocketAddr, cfg: &ServeConfig) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "hlod listening on {addr} ({} workers, queue {}, cache {} programs)",
        effective_jobs(cfg.workers),
        cfg.queue_cap,
        cfg.cache_cap
    );
}
