//! The daemon: accept loop, session scheduler, worker pool, drain.
//!
//! One connection thread per client reads frames and answers `ping`,
//! `stats` and `shutdown` inline; `optimize` requests go through the
//! **session scheduler** — a bounded queue in front of a fixed worker
//! pool. A full queue answers [`wire::Kind::Busy`] immediately instead of
//! buffering without bound; each request's deadline is checked when a
//! worker picks it up, so a queue stuffed by a slow burst sheds expired
//! work instead of optimizing it late. Workers run the ordinary
//! [`hlo::optimize`] pipeline, whose per-function stages fan out over the
//! `hlo::par` pool at the request's `jobs` setting — or, on a warm miss
//! with incremental recompilation enabled, [`hlo::optimize_partial`] with
//! a plan that splices cached partition bodies (see [`crate::incremental`]).
//!
//! Shutdown is graceful: draining stops the accept loop and makes new
//! optimize requests fail fast, but everything already queued or running
//! is finished and its response written before [`Server::wait`] returns.

use crate::cache::{request_key, CacheOutcome, CachedResult, RequestKey, ResultCache};
use crate::incremental;
use crate::wire::{Frame, FrameError, Kind, Sections, DEFAULT_MAX_PAYLOAD};
use crate::{OptimizeRequest, ProfilePushOutcome, ProfilePushRequest, ProfileSpec, SourceKind};
use hlo::par::effective_jobs;
use hlo::{
    CallGraphCache, HloOptions, MetricsRegistry, PartitionAction, DRIFT_BUCKETS_MILLIS,
    LATENCY_BUCKETS_US,
};
use hlo_ir::Program;
use hlo_pgo::ProfileStore;
use hlo_profile::ProfileDb;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing optimize requests (`0` = all hardware
    /// parallelism).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `Busy`.
    pub queue_cap: usize,
    /// Program results kept in the cache (LRU past this).
    pub cache_cap: usize,
    /// Largest accepted frame payload, bytes.
    pub max_payload: u32,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Drift score (thousandths) past which a cached `profile: server`
    /// result is re-optimized instead of served.
    pub pgo_threshold_millis: u64,
    /// Hot-set size for the drift metric's churn component.
    pub pgo_hot_set: usize,
    /// Program aggregates kept in the profile store (LRU past this;
    /// `0` = unbounded).
    pub pgo_cap: usize,
    /// When set, the profile store is loaded from this path at startup
    /// and persisted (write-temp-then-rename) after every mutation, so
    /// aggregates survive restarts.
    pub pgo_store_path: Option<PathBuf>,
    /// Function-grain incremental recompilation: on a program-cache miss,
    /// splice cached partition bodies and re-optimize only invalidated
    /// partitions. `false` makes every miss a full rebuild
    /// (`hlod --no-incremental`).
    pub incremental: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            cache_cap: 128,
            max_payload: DEFAULT_MAX_PAYLOAD,
            default_deadline_ms: None,
            pgo_threshold_millis: hlo_pgo::DEFAULT_THRESHOLD_MILLIS,
            pgo_hot_set: hlo_pgo::DEFAULT_HOT_SET,
            pgo_cap: hlo_pgo::store::DEFAULT_CAP,
            pgo_store_path: None,
            incremental: true,
        }
    }
}

/// One queued optimize request.
struct Job {
    req: OptimizeRequest,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<Frame>,
}

/// Names of the per-request phase latency histograms, in request order:
/// time spent queued, probing the cache, optimizing (misses only), and
/// writing the reply. Each is a `request_<phase>_us` histogram over
/// [`LATENCY_BUCKETS_US`].
pub const REQUEST_PHASES: &[&str] = &["queue_wait", "cache_probe", "optimize", "reply"];

fn phase_metric(phase: &str) -> String {
    format!("request_{phase}_us")
}

/// Counters behind the `stats` request (cache counters live in
/// [`ResultCache`]).
#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    busy: u64,
    errors: u64,
    deadline_missed: u64,
    /// Accepted `profile-push` requests.
    pgo_pushes: u64,
    /// Cached results re-optimized because their build profile drifted
    /// past threshold (one per stale hit).
    reoptimizations: u64,
    /// Aggregated per-stage `(name, wall_us, work_us)` over every
    /// non-cached optimize this daemon ran.
    stages: Vec<(String, u64, u64)>,
}

impl Counters {
    fn add_stages(&mut self, report: &hlo::HloReport) {
        for t in &report.stage_timings {
            if let Some(e) = self.stages.iter_mut().find(|(n, _, _)| *n == t.stage) {
                e.1 += t.wall_us;
                e.2 += t.work_us;
            } else {
                self.stages.push((t.stage.clone(), t.wall_us, t.work_us));
            }
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<std::collections::VecDeque<Job>>,
    work_ready: Condvar,
    draining: AtomicBool,
    /// Requests popped by a worker whose response has not been written to
    /// the client yet; drain waits for this to reach zero.
    in_flight: AtomicU64,
    cache: Mutex<ResultCache>,
    /// Per-program profile aggregates (continuous PGO). Mutated by
    /// `profile-push` on connection threads and read at dequeue time by
    /// `profile: server` requests.
    pgo: Mutex<ProfileStore>,
    counters: Mutex<Counters>,
    /// Request counters and phase-latency histograms, exposed by the
    /// `metrics` request in Prometheus text form.
    metrics: MetricsRegistry,
    started: Instant,
    addr: SocketAddr,
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send a `shutdown` frame) then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7457"`, port 0 for ephemeral) and
    /// spawns the accept loop and worker pool.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Warm the profile store from its persisted snapshot, if any: a
        // restarted daemon answers `profile: server` with the same
        // aggregate it drained with.
        let pgo = match &cfg.pgo_store_path {
            Some(path) => ProfileStore::load(path, cfg.pgo_cap)?,
            None => ProfileStore::new(cfg.pgo_cap),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            cache: Mutex::new(ResultCache::new(cfg.cache_cap)),
            pgo: Mutex::new(pgo),
            counters: Mutex::new(Counters::default()),
            metrics: MetricsRegistry::new(),
            started: Instant::now(),
            addr: local,
            cfg,
        });
        let workers = (0..effective_jobs(shared.cfg.workers))
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let accept = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&sh, listener))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts draining: stop accepting, finish queued and in-flight work.
    /// Idempotent; returns immediately — pair with [`Server::wait`].
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until the daemon has drained: the accept loop has stopped,
    /// every queued request has been optimized and every response written.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so nothing new enters flight; wait for the
        // connection threads to finish writing the last responses.
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn begin_drain(shared: &Arc<Shared>) {
    // Flip the flag while holding the queue lock: `submit` checks it under
    // the same lock, so a job is either enqueued before draining is
    // visible (workers drain the queue before exiting) or refused — never
    // stranded in a queue no worker will look at again.
    {
        let _q = shared.queue.lock().unwrap();
        if shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
    }
    shared.work_ready.notify_all();
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let sh = Arc::clone(shared);
        // Connection threads are detached: they die with the process (or
        // sit in `read` until the client goes away). Drain correctness is
        // carried by the queue + in_flight counter, not by joining them.
        std::thread::spawn(move || connection_loop(&sh, stream));
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match Frame::read_from(&mut stream, shared.cfg.max_payload) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return, // disconnect / EOF
            Err(e) => {
                // Malformed or oversized: tell the client why, then hang
                // up — the stream position is unrecoverable.
                let _ = error_frame(&e.to_string()).write_to(&mut stream);
                return;
            }
        };
        let reply = match frame.kind {
            Kind::Ping => Frame::bare(Kind::Pong),
            Kind::Stats => stats_frame(shared),
            Kind::Metrics => metrics_frame(shared),
            Kind::ProfilePush => profile_push_frame(shared, &frame),
            Kind::ProfileStats => profile_stats_frame(shared, &frame),
            Kind::Shutdown => {
                begin_drain(shared);
                Frame::bare(Kind::ShutdownAck)
            }
            Kind::Optimize => match submit(shared, &frame) {
                Submitted::Reply(f) => f,
                Submitted::Pending(rx) => match rx.recv() {
                    Ok(f) => f,
                    Err(_) => error_frame("worker dropped the request"),
                },
            },
            _ => error_frame(&format!("unexpected frame kind {:?}", frame.kind)),
        };
        let is_optimize = frame.kind == Kind::Optimize;
        let reply_t = Instant::now();
        let write_res = reply.write_to(&mut stream);
        if is_optimize {
            shared.metrics.observe(
                &phase_metric("reply"),
                LATENCY_BUCKETS_US,
                reply_t.elapsed().as_micros() as u64,
            );
            // Counted up either at submit (fast-path replies) or when a
            // worker popped the job; the response is on the wire (or the
            // client is gone) — flight over.
            shared.in_flight.fetch_sub(1, Ordering::Release);
        }
        if write_res.is_err() {
            return; // client went away mid-response
        }
    }
}

enum Submitted {
    /// Fast-path reply (busy, draining, parse error): no worker involved.
    Reply(Frame),
    /// Queued; the worker will send the response frame here.
    Pending(mpsc::Receiver<Frame>),
}

/// Parses and enqueues one optimize request, applying backpressure.
/// Whatever the outcome, `in_flight` has been incremented exactly once
/// (the connection loop decrements after writing the response).
fn submit(shared: &Arc<Shared>, frame: &Frame) -> Submitted {
    shared.in_flight.fetch_add(1, Ordering::Acquire);
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => {
            shared.counters.lock().unwrap().errors += 1;
            return Submitted::Reply(error_frame(&format!("bad request payload: {e}")));
        }
    };
    let req = match OptimizeRequest::from_sections(&sections) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.lock().unwrap().errors += 1;
            return Submitted::Reply(error_frame(&format!("bad request: {e}")));
        }
    };
    let deadline_ms = req.deadline_ms.or(shared.cfg.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap();
        // Checked under the queue lock — see `begin_drain`.
        if shared.draining.load(Ordering::SeqCst) {
            return Submitted::Reply(error_frame("daemon is draining"));
        }
        if q.len() >= shared.cfg.queue_cap {
            shared.counters.lock().unwrap().busy += 1;
            return Submitted::Reply(Frame::bare(Kind::Busy));
        }
        q.push_back(Job {
            req,
            deadline,
            enqueued: Instant::now(),
            reply: tx,
        });
        shared.counters.lock().unwrap().requests += 1;
        shared.metrics.inc("requests_total");
    }
    shared.work_ready.notify_one();
    Submitted::Pending(rx)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.work_ready.wait(q).unwrap();
            }
        };
        let Some(job) = job else { return };
        shared.metrics.observe(
            &phase_metric("queue_wait"),
            LATENCY_BUCKETS_US,
            job.enqueued.elapsed().as_micros() as u64,
        );
        let reply = run_job(shared, &job);
        // The connection thread may have died with its client; a closed
        // channel just means nobody wants the answer any more.
        let _ = job.reply.send(reply);
    }
}

/// Executes one optimize request: deadline check, compile, cache lookup,
/// optimize on miss, cache fill.
fn run_job(shared: &Arc<Shared>, job: &Job) -> Frame {
    if let Some(d) = job.deadline {
        if Instant::now() > d {
            let mut c = shared.counters.lock().unwrap();
            c.deadline_missed += 1;
            return error_frame("deadline exceeded while queued");
        }
    }
    let req = &job.req;
    let mut program = match &req.source {
        SourceKind::Minc(mods) => {
            let refs: Vec<(&str, &str)> =
                mods.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
            match hlo_frontc::compile(&refs) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.lock().unwrap().errors += 1;
                    return error_frame(&format!("compile failed: {e}"));
                }
            }
        }
        SourceKind::Ir(text) => match hlo_ir::parse_program_text(text) {
            Ok(p) => {
                if let Err(e) = hlo_ir::verify_program(&p) {
                    shared.counters.lock().unwrap().errors += 1;
                    return error_frame(&format!("invalid IR: {e}"));
                }
                p
            }
            Err(e) => {
                shared.counters.lock().unwrap().errors += 1;
                return error_frame(&format!("bad IR text: {e}"));
            }
        },
    };
    // Every optimized program registers with the pgo store, whatever
    // profile mode built it: pushes are accepted for any program the
    // daemon has seen, so a fleet can start streaming profiles before
    // the first `profile: server` rebuild.
    let pkey = hlo_pgo::program_key(&program);
    {
        let mut store = shared.pgo.lock().unwrap();
        let created = store.register(&pkey).expect("program keys are well-formed");
        if created {
            persist_store(shared, &store);
        }
    }
    // Resolve the request's profile. `server` mode consults the pgo
    // store *at dequeue time* — the whole point of continuous PGO is
    // that the profile a request optimizes with is whatever the fleet
    // has pushed by now, not whatever the client last saw.
    let (profile, key_profile_text, server_mode) = match &req.profile {
        ProfileSpec::None => (None, String::new(), false),
        ProfileSpec::Text(text) => match ProfileDb::from_text(text) {
            // Key on the canonical (re-serialized) profile so equivalent
            // profile texts address the same result.
            Ok(db) => {
                let canonical = db.to_text();
                (Some(db), canonical, false)
            }
            Err(e) => {
                shared.counters.lock().unwrap().errors += 1;
                return error_frame(&format!("bad profile: {e}"));
            }
        },
        ProfileSpec::Server => {
            // The cache key uses a fixed marker, not the aggregate text:
            // the entry must be *found* across profile drift so the
            // drift check (below) can decide hit vs stale, and a
            // server-mode request must never collide with a profile-free
            // one.
            let merged = shared.pgo.lock().unwrap().merged(&pkey);
            (merged, SERVER_PROFILE_MARKER.to_string(), true)
        }
    };
    let profile_text = profile.as_ref().map(ProfileDb::to_text).unwrap_or_default();

    let probe_t = Instant::now();
    let mut cg = CallGraphCache::new();
    let key = request_key(&program, &req.options, &key_profile_text, &mut cg);
    let (cached, mut outcome) = shared.cache.lock().unwrap().lookup(&key);

    // Continuous PGO: a resident entry is only servable while the
    // aggregate is still within threshold of the profile it was built
    // with. Past threshold it is a *stale hit*: re-optimize with the
    // current aggregate and replace the entry.
    let mut pgo_line = None;
    let cached = match cached {
        Some(c) if server_mode => {
            let built_with = ProfileDb::from_text(&c.profile_text).unwrap_or_default();
            let current = profile.clone().unwrap_or_default();
            let report = hlo_pgo::drift(&built_with, &current, shared.cfg.pgo_hot_set);
            let threshold = shared.cfg.pgo_threshold_millis;
            outcome.drift_millis = report.score_millis();
            shared.metrics.observe(
                "pgo_drift_millis",
                DRIFT_BUCKETS_MILLIS,
                report.score_millis(),
            );
            pgo_line = Some(report.summary(threshold));
            if report.exceeds(threshold) {
                let mut cache = shared.cache.lock().unwrap();
                cache.mark_stale();
                drop(cache);
                shared.counters.lock().unwrap().reoptimizations += 1;
                shared.metrics.inc("pgo_reoptimize_total");
                outcome.hit = false;
                outcome.stale = true;
                None
            } else {
                Some(c)
            }
        }
        other => other,
    };
    shared.metrics.observe(
        &phase_metric("cache_probe"),
        LATENCY_BUCKETS_US,
        probe_t.elapsed().as_micros() as u64,
    );
    shared.metrics.inc(if outcome.hit {
        "cache_hits_total"
    } else {
        "cache_misses_total"
    });

    let (ir_text, report_text) = match cached {
        Some(c) => (c.ir_text, c.report_text),
        None => {
            let opt_t = Instant::now();
            let report = optimize_miss(
                shared,
                &mut program,
                profile.as_ref(),
                &req.options,
                &key,
                hlo_ir::fnv1a_64(profile_text.as_bytes()),
                &mut cg,
                &mut outcome,
            );
            shared.metrics.observe(
                &phase_metric("optimize"),
                LATENCY_BUCKETS_US,
                opt_t.elapsed().as_micros() as u64,
            );
            let ir_text = hlo_ir::program_to_text(&program);
            let report_text = report.to_text();
            shared.counters.lock().unwrap().add_stages(&report);
            shared.cache.lock().unwrap().insert(
                &key,
                CachedResult {
                    ir_text: ir_text.clone(),
                    report_text: report_text.clone(),
                    profile_text,
                },
            );
            (ir_text, report_text)
        }
    };
    let train = req
        .train_arg
        .map(|arg| train_run(&ir_text, arg, &shared.metrics));
    let mut s = Sections::new();
    s.push("ir", ir_text);
    s.push("report", report_text);
    s.push("cache", outcome.to_text());
    if let Some(p) = pgo_line {
        s.push("pgo", p);
    }
    if let Some(t) = train {
        s.push("train", t);
    }
    Frame::new(Kind::Result, &s)
}

/// Optimizes a program the cache could not serve whole. With incremental
/// recompilation enabled (daemon *and* request), probe the partition
/// store per call-graph partition and hand [`hlo::optimize_partial`] a
/// plan that splices every hit byte-for-byte; only invalidated partitions
/// run the pipeline. The finished partitions (spliced and rebuilt alike)
/// re-populate the store, so the next edit's unchanged partitions keep
/// hitting. Any refusal — the request is not partition-cacheable, or the
/// spliced result fails IR verification — falls back to a plain full
/// [`hlo::optimize`] and is counted (`incr_fallback`).
#[allow(clippy::too_many_arguments)] // the request's full dequeue context
fn optimize_miss(
    shared: &Arc<Shared>,
    program: &mut Program,
    profile: Option<&ProfileDb>,
    opts: &HloOptions,
    key: &RequestKey,
    profile_salt: u64,
    cg: &mut CallGraphCache,
    outcome: &mut CacheOutcome,
) -> hlo::HloReport {
    if shared.cfg.incremental {
        match incremental::eligible_partitions(program, opts, cg) {
            Ok(partitions) => {
                let pkeys =
                    incremental::partition_keys(program, &partitions, &key.funcs, profile_salt);
                let plan: Vec<PartitionAction> = {
                    let mut cache = shared.cache.lock().unwrap();
                    pkeys
                        .iter()
                        .map(|&k| match cache.probe_partition(k) {
                            Some(stored) => PartitionAction::Reuse(stored),
                            None => PartitionAction::Rebuild,
                        })
                        .collect()
                };
                let hits = plan
                    .iter()
                    .filter(|a| matches!(a, PartitionAction::Reuse(_)))
                    .count() as u64;
                let rebuilds = pkeys.len() as u64 - hits;
                // Splicing stored bodies is the only step that can go
                // wrong at request time; keep the input around so a
                // verification failure can rebuild from scratch. A plan
                // with no hits *is* a from-scratch build — nothing to
                // verify or restore.
                let backup = (hits > 0).then(|| program.clone());
                let out = hlo::optimize_partial(
                    program,
                    profile,
                    opts,
                    Some(&plan),
                    &mut hlo::Tracer::disabled(),
                );
                if hits == 0 || hlo_ir::verify_program(program).is_ok() {
                    outcome.partition_hits = hits;
                    outcome.partition_rebuilds = rebuilds;
                    {
                        let mut cache = shared.cache.lock().unwrap();
                        cache.note_incremental(hits, rebuilds);
                        // A build that renamed globals mutated state
                        // outside its partitions' bodies — its outputs
                        // are not pure functions of their partitions, so
                        // they must not seed future splices.
                        if !out.log.globals_mutated {
                            for (pi, &k) in pkeys.iter().enumerate() {
                                cache.insert_partition(
                                    k,
                                    hlo::extract_partition(program, &out.log, pi),
                                );
                            }
                        }
                    }
                    shared.metrics.add("incr_partition_hits_total", hits);
                    shared
                        .metrics
                        .add("incr_partition_rebuilds_total", rebuilds);
                    return out.report;
                }
                *program = backup.expect("hits > 0 implies a backup was taken");
                outcome.incr_fallback = true;
                shared.cache.lock().unwrap().note_incr_fallback();
                shared.metrics.inc("incr_fallback_total");
            }
            Err(_reason) => {
                // Only count a fallback when the request *wanted*
                // incremental — `--no-incremental` requests asked for a
                // full rebuild, that is not a fallback.
                if opts.incremental {
                    outcome.incr_fallback = true;
                    shared.cache.lock().unwrap().note_incr_fallback();
                    shared.metrics.inc("incr_fallback_total");
                }
            }
        }
    }
    hlo::optimize(program, profile, opts)
}

/// The fixed profile component of a `profile: server` cache key. The
/// entry must stay addressable while the aggregate drifts (staleness is
/// decided by the drift check, not by key mismatch), and the marker can
/// never equal a canonical profile text, so server-mode and inline-text
/// requests cannot collide.
const SERVER_PROFILE_MARKER: &str = "profile-mode server\n";

/// Executes the optimized program once on the bytecode tier with `arg`
/// and summarizes the outcome on one line. The run feeds the daemon's
/// per-tier VM metrics; a trap (or unparsable IR, which cannot happen for
/// text the daemon just produced) is reported in the summary, never as a
/// request failure.
fn train_run(ir_text: &str, arg: i64, metrics: &MetricsRegistry) -> String {
    let program = match hlo_ir::parse_program_text(ir_text) {
        Ok(p) => p,
        Err(e) => return format!("error: bad optimized IR: {e}"),
    };
    let opts = hlo_vm::ExecOptions {
        tier: hlo_vm::Tier::Bytecode,
        ..Default::default()
    };
    let mut monitor = hlo_vm::NullMonitor;
    match hlo_vm::run_with_monitor_metrics(&program, &[arg], &opts, &mut monitor, metrics) {
        Ok(out) => format!(
            "ret {} retired {} output {} checksum {:#x}",
            out.ret,
            out.retired,
            out.output.len(),
            out.checksum
        ),
        Err(t) => format!("trap: {t}"),
    }
}

fn error_frame(msg: &str) -> Frame {
    let mut s = Sections::new();
    s.push("message", msg);
    Frame::new(Kind::Error, &s)
}

/// Persists the store snapshot when the daemon was given a path. Called
/// with the store lock held so snapshots hit the disk in mutation order;
/// an I/O failure is counted, not fatal — the in-memory aggregate stays
/// authoritative.
fn persist_store(shared: &Arc<Shared>, store: &ProfileStore) {
    if let Some(path) = &shared.cfg.pgo_store_path {
        if store.save(path).is_err() {
            shared.metrics.inc("pgo_persist_errors_total");
        }
    }
}

/// Handles one `profile-push`: parse, validate, merge into the program's
/// aggregate, persist. Every refusal leaves the store untouched.
fn profile_push_frame(shared: &Arc<Shared>, frame: &Frame) -> Frame {
    let fail = |msg: String| {
        shared.counters.lock().unwrap().errors += 1;
        error_frame(&msg)
    };
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => return fail(format!("bad push payload: {e}")),
    };
    let req = match ProfilePushRequest::from_sections(&sections) {
        Ok(r) => r,
        Err(e) => return fail(format!("bad push request: {e}")),
    };
    let delta = match ProfileDb::from_text(&req.delta) {
        Ok(d) => d,
        Err(e) => return fail(format!("bad profile delta: {e}")),
    };
    let mut store = shared.pgo.lock().unwrap();
    if req.advance > 0 {
        // Validates the key and that the program is known; the merge
        // below can no longer fail after this succeeds.
        if let Err(e) = store.advance(&req.program, req.advance) {
            drop(store);
            return fail(format!("push refused: {e}"));
        }
    }
    let outcome = match store.push(&req.program, &delta) {
        Ok(o) => o,
        Err(e) => {
            drop(store);
            return fail(format!("push refused: {e}"));
        }
    };
    persist_store(shared, &store);
    drop(store);
    shared.counters.lock().unwrap().pgo_pushes += 1;
    shared.metrics.inc("pgo_push_total");
    let out = ProfilePushOutcome {
        generation: outcome.generation,
        pushes: outcome.pushes,
        functions: outcome.functions,
        resident_bytes: outcome.resident_bytes,
    };
    let mut s = Sections::new();
    s.push("ack", out.to_text());
    Frame::new(Kind::ProfilePushAck, &s)
}

/// Handles one `profile-stats`: store-wide counters plus, when the
/// request names a program, that program's merged aggregate text.
fn profile_stats_frame(shared: &Arc<Shared>, frame: &Frame) -> Frame {
    use std::fmt::Write as _;
    let sections = match Sections::decode(&frame.payload) {
        Ok(s) => s,
        Err(e) => return error_frame(&format!("bad stats payload: {e}")),
    };
    let store = shared.pgo.lock().unwrap();
    let mut s = Sections::new();
    if let Some(raw) = sections.get("program") {
        let key = match std::str::from_utf8(raw) {
            Ok(k) => k.trim(),
            Err(_) => return error_frame("program key is not UTF-8"),
        };
        match store.aggregate(key) {
            Some(agg) => {
                s.push("profile", agg.db().to_text());
            }
            None => {
                return error_frame(&if hlo_pgo::is_valid_key(key) {
                    format!("unknown program key `{key}`")
                } else {
                    format!("bad program key `{key}` (want 16 lowercase hex)")
                })
            }
        }
    }
    let st = store.stats();
    let mut text = String::new();
    let _ = writeln!(text, "programs {}", st.programs);
    let _ = writeln!(text, "bytes {}", st.resident_bytes);
    let _ = writeln!(text, "pushes {}", st.pushes);
    let _ = writeln!(text, "evictions {}", st.evictions);
    for key in store.keys() {
        let agg = store.aggregate(&key).expect("listed key is resident");
        let _ = writeln!(
            text,
            "program {key} {} {} {} {}",
            agg.generation,
            agg.pushes,
            agg.db().len(),
            agg.resident_bytes()
        );
    }
    drop(store);
    s.push("stats", text);
    Frame::new(Kind::ProfileStatsReply, &s)
}

fn stats_frame(shared: &Arc<Shared>) -> Frame {
    use std::fmt::Write as _;
    let cache = shared.cache.lock().unwrap().stats();
    let c = shared.counters.lock().unwrap();
    let mut text = String::new();
    let _ = writeln!(text, "uptime_ms {}", shared.started.elapsed().as_millis());
    let _ = writeln!(text, "requests {}", c.requests);
    let _ = writeln!(text, "busy {}", c.busy);
    let _ = writeln!(text, "errors {}", c.errors);
    let _ = writeln!(text, "deadline_missed {}", c.deadline_missed);
    let _ = writeln!(text, "hits {}", cache.hits);
    let _ = writeln!(text, "misses {}", cache.misses);
    let _ = writeln!(text, "stale_hits {}", cache.stale_hits);
    let _ = writeln!(text, "evictions {}", cache.evictions);
    let _ = writeln!(text, "func_hits {}", cache.func_hits);
    let _ = writeln!(text, "func_misses {}", cache.func_misses);
    let _ = writeln!(text, "entries {}", cache.entries);
    let _ = writeln!(text, "cache_bytes {}", cache.resident_bytes);
    let _ = writeln!(text, "partition_hits {}", cache.partition_hits);
    let _ = writeln!(text, "partition_rebuilds {}", cache.partition_rebuilds);
    let _ = writeln!(text, "incr_fallbacks {}", cache.incr_fallbacks);
    let _ = writeln!(text, "partition_entries {}", cache.partition_entries);
    let _ = writeln!(text, "pgo_pushes {}", c.pgo_pushes);
    let _ = writeln!(text, "reoptimizations {}", c.reoptimizations);
    let pgo = shared.pgo.lock().unwrap().stats();
    let _ = writeln!(text, "pgo_programs {}", pgo.programs);
    let _ = writeln!(text, "pgo_bytes {}", pgo.resident_bytes);
    for (name, wall, work) in &c.stages {
        let _ = writeln!(text, "stage {name} {wall} {work}");
    }
    drop(c);
    for phase in REQUEST_PHASES {
        let (count, sum) = shared.metrics.histogram(&phase_metric(phase));
        let _ = writeln!(text, "latency {phase} {count} {sum}");
    }
    let mut s = Sections::new();
    s.push("stats", text);
    Frame::new(Kind::StatsReply, &s)
}

/// Answers a `metrics` request with the full Prometheus-style text
/// exposition. Cache occupancy is read at reply time and published as
/// gauges so scrapes see current state, not last-insert state.
fn metrics_frame(shared: &Arc<Shared>) -> Frame {
    let cache = shared.cache.lock().unwrap().stats();
    shared
        .metrics
        .set_gauge("cache_entries", cache.entries as i64);
    shared
        .metrics
        .set_gauge("cache_resident_bytes", cache.resident_bytes as i64);
    shared
        .metrics
        .set_gauge("cache_evictions", cache.evictions as i64);
    shared
        .metrics
        .set_gauge("partition_entries", cache.partition_entries as i64);
    let pgo = shared.pgo.lock().unwrap().stats();
    shared
        .metrics
        .set_gauge("pgo_programs", pgo.programs as i64);
    shared
        .metrics
        .set_gauge("pgo_resident_bytes", pgo.resident_bytes as i64);
    let mut s = Sections::new();
    s.push("metrics", shared.metrics.expose());
    Frame::new(Kind::MetricsReply, &s)
}

/// Flush helper for `hlod`'s startup banner; kept here so the binary
/// stays a thin argument parser.
pub fn banner(addr: SocketAddr, cfg: &ServeConfig) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "hlod listening on {addr} ({} workers, queue {}, cache {} programs)",
        effective_jobs(cfg.workers),
        cfg.queue_cap,
        cfg.cache_cap
    );
}
