//! The framed wire protocol.
//!
//! Everything on the socket is a **frame**: a fixed 12-byte header
//! followed by a length-prefixed payload. Std-only and byte-order
//! explicit, matching the repo's dependency-free style.
//!
//! ```text
//! offset size field
//! 0      4    magic   b"HLOS"
//! 4      2    version u16 LE (currently 1)
//! 6      1    kind    u8 (see [`Kind`])
//! 7      1    reserved, must be 0
//! 8      4    payload length u32 LE
//! 12     n    payload bytes
//! ```
//!
//! Payloads are sequences of named **sections**, each a header line
//! `name length\n` followed by exactly `length` raw bytes and a closing
//! newline. Section bodies are opaque bytes (in practice the repo's
//! existing text serializations: IR text, `HloOptions::to_text`,
//! `ProfileDb::to_text`, `HloReport::to_text`), so the protocol gains new
//! fields without a version bump — unknown sections are skipped.

use std::io::{Read, Write};

/// Frame magic: `HLOS`.
pub const MAGIC: [u8; 4] = *b"HLOS";
/// Protocol version carried in every frame header.
pub const VERSION: u16 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Default cap on payload size; a frame announcing more is rejected
/// without allocating.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds. Requests are < 128, responses ≥ 128.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Optimize a program (MinC sources or IR text + options + profile).
    Optimize = 1,
    /// Ask for daemon statistics.
    Stats = 2,
    /// Drain in-flight work and exit.
    Shutdown = 3,
    /// Liveness probe.
    Ping = 4,
    /// Ask for the Prometheus-style metrics exposition.
    Metrics = 5,
    /// Push a profile delta into the daemon's per-program aggregate.
    ProfilePush = 6,
    /// Ask for profile-store statistics (optionally one program's
    /// merged aggregate).
    ProfileStats = 7,
    /// Fetch the stored span tree / decision report for a trace id.
    TraceFetch = 8,
    /// Dump the flight recorder (last N request summaries).
    FlightDump = 9,
    /// Optimized result (IR text + report + cache outcome).
    Result = 129,
    /// Statistics text.
    StatsReply = 130,
    /// Shutdown acknowledged; the daemon is draining.
    ShutdownAck = 131,
    /// Backpressure: the request queue is full, retry later.
    Busy = 132,
    /// Request failed; payload is a `message` section.
    Error = 133,
    /// Liveness reply.
    Pong = 134,
    /// Metrics exposition text.
    MetricsReply = 135,
    /// Profile push accepted; payload describes the updated aggregate.
    ProfilePushAck = 136,
    /// Profile-store statistics text (plus the merged profile when one
    /// program was asked for).
    ProfileStatsReply = 137,
    /// Stored trace artifacts for a trace id (spans, decisions, Chrome
    /// JSON, phase timings).
    TraceReply = 138,
    /// Flight-recorder dump text.
    FlightReply = 139,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        Some(match v {
            1 => Kind::Optimize,
            2 => Kind::Stats,
            3 => Kind::Shutdown,
            4 => Kind::Ping,
            5 => Kind::Metrics,
            6 => Kind::ProfilePush,
            7 => Kind::ProfileStats,
            8 => Kind::TraceFetch,
            9 => Kind::FlightDump,
            129 => Kind::Result,
            130 => Kind::StatsReply,
            131 => Kind::ShutdownAck,
            132 => Kind::Busy,
            133 => Kind::Error,
            134 => Kind::Pong,
            135 => Kind::MetricsReply,
            136 => Kind::ProfilePushAck,
            137 => Kind::ProfileStatsReply,
            138 => Kind::TraceReply,
            139 => Kind::FlightReply,
            _ => return None,
        })
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Socket error or EOF mid-frame.
    Io(std::io::Error),
    /// Header bytes are not a frame: wrong magic, version, kind or
    /// nonzero reserved byte.
    Malformed(String),
    /// The announced payload exceeds the receiver's limit.
    Oversized {
        /// Announced payload length.
        announced: u32,
        /// The receiver's cap.
        limit: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Oversized { announced, limit } => {
                write!(f, "oversized frame: {announced} bytes (limit {limit})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: Kind,
    /// Raw payload (usually section-encoded; see [`Sections`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a section-encoded payload.
    pub fn new(kind: Kind, sections: &Sections) -> Frame {
        Frame {
            kind,
            payload: sections.encode(),
        }
    }

    /// An empty-payload frame.
    pub fn bare(kind: Kind) -> Frame {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }

    /// Writes the frame to `w` (header + payload, single flush).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(self.kind as u8);
        buf.push(0);
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
        w.write_all(&buf)?;
        w.flush()
    }

    /// Reads one frame from `r`, rejecting bad headers before reading any
    /// payload and refusing to allocate more than `max_payload` bytes.
    ///
    /// # Errors
    /// [`FrameError::Io`] on socket errors/EOF, [`FrameError::Malformed`]
    /// on header garbage, [`FrameError::Oversized`] past the cap.
    pub fn read_from(r: &mut impl Read, max_payload: u32) -> Result<Frame, FrameError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        if header[0..4] != MAGIC {
            return Err(FrameError::Malformed("bad magic".to_string()));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(FrameError::Malformed(format!(
                "unsupported version {version}"
            )));
        }
        let kind = Kind::from_u8(header[6])
            .ok_or_else(|| FrameError::Malformed(format!("unknown kind {}", header[6])))?;
        if header[7] != 0 {
            return Err(FrameError::Malformed("reserved byte set".to_string()));
        }
        let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if len > max_payload {
            return Err(FrameError::Oversized {
                announced: len,
                limit: max_payload,
            });
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame { kind, payload })
    }
}

/// An ordered list of named payload sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sections {
    entries: Vec<(String, Vec<u8>)>,
}

impl Sections {
    /// An empty section list.
    pub fn new() -> Self {
        Sections::default()
    }

    /// Appends a section. Names must be non-empty and contain no
    /// whitespace (they share a line with the length).
    pub fn push(&mut self, name: &str, body: impl Into<Vec<u8>>) -> &mut Self {
        debug_assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "section names are single tokens"
        );
        self.entries.push((name.to_string(), body.into()));
        self
    }

    /// First section named `name`, as bytes.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// First section named `name`, as UTF-8 text.
    ///
    /// # Errors
    /// Describes the missing section or invalid UTF-8.
    pub fn text(&self, name: &str) -> Result<&str, String> {
        let b = self
            .get(name)
            .ok_or_else(|| format!("missing `{name}` section"))?;
        std::str::from_utf8(b).map_err(|_| format!("section `{name}` is not UTF-8"))
    }

    /// All sections, in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(n, b)| (n.as_str(), b.as_slice()))
    }

    /// Serializes to the `name length\n<bytes>\n` stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, body) in &self.entries {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(format!(" {}\n", body.len()).as_bytes());
            out.extend_from_slice(body);
            out.push(b'\n');
        }
        out
    }

    /// Parses a section stream.
    ///
    /// # Errors
    /// Describes the first malformed header line or truncated body.
    pub fn decode(bytes: &[u8]) -> Result<Sections, String> {
        let mut s = Sections::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let nl = bytes[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .ok_or("truncated section header")?;
            let header = std::str::from_utf8(&bytes[pos..pos + nl])
                .map_err(|_| "section header is not UTF-8".to_string())?;
            let (name, len) = header
                .split_once(' ')
                .ok_or_else(|| format!("bad section header `{header}`"))?;
            let len: usize = len
                .parse()
                .map_err(|_| format!("bad section length in `{header}`"))?;
            pos += nl + 1;
            if pos + len + 1 > bytes.len() {
                return Err(format!("section `{name}` truncated"));
            }
            s.push(name, bytes[pos..pos + len].to_vec());
            pos += len;
            if bytes[pos] != b'\n' {
                return Err(format!("section `{name}` missing terminator"));
            }
            pos += 1;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut s = Sections::new();
        s.push("options", "budget 100\n").push("ir", "hlo-ir v1\n");
        let f = Frame::new(Kind::Optimize, &s);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(f, back);
        let sections = Sections::decode(&back.payload).unwrap();
        assert_eq!(sections.text("options").unwrap(), "budget 100\n");
        assert_eq!(sections.text("ir").unwrap(), "hlo-ir v1\n");
        assert!(sections.text("nope").is_err());
    }

    #[test]
    fn bad_magic_is_malformed() {
        let mut buf = Vec::new();
        Frame::bare(Kind::Ping).write_to(&mut buf).unwrap();
        buf[0] = b'X';
        match Frame::read_from(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("magic")),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_and_kind_are_malformed() {
        let mut buf = Vec::new();
        Frame::bare(Kind::Ping).write_to(&mut buf).unwrap();
        buf[4] = 9;
        assert!(matches!(
            Frame::read_from(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Malformed(_))
        ));
        let mut buf2 = Vec::new();
        Frame::bare(Kind::Ping).write_to(&mut buf2).unwrap();
        buf2[6] = 77;
        assert!(matches!(
            Frame::read_from(&mut buf2.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        Frame {
            kind: Kind::Optimize,
            payload: vec![0u8; 100],
        }
        .write_to(&mut buf)
        .unwrap();
        match Frame::read_from(&mut buf.as_slice(), 10) {
            Err(FrameError::Oversized { announced, limit }) => {
                assert_eq!(announced, 100);
                assert_eq!(limit, 10);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        Frame {
            kind: Kind::Optimize,
            payload: vec![1, 2, 3, 4],
        }
        .write_to(&mut buf)
        .unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            Frame::read_from(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn sections_reject_garbage() {
        assert!(Sections::decode(b"no-length-line").is_err());
        assert!(Sections::decode(b"name x\nbody\n").is_err());
        assert!(Sections::decode(b"name 100\nshort\n").is_err());
        // Missing terminator after the body.
        assert!(Sections::decode(b"name 4\nbodyX").is_err());
    }

    #[test]
    fn binary_section_bodies_survive() {
        let mut s = Sections::new();
        s.push("blob", vec![0u8, 255, 10, 13, 0]);
        let back = Sections::decode(&s.encode()).unwrap();
        assert_eq!(back.get("blob").unwrap(), &[0u8, 255, 10, 13, 0]);
    }
}
