//! The content-addressed result cache.
//!
//! Two layers share one lock in the daemon:
//!
//! * the **program cache** maps a *request key* — a stable hash of the
//!   canonical input program text, the option fingerprint and the profile
//!   text — to the optimized IR text and report. A warm request for an
//!   unchanged program is a pure lookup; the optimizer never runs.
//! * the **function store** is a content-addressed set of per-function
//!   *cone keys*: the FNV hash of the function's canonical
//!   `program_to_text` form combined (via [`CallGraphCache::cone_hashes`])
//!   with the hashes of every inline-reachable callee, plus the option
//!   fingerprint, profile hash and the program environment (globals,
//!   externs, entry). With `ipa` enabled (the default), each function's
//!   `hlo-ipa` summary fingerprint is folded in as well, so a key also
//!   changes when a function's interprocedural *summary* changes — which
//!   happens for exactly the dependence cone of a behavioural edit.
//!   Editing one function changes the cone keys of
//!   exactly that function and its transitive callers — its *dependence
//!   cone* — so the store's hit/miss split on the next request reports
//!   precisely which functions an edit invalidated. Functions outside the
//!   cone keep hitting.
//!
//! A third layer rides on the same lock: the **partition store**, keyed
//! by [`crate::incremental::partition_keys`]. The optimizer's hierarchical
//! budget split makes each call-graph partition's final bodies a pure
//! function of its members' cone keys and its budget share, so on a
//! program-cache miss the daemon can splice stored partition bodies
//! ([`hlo::ReusedPartition`]) byte-for-byte through
//! [`hlo::optimize_partial`] and re-optimize only the partitions an edit
//! invalidated. Warm responses stay byte-identical to a cold in-process
//! `optimize` call — verified per request, with a full rebuild as the
//! fallback when verification or eligibility fails.

use hlo::{CallGraphCache, HloOptions, ReusedPartition};
use hlo_ir::{program_to_text, Fnv64, Program};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet, VecDeque};

/// The two-level key of one optimize request.
#[derive(Debug, Clone)]
pub struct RequestKey {
    /// Whole-request key: program text + options fingerprint + profile.
    pub program: u64,
    /// Per-function cone keys, indexed like `Program::funcs`.
    pub funcs: Vec<u64>,
}

/// Computes the request key for a canonicalized input program.
///
/// `profile_text` must be the exact profile the optimizer will be handed
/// (its serialized form), or empty when optimizing profile-free.
pub fn request_key(
    p: &Program,
    opts: &HloOptions,
    profile_text: &str,
    cg: &mut CallGraphCache,
) -> RequestKey {
    let canonical = program_to_text(p);
    let opts_fp = opts.fingerprint();
    let profile_hash = hlo_ir::fnv1a_64(profile_text.as_bytes());

    let mut program = Fnv64::new();
    program
        .write(b"hlo-serve request v1")
        .write_u64(opts_fp)
        .write_u64(profile_hash)
        .write(canonical.as_bytes());

    // The program environment a function's optimization can observe
    // beyond its call cone: externs, module list, globals, entry. That is
    // the canonical text minus the function bodies.
    let mut env = Fnv64::new();
    let mut in_func = false;
    for line in canonical.lines() {
        if line.starts_with("func ") {
            in_func = true;
        }
        if !in_func {
            env.write(line.as_bytes()).write(b"\n");
        }
        if line == "endfunc" {
            in_func = false;
        }
    }
    let env = env.finish();

    // With ipa enabled, per-function summary fingerprints are folded into
    // the cone hashes: a function's key then changes whenever its
    // *summary* changes — which happens exactly for the dependence cone of
    // a behavioural edit, since summaries absorb callee effects bottom-up.
    let cones = if opts.ipa {
        let fingerprints = hlo_ipa::Summaries::compute(p, cg.graph(p)).fingerprints();
        cg.cone_hashes_salted(p, &fingerprints)
    } else {
        cg.cone_hashes(p)
    };
    let funcs = cones
        .into_iter()
        .map(|cone| {
            let mut h = Fnv64::new();
            h.write_u64(cone)
                .write_u64(opts_fp)
                .write_u64(profile_hash)
                .write_u64(env);
            h.finish()
        })
        .collect();

    RequestKey {
        program: program.finish(),
        funcs,
    }
}

/// A cached optimization result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Optimized program text (byte-identical to what a cold run emits).
    pub ir_text: String,
    /// The cold run's report, wire-serialized.
    pub report_text: String,
    /// Canonical text of the profile this result was optimized with
    /// (empty for profile-free runs). For `profile: server` requests the
    /// daemon compares this against the current aggregate: drift past
    /// threshold turns a would-be hit into a stale hit.
    pub profile_text: String,
}

impl CachedResult {
    fn payload_bytes(&self) -> u64 {
        (self.ir_text.len() + self.report_text.len() + self.profile_text.len()) as u64
    }
}

/// What the cache had to say about one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whole-program hit: the response was a pure lookup.
    pub hit: bool,
    /// Functions whose cone keys were already in the function store.
    pub func_hits: u64,
    /// Functions whose cone keys were new — the dependence cone of
    /// whatever changed since the daemon last saw this program.
    pub func_misses: u64,
    /// The entry was resident but its build profile had drifted past the
    /// daemon's threshold, so the request re-optimized (`hit` is false).
    pub stale: bool,
    /// Drift score (thousandths) between the cached entry's build
    /// profile and the current server aggregate; `0` for requests that
    /// never consulted the profile store.
    pub drift_millis: u64,
    /// Partitions whose stored bodies were spliced instead of rebuilt
    /// (function-grain incremental recompilation). `0` on program hits
    /// and full rebuilds.
    pub partition_hits: u64,
    /// Partitions the incremental path re-optimized. On a cold build that
    /// populated the store this equals the partition count.
    pub partition_rebuilds: u64,
    /// The request was not partition-cacheable (or an incremental build
    /// failed byte verification) and fell back to a full rebuild.
    pub incr_fallback: bool,
}

impl CacheOutcome {
    /// The wire `cache` section body.
    pub fn to_text(&self) -> String {
        format!(
            "hit {}\nfunc_hits {}\nfunc_misses {}\nstale {}\ndrift {}\n\
             partition_hits {}\npartition_rebuilds {}\nincr_fallback {}\n",
            self.hit as u8,
            self.func_hits,
            self.func_misses,
            self.stale as u8,
            self.drift_millis,
            self.partition_hits,
            self.partition_rebuilds,
            self.incr_fallback as u8
        )
    }

    /// Parses a `cache` section body; unknown lines are ignored so old
    /// clients keep working against newer daemons and vice versa.
    ///
    /// # Errors
    /// Describes the malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut outcome = CacheOutcome::default();
        for line in text.lines() {
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "hit" => outcome.hit = val == "1",
                "stale" => outcome.stale = val == "1",
                "func_hits" => {
                    outcome.func_hits = val.parse().map_err(|_| "bad func_hits")?;
                }
                "func_misses" => {
                    outcome.func_misses = val.parse().map_err(|_| "bad func_misses")?;
                }
                "drift" => {
                    outcome.drift_millis = val.parse().map_err(|_| "bad drift")?;
                }
                "partition_hits" => {
                    outcome.partition_hits = val.parse().map_err(|_| "bad partition_hits")?;
                }
                "partition_rebuilds" => {
                    outcome.partition_rebuilds =
                        val.parse().map_err(|_| "bad partition_rebuilds")?;
                }
                "incr_fallback" => outcome.incr_fallback = val == "1",
                _ => {}
            }
        }
        Ok(outcome)
    }
}

/// Aggregate counters, served by the `stats` request.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Whole-program lookups that hit.
    pub hits: u64,
    /// Whole-program lookups that missed.
    pub misses: u64,
    /// Program entries evicted by capacity pressure.
    pub evictions: u64,
    /// Cumulative function-store hits.
    pub func_hits: u64,
    /// Cumulative function-store misses.
    pub func_misses: u64,
    /// Whole-program lookups that found an entry whose build profile had
    /// drifted past threshold — re-optimized, not served (continuous
    /// PGO). Disjoint from `hits` and `misses`.
    pub stale_hits: u64,
    /// Program entries currently resident.
    pub entries: u64,
    /// Bytes of cached payload currently resident (IR text + report text
    /// over every entry) — the occupancy number behind `cache_bytes`.
    pub resident_bytes: u64,
    /// Cumulative partition-store splices (incremental builds).
    pub partition_hits: u64,
    /// Cumulative partitions re-optimized by incremental builds.
    pub partition_rebuilds: u64,
    /// Requests that fell back to a full rebuild because they were not
    /// partition-cacheable or an incremental build failed verification.
    pub incr_fallbacks: u64,
    /// Partition bodies currently resident in the partition store.
    pub partition_entries: u64,
}

/// Bounded program cache + function store. Not internally synchronized —
/// the daemon wraps it in its shared-state lock.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    entries: HashMap<u64, CachedResult>,
    /// LRU order, front = coldest. Touched on hit and insert.
    order: VecDeque<u64>,
    /// Content-addressed cone-key set; bounded at `16 × cap` keys (a
    /// program is tens of functions, so the store outlives its programs
    /// slightly — enough for cone accounting across edits).
    func_keys: HashSet<u64>,
    func_order: VecDeque<u64>,
    /// Partition store: finished per-partition bodies keyed by
    /// [`crate::incremental::partition_keys`]; bounded at `64 × cap`
    /// entries (a program is a handful of partitions, so the store keeps
    /// several generations of edits warm).
    parts: HashMap<u64, ReusedPartition>,
    part_order: VecDeque<u64>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `cap` program results (`cap == 0` disables
    /// program caching but keeps function-store accounting).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            entries: HashMap::new(),
            order: VecDeque::new(),
            func_keys: HashSet::new(),
            func_order: VecDeque::new(),
            parts: HashMap::new(),
            part_order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a request: returns the cached result on a program hit and
    /// updates every counter either way. Function-store accounting runs on
    /// hits too (a hit means every cone key hits).
    pub fn lookup(&mut self, key: &RequestKey) -> (Option<CachedResult>, CacheOutcome) {
        let mut outcome = CacheOutcome::default();
        for &fk in &key.funcs {
            if self.func_keys.contains(&fk) {
                outcome.func_hits += 1;
            } else {
                outcome.func_misses += 1;
            }
        }
        self.stats.func_hits += outcome.func_hits;
        self.stats.func_misses += outcome.func_misses;

        let hit = self.entries.get(&key.program).cloned();
        if hit.is_some() {
            outcome.hit = true;
            self.stats.hits += 1;
            self.touch(key.program);
        } else {
            self.stats.misses += 1;
        }
        self.stats.entries = self.entries.len() as u64;
        (hit, outcome)
    }

    /// Inserts a freshly computed result and registers its cone keys.
    /// Evicts the least-recently-used program past capacity; returns how
    /// many programs were evicted so the daemon can narrate each one in
    /// its event log.
    pub fn insert(&mut self, key: &RequestKey, result: CachedResult) -> u64 {
        let mut evicted = 0;
        if self.cap > 0 {
            self.stats.resident_bytes += result.payload_bytes();
            match self.entries.entry(key.program) {
                MapEntry::Occupied(mut e) => {
                    self.stats.resident_bytes -= e.get().payload_bytes();
                    e.insert(result);
                    self.touch(key.program);
                }
                MapEntry::Vacant(e) => {
                    e.insert(result);
                    self.order.push_back(key.program);
                }
            }
            while self.entries.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    if let Some(r) = self.entries.remove(&old) {
                        self.stats.resident_bytes -= r.payload_bytes();
                    }
                    self.stats.evictions += 1;
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        let func_cap = self.cap.max(1) * 16;
        for &fk in &key.funcs {
            if self.func_keys.insert(fk) {
                self.func_order.push_back(fk);
            }
        }
        while self.func_keys.len() > func_cap {
            if let Some(old) = self.func_order.pop_front() {
                self.func_keys.remove(&old);
            } else {
                break;
            }
        }
        self.stats.entries = self.entries.len() as u64;
        evicted
    }

    /// Looks up one partition's stored bodies, touching its LRU slot.
    /// Returns a clone — the caller hands it to [`hlo::optimize_partial`],
    /// which consumes the bodies at splice time.
    pub fn probe_partition(&mut self, key: u64) -> Option<ReusedPartition> {
        let found = self.parts.get(&key).cloned();
        if found.is_some() {
            if let Some(i) = self.part_order.iter().position(|&k| k == key) {
                self.part_order.remove(i);
            }
            self.part_order.push_back(key);
        }
        found
    }

    /// Stores one partition's finished bodies (from
    /// [`hlo::extract_partition`]), evicting the coldest entries past
    /// capacity.
    pub fn insert_partition(&mut self, key: u64, stored: ReusedPartition) {
        if self.parts.insert(key, stored).is_none() {
            self.part_order.push_back(key);
        }
        let part_cap = self.cap.max(1) * 64;
        while self.parts.len() > part_cap {
            if let Some(old) = self.part_order.pop_front() {
                self.parts.remove(&old);
            } else {
                break;
            }
        }
        self.stats.partition_entries = self.parts.len() as u64;
    }

    /// Records one incremental build's partition outcome.
    pub fn note_incremental(&mut self, hits: u64, rebuilds: u64) {
        self.stats.partition_hits += hits;
        self.stats.partition_rebuilds += rebuilds;
    }

    /// Records one request that fell back to a full rebuild.
    pub fn note_incr_fallback(&mut self) {
        self.stats.incr_fallbacks += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reclassifies the most recent hit as a stale hit: the entry was
    /// resident, but the daemon found its build profile drifted past
    /// threshold and re-optimized instead of serving it.
    pub fn mark_stale(&mut self) {
        self.stats.hits = self.stats.hits.saturating_sub(1);
        self.stats.stale_hits += 1;
    }

    fn touch(&mut self, program: u64) {
        if let Some(i) = self.order.iter().position(|&k| k == program) {
            self.order.remove(i);
        }
        self.order.push_back(program);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo::HloOptions;

    fn compile(srcs: &[(&str, &str)]) -> Program {
        hlo_frontc::compile(srcs).unwrap()
    }

    fn key_of(p: &Program) -> RequestKey {
        request_key(p, &HloOptions::default(), "", &mut CallGraphCache::new())
    }

    const TWO_CHAINS: &[(&str, &str)] = &[(
        "m",
        "static fn leaf_a(x) { return x + 1; }
         static fn mid_a(x) { return leaf_a(x) * 2; }
         static fn leaf_b(x) { return x - 1; }
         static fn mid_b(x) { return leaf_b(x) * 3; }
         fn main() { return mid_a(4) + mid_b(5); }",
    )];

    #[test]
    fn identical_programs_share_keys() {
        let a = key_of(&compile(TWO_CHAINS));
        let b = key_of(&compile(TWO_CHAINS));
        assert_eq!(a.program, b.program);
        assert_eq!(a.funcs, b.funcs);
    }

    #[test]
    fn edit_invalidates_exactly_the_dependence_cone() {
        let base = key_of(&compile(TWO_CHAINS));
        // Edit leaf_a: its own key, mid_a's and main's must change;
        // leaf_b and mid_b must not (they are outside the cone).
        let edited = key_of(&compile(&[(
            "m",
            "static fn leaf_a(x) { return x + 2; }
             static fn mid_a(x) { return leaf_a(x) * 2; }
             static fn leaf_b(x) { return x - 1; }
             static fn mid_b(x) { return leaf_b(x) * 3; }
             fn main() { return mid_a(4) + mid_b(5); }",
        )]));
        assert_ne!(base.program, edited.program);
        // Function order follows source order: leaf_a, mid_a, leaf_b,
        // mid_b, main.
        assert_ne!(base.funcs[0], edited.funcs[0], "leaf_a changed");
        assert_ne!(base.funcs[1], edited.funcs[1], "mid_a calls leaf_a");
        assert_eq!(base.funcs[2], edited.funcs[2], "leaf_b untouched");
        assert_eq!(base.funcs[3], edited.funcs[3], "mid_b untouched");
        assert_ne!(base.funcs[4], edited.funcs[4], "main reaches leaf_a");
    }

    #[test]
    fn summary_changing_edit_re_keys_exactly_the_dependence_cone() {
        // The global exists in both versions (so the program environment
        // hash is identical); the edit turns leaf_a from pure into a
        // global writer — a *summary* change that the bottom-up analysis
        // propagates to mid_a and main, and to nothing else.
        let base = key_of(&compile(&[(
            "m",
            "global acc;
             static fn leaf_a(x) { return x + 1; }
             static fn mid_a(x) { return leaf_a(x) * 2; }
             static fn leaf_b(x) { return x - 1; }
             static fn mid_b(x) { return leaf_b(x) * 3; }
             fn main() { return mid_a(4) + mid_b(5); }",
        )]));
        let edited = key_of(&compile(&[(
            "m",
            "global acc;
             static fn leaf_a(x) { acc = acc + x; return x + 1; }
             static fn mid_a(x) { return leaf_a(x) * 2; }
             static fn leaf_b(x) { return x - 1; }
             static fn mid_b(x) { return leaf_b(x) * 3; }
             fn main() { return mid_a(4) + mid_b(5); }",
        )]));
        assert_ne!(base.program, edited.program);
        assert_ne!(base.funcs[0], edited.funcs[0], "leaf_a changed");
        assert_ne!(base.funcs[1], edited.funcs[1], "mid_a absorbs leaf_a");
        assert_eq!(base.funcs[2], edited.funcs[2], "leaf_b untouched");
        assert_eq!(base.funcs[3], edited.funcs[3], "mid_b untouched");
        assert_ne!(base.funcs[4], edited.funcs[4], "main reaches leaf_a");
    }

    #[test]
    fn options_and_profile_change_every_key() {
        let p = compile(TWO_CHAINS);
        let base = key_of(&p);
        let tight = request_key(
            &p,
            &HloOptions {
                budget_percent: 25,
                ..Default::default()
            },
            "",
            &mut CallGraphCache::new(),
        );
        assert_ne!(base.program, tight.program);
        for (a, b) in base.funcs.iter().zip(&tight.funcs) {
            assert_ne!(a, b);
        }
        let with_profile = request_key(
            &p,
            &HloOptions::default(),
            "func m main 1\nblocks 1\nend\n",
            &mut CallGraphCache::new(),
        );
        assert_ne!(base.program, with_profile.program);
    }

    #[test]
    fn jobs_and_check_do_not_change_keys() {
        let p = compile(TWO_CHAINS);
        let base = key_of(&p);
        let parallel = request_key(
            &p,
            &HloOptions {
                jobs: 8,
                check: hlo::CheckLevel::Strict,
                ..Default::default()
            },
            "",
            &mut CallGraphCache::new(),
        );
        assert_eq!(base.program, parallel.program);
        assert_eq!(base.funcs, parallel.funcs);
    }

    #[test]
    fn lru_eviction_and_counters() {
        let mut cache = ResultCache::new(2);
        let k = |n: u64| RequestKey {
            program: n,
            funcs: vec![n * 10, n * 10 + 1],
        };
        let r = |n: u64| CachedResult {
            ir_text: format!("ir{n}"),
            report_text: String::new(),
            profile_text: String::new(),
        };
        assert!(!cache.lookup(&k(1)).1.hit);
        assert_eq!(cache.insert(&k(1), r(1)), 0);
        assert_eq!(cache.insert(&k(2), r(2)), 0);
        let (got, out) = cache.lookup(&k(1));
        assert_eq!(got.unwrap().ir_text, "ir1");
        assert!(out.hit);
        assert_eq!(out.func_hits, 2);
        // Insert a third: 2 is now LRU and gets evicted.
        assert_eq!(cache.insert(&k(3), r(3)), 1);
        assert!(!cache.lookup(&k(2)).1.hit);
        assert!(cache.lookup(&k(1)).1.hit);
        assert!(cache.lookup(&k(3)).1.hit);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        // Two resident entries, "ir1" and "ir3": 3 bytes each.
        assert_eq!(s.resident_bytes, 6);
    }

    #[test]
    fn outcome_text_roundtrips_and_stale_reclassifies_hits() {
        let out = CacheOutcome {
            hit: false,
            func_hits: 4,
            func_misses: 1,
            stale: true,
            drift_millis: 512,
            partition_hits: 3,
            partition_rebuilds: 1,
            incr_fallback: true,
        };
        assert_eq!(CacheOutcome::from_text(&out.to_text()).unwrap(), out);
        // Old payloads without the new lines still parse.
        let old = CacheOutcome::from_text("hit 1\nfunc_hits 2\nfunc_misses 0\n").unwrap();
        assert!(old.hit && !old.stale && old.drift_millis == 0);

        let mut cache = ResultCache::new(2);
        let k = RequestKey {
            program: 9,
            funcs: vec![],
        };
        cache.insert(
            &k,
            CachedResult {
                ir_text: "ir".to_string(),
                report_text: String::new(),
                profile_text: "func m f 1\nblocks 1\nend\n".to_string(),
            },
        );
        let (got, out) = cache.lookup(&k);
        assert_eq!(got.unwrap().profile_text, "func m f 1\nblocks 1\nend\n");
        assert!(out.hit);
        cache.mark_stale();
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.stale_hits, 1);
    }

    #[test]
    fn partition_store_probes_touch_and_evict_lru() {
        let mut cache = ResultCache::new(1); // partition cap = 64
        let stored = || ReusedPartition {
            members: Vec::new(),
            clones: Vec::new(),
        };
        for i in 0..64u64 {
            cache.insert_partition(i, stored());
        }
        assert_eq!(cache.stats().partition_entries, 64);
        // Touch key 0 so it is no longer coldest, then overflow by one.
        assert!(cache.probe_partition(0).is_some());
        cache.insert_partition(64, stored());
        assert_eq!(cache.stats().partition_entries, 64);
        assert!(cache.probe_partition(0).is_some(), "touched key survives");
        assert!(cache.probe_partition(1).is_none(), "coldest key evicted");
        cache.note_incremental(5, 2);
        cache.note_incr_fallback();
        let s = cache.stats();
        assert_eq!((s.partition_hits, s.partition_rebuilds), (5, 2));
        assert_eq!(s.incr_fallbacks, 1);
    }

    #[test]
    fn resident_bytes_track_replacement_and_eviction() {
        let mut cache = ResultCache::new(1);
        let k = RequestKey {
            program: 1,
            funcs: vec![],
        };
        cache.insert(
            &k,
            CachedResult {
                ir_text: "abcd".to_string(),
                report_text: "xy".to_string(),
                profile_text: String::new(),
            },
        );
        assert_eq!(cache.stats().resident_bytes, 6);
        // Replacing the same key swaps the bytes, not adds them.
        cache.insert(
            &k,
            CachedResult {
                ir_text: "ab".to_string(),
                report_text: String::new(),
                profile_text: String::new(),
            },
        );
        assert_eq!(cache.stats().resident_bytes, 2);
        // Evicting releases them.
        let k2 = RequestKey {
            program: 2,
            funcs: vec![],
        };
        cache.insert(
            &k2,
            CachedResult {
                ir_text: "wxyz".to_string(),
                report_text: String::new(),
                profile_text: String::new(),
            },
        );
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, 4);
    }
}
