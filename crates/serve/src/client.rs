//! Blocking client for the daemon — what `hloc serve` / `hloc remote`
//! and the serve benchmark speak.

use crate::wire::{Frame, FrameError, Kind, Sections, DEFAULT_MAX_PAYLOAD};
use crate::{
    OptimizeRequest, OptimizeResponse, ProfilePushOutcome, ProfilePushRequest, ProfileStatsReply,
    TraceFetchReply,
};
use std::net::{TcpStream, ToSocketAddrs};

/// Mints a request trace id: 16 lowercase hex digits, unique enough for a
/// single client session. Seeded from the wall clock and process id, then
/// mixed through FNV-1a so consecutive calls differ in every nibble. The
/// id is client-owned — the daemon only echoes and indexes it.
pub fn mint_trace_id() -> String {
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let uniq = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let seed = [
        nanos.to_le_bytes(),
        (std::process::id() as u64).to_le_bytes(),
        uniq.to_le_bytes(),
    ]
    .concat();
    format!("{:016x}", hlo_ir::fnv1a_64(&seed))
}

/// Anything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// A frame that could not be decoded.
    Frame(FrameError),
    /// The daemon answered with an error frame; the payload message.
    Remote(String),
    /// The daemon's request queue is full; retry later.
    Busy,
    /// A structurally valid frame of an unexpected kind or shape.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Frame(e) => write!(f, "frame error: {e}"),
            ServeError::Remote(msg) => write!(f, "daemon error: {msg}"),
            ServeError::Busy => write!(f, "daemon is busy (queue full)"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ServeError::Io(io),
            other => ServeError::Frame(other),
        }
    }
}

/// Daemon-side counters, as returned by [`Client::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Optimize requests accepted into the queue.
    pub requests: u64,
    /// Requests turned away with `Busy`.
    pub busy: u64,
    /// Requests that failed (bad input, compile error, …).
    pub errors: u64,
    /// Requests whose deadline expired while queued.
    pub deadline_missed: u64,
    /// Whole-program cache hits (pure lookups).
    pub hits: u64,
    /// Whole-program cache misses (full optimizations).
    pub misses: u64,
    /// Cache hits reclassified stale because the server-side profile
    /// aggregate drifted past threshold since the entry was built.
    pub stale_hits: u64,
    /// Programs evicted by the LRU bound.
    pub evictions: u64,
    /// Function cone keys already known at lookup time.
    pub func_hits: u64,
    /// Function cone keys first seen at lookup time.
    pub func_misses: u64,
    /// Programs currently cached.
    pub entries: u64,
    /// Bytes of cached payload currently resident (IR + report text).
    pub cache_bytes: u64,
    /// Partition bodies spliced by incremental builds.
    pub partition_hits: u64,
    /// Partitions re-optimized by incremental builds.
    pub partition_rebuilds: u64,
    /// Requests that fell back from incremental to a full rebuild.
    pub incr_fallbacks: u64,
    /// Partition bodies currently resident in the partition store.
    pub partition_entries: u64,
    /// Profile deltas accepted via `profile-push`.
    pub pgo_pushes: u64,
    /// Drift-triggered re-optimizations of cached server-mode results.
    pub reoptimizations: u64,
    /// Programs with a resident profile aggregate.
    pub pgo_programs: u64,
    /// Bytes resident in the profile store.
    pub pgo_bytes: u64,
    /// Requests whose wall time exceeded the daemon's `--slow-ms` bound.
    pub slow_requests: u64,
    /// Request summaries currently resident in the flight recorder.
    pub flight_records: u64,
    /// Request traces currently resident in the trace ring.
    pub traces_stored: u64,
    /// Structured events emitted since the daemon started.
    pub events_emitted: u64,
    /// Aggregate `(stage, wall_us, work_us)` over all non-cached runs.
    pub stages: Vec<(String, u64, u64)>,
    /// Per-phase request latency `(phase, count, sum_us)`, in the order
    /// the daemon reports them (queue wait, cache probe, optimize, reply).
    pub latencies: Vec<(String, u64, u64)>,
    /// Per-phase latency quantiles `(phase, p50_us, p95_us, p99_us)` from
    /// the daemon's streaming sketches, in reporting order.
    pub quantiles: Vec<(String, u64, u64, u64)>,
}

impl ServeStats {
    fn from_text(text: &str) -> Result<ServeStats, String> {
        fn num(parts: &mut std::str::SplitWhitespace, line: &str) -> Result<u64, String> {
            parts
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| format!("bad stats line `{line}`"))
        }
        let mut st = ServeStats::default();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            match parts.next().unwrap_or("") {
                "" => {}
                "uptime_ms" => st.uptime_ms = num(&mut parts, line)?,
                "requests" => st.requests = num(&mut parts, line)?,
                "busy" => st.busy = num(&mut parts, line)?,
                "errors" => st.errors = num(&mut parts, line)?,
                "deadline_missed" => st.deadline_missed = num(&mut parts, line)?,
                "hits" => st.hits = num(&mut parts, line)?,
                "misses" => st.misses = num(&mut parts, line)?,
                "stale_hits" => st.stale_hits = num(&mut parts, line)?,
                "evictions" => st.evictions = num(&mut parts, line)?,
                "func_hits" => st.func_hits = num(&mut parts, line)?,
                "func_misses" => st.func_misses = num(&mut parts, line)?,
                "entries" => st.entries = num(&mut parts, line)?,
                "cache_bytes" => st.cache_bytes = num(&mut parts, line)?,
                "partition_hits" => st.partition_hits = num(&mut parts, line)?,
                "partition_rebuilds" => st.partition_rebuilds = num(&mut parts, line)?,
                "incr_fallbacks" => st.incr_fallbacks = num(&mut parts, line)?,
                "partition_entries" => st.partition_entries = num(&mut parts, line)?,
                "pgo_pushes" => st.pgo_pushes = num(&mut parts, line)?,
                "reoptimizations" => st.reoptimizations = num(&mut parts, line)?,
                "pgo_programs" => st.pgo_programs = num(&mut parts, line)?,
                "pgo_bytes" => st.pgo_bytes = num(&mut parts, line)?,
                "slow_requests" => st.slow_requests = num(&mut parts, line)?,
                "flight_records" => st.flight_records = num(&mut parts, line)?,
                "traces_stored" => st.traces_stored = num(&mut parts, line)?,
                "events_emitted" => st.events_emitted = num(&mut parts, line)?,
                "stage" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("bad stats line `{line}`"))?
                        .to_string();
                    let wall = num(&mut parts, line)?;
                    let work = num(&mut parts, line)?;
                    st.stages.push((name, wall, work));
                }
                "latency" => {
                    let phase = parts
                        .next()
                        .ok_or_else(|| format!("bad stats line `{line}`"))?
                        .to_string();
                    let count = num(&mut parts, line)?;
                    let sum = num(&mut parts, line)?;
                    st.latencies.push((phase, count, sum));
                }
                "quantile" => {
                    let phase = parts
                        .next()
                        .ok_or_else(|| format!("bad stats line `{line}`"))?
                        .to_string();
                    let p50 = num(&mut parts, line)?;
                    let p95 = num(&mut parts, line)?;
                    let p99 = num(&mut parts, line)?;
                    st.quantiles.push((phase, p50, p95, p99));
                }
                _ => {} // forward compatibility: ignore unknown counters
            }
        }
        Ok(st)
    }
}

/// A blocking connection to a running `hlod`. One request is in flight at
/// a time per client; open several clients for concurrency.
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Raises or lowers the largest response payload this client accepts.
    pub fn set_max_payload(&mut self, bytes: u32) {
        self.max_payload = bytes;
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ServeError> {
        frame.write_to(&mut self.stream)?;
        Ok(Frame::read_from(&mut self.stream, self.max_payload)?)
    }

    fn remote_error(frame: &Frame) -> ServeError {
        let msg = Sections::decode(&frame.payload)
            .ok()
            .and_then(|s| s.text("message").ok().map(str::to_string))
            .unwrap_or_else(|| "unspecified daemon error".to_string());
        ServeError::Remote(msg)
    }

    /// Submits one optimize request and blocks for the response.
    ///
    /// # Errors
    /// [`ServeError::Busy`] when the daemon queue is full,
    /// [`ServeError::Remote`] for request-level failures.
    pub fn optimize(&mut self, req: &OptimizeRequest) -> Result<OptimizeResponse, ServeError> {
        let reply = self.roundtrip(&Frame::new(Kind::Optimize, &req.to_sections()))?;
        match reply.kind {
            Kind::Result => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                OptimizeResponse::from_sections(&s).map_err(ServeError::Protocol)
            }
            Kind::Busy => Err(ServeError::Busy),
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Fetches daemon counters.
    ///
    /// # Errors
    /// I/O, frame or protocol failures.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let reply = self.roundtrip(&Frame::bare(Kind::Stats))?;
        match reply.kind {
            Kind::StatsReply => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                ServeStats::from_text(s.text("stats").map_err(ServeError::Protocol)?)
                    .map_err(ServeError::Protocol)
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Fetches the full Prometheus-style metrics exposition text.
    ///
    /// # Errors
    /// I/O, frame or protocol failures.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let reply = self.roundtrip(&Frame::bare(Kind::Metrics))?;
        match reply.kind {
            Kind::MetricsReply => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                Ok(s.text("metrics").map_err(ServeError::Protocol)?.to_string())
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Pushes a profile delta into the daemon's aggregate for a program.
    ///
    /// # Errors
    /// [`ServeError::Remote`] when the program key is unknown or the
    /// delta malformed (daemon state is unchanged), plus the usual I/O,
    /// frame and protocol failures.
    pub fn profile_push(
        &mut self,
        req: &ProfilePushRequest,
    ) -> Result<ProfilePushOutcome, ServeError> {
        let reply = self.roundtrip(&Frame::new(Kind::ProfilePush, &req.to_sections()))?;
        match reply.kind {
            Kind::ProfilePushAck => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                ProfilePushOutcome::from_text(s.text("ack").map_err(ServeError::Protocol)?)
                    .map_err(ServeError::Protocol)
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Fetches profile-store statistics; with `program` set, also the
    /// merged (decayed) aggregate profile text for that program.
    ///
    /// # Errors
    /// [`ServeError::Remote`] for unknown program keys, plus the usual
    /// I/O, frame and protocol failures.
    pub fn profile_stats(
        &mut self,
        program: Option<&str>,
    ) -> Result<ProfileStatsReply, ServeError> {
        let mut s = Sections::new();
        if let Some(key) = program {
            s.push("program", key.to_string());
        }
        let reply = self.roundtrip(&Frame::new(Kind::ProfileStats, &s))?;
        match reply.kind {
            Kind::ProfileStatsReply => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                Ok(ProfileStatsReply {
                    text: s.text("stats").map_err(ServeError::Protocol)?.to_string(),
                    profile: s.text("profile").ok().map(str::to_string),
                })
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Fetches the stored trace for a request previously submitted with
    /// `trace_id` set.
    ///
    /// # Errors
    /// [`ServeError::Remote`] when the id is malformed or the trace has
    /// aged out of the daemon's ring, plus the usual I/O, frame and
    /// protocol failures.
    pub fn trace_fetch(&mut self, trace_id: &str) -> Result<TraceFetchReply, ServeError> {
        let mut s = Sections::new();
        s.push("trace-id", trace_id.to_string());
        let reply = self.roundtrip(&Frame::new(Kind::TraceFetch, &s))?;
        match reply.kind {
            Kind::TraceReply => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                TraceFetchReply::from_sections(&s).map_err(ServeError::Protocol)
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Dumps the daemon's flight recorder: one event-formatted line per
    /// recent request, plus the count of requests admitted since start
    /// (records beyond the ring capacity have been overwritten).
    ///
    /// # Errors
    /// I/O, frame or protocol failures.
    pub fn flight_dump(&mut self) -> Result<(String, u64), ServeError> {
        let reply = self.roundtrip(&Frame::bare(Kind::FlightDump))?;
        match reply.kind {
            Kind::FlightReply => {
                let s = Sections::decode(&reply.payload)
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                let dump = s.text("flight").map_err(ServeError::Protocol)?.to_string();
                let admitted = s
                    .text("admitted")
                    .map_err(ServeError::Protocol)?
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::Protocol("bad admitted count".to_string()))?;
                Ok((dump, admitted))
            }
            Kind::Error => Err(Self::remote_error(&reply)),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// I/O, frame or protocol failures.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let reply = self.roundtrip(&Frame::bare(Kind::Ping))?;
        match reply.kind {
            Kind::Pong => Ok(()),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. Returns once the daemon has
    /// acknowledged; in-flight work still completes server-side.
    ///
    /// # Errors
    /// I/O, frame or protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let reply = self.roundtrip(&Frame::bare(Kind::Shutdown))?;
        match reply.kind {
            Kind::ShutdownAck => Ok(()),
            k => Err(ServeError::Protocol(format!("unexpected reply {k:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_text_parses() {
        let text = "uptime_ms 1234\nrequests 10\nbusy 1\nerrors 2\ndeadline_missed 0\n\
                    hits 6\nmisses 4\nevictions 0\nfunc_hits 40\nfunc_misses 9\nentries 4\n\
                    cache_bytes 2048\npgo_pushes 3\nreoptimizations 1\nstale_hits 1\n\
                    partition_hits 5\npartition_rebuilds 2\nincr_fallbacks 1\n\
                    partition_entries 12\npgo_programs 2\npgo_bytes 128\n\
                    slow_requests 2\nflight_records 8\ntraces_stored 3\nevents_emitted 40\n\
                    stage inline 500 1200\nstage clone 80 90\n\
                    latency queue_wait 10 90\nlatency optimize 4 44000\n\
                    quantile queue_wait 9 80 88\nfuture_counter 7\n";
        let st = ServeStats::from_text(text).unwrap();
        assert_eq!(st.uptime_ms, 1234);
        assert_eq!(st.requests, 10);
        assert_eq!(st.hits, 6);
        assert_eq!(st.entries, 4);
        assert_eq!(st.cache_bytes, 2048);
        assert_eq!(st.pgo_pushes, 3);
        assert_eq!(st.reoptimizations, 1);
        assert_eq!(st.stale_hits, 1);
        assert_eq!(st.pgo_programs, 2);
        assert_eq!(st.pgo_bytes, 128);
        assert_eq!(st.partition_hits, 5);
        assert_eq!(st.partition_rebuilds, 2);
        assert_eq!(st.incr_fallbacks, 1);
        assert_eq!(st.partition_entries, 12);
        assert_eq!(
            st.stages,
            vec![
                ("inline".to_string(), 500, 1200),
                ("clone".to_string(), 80, 90)
            ]
        );
        assert_eq!(
            st.latencies,
            vec![
                ("queue_wait".to_string(), 10, 90),
                ("optimize".to_string(), 4, 44000)
            ]
        );
        assert_eq!(st.slow_requests, 2);
        assert_eq!(st.flight_records, 8);
        assert_eq!(st.traces_stored, 3);
        assert_eq!(st.events_emitted, 40);
        assert_eq!(st.quantiles, vec![("queue_wait".to_string(), 9, 80, 88)]);
    }

    #[test]
    fn malformed_stats_line_is_an_error() {
        assert!(ServeStats::from_text("requests ten\n").is_err());
        assert!(ServeStats::from_text("stage inline 5\n").is_err());
        assert!(ServeStats::from_text("quantile queue_wait 9 80\n").is_err());
    }

    #[test]
    fn minted_trace_ids_are_valid_and_distinct() {
        let a = crate::mint_trace_id();
        let b = crate::mint_trace_id();
        assert!(crate::valid_trace_id(&a), "{a}");
        assert!(crate::valid_trace_id(&b), "{b}");
        assert_ne!(a, b);
    }
}
