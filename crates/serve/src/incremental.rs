//! Function-grain incremental recompilation: partition eligibility and
//! partition keys.
//!
//! On a whole-program cache miss the daemon does not have to re-optimize
//! the world. The optimizer's plan is partition-pure: under the
//! hierarchical budget split, each cache partition's final bodies are a
//! pure function of its own members' salted cone hashes, the option
//! fingerprint, the profile slice, and its budget share — never of other
//! partitions' contents. So the daemon keys a store of finished partition
//! bodies ([`hlo::ReusedPartition`], produced by
//! [`hlo::extract_partition`]) on exactly those inputs, probes it per
//! partition, and hands [`hlo::optimize_partial`] a plan that splices
//! every hit and re-optimizes only the partitions an edit's dependence
//! cone touched.
//!
//! Not every request is partition-cacheable. [`eligible_partitions`]
//! refuses (and the daemon falls back to a full rebuild, counted as
//! `incr-fallback`) when:
//!
//! * the request disabled incremental mode (`--no-incremental`);
//! * outlining is on (outline builds are whole-program by construction);
//! * `max_ops` is set (the operation cap is a global sequential counter,
//!   so one partition's spend changes another's plan);
//! * pass-boundary checking or tracing is requested (both compare or
//!   replay whole-program state a spliced build does not reproduce);
//! * an input function name contains `.` — clone names are dotted
//!   (`f.clone`, `f.clone.1`), so a dotted input could collide with a
//!   clone the rebuild mints;
//! * two partitions contain functions with the same bare name — clone
//!   naming scans the whole program for a free suffix, so same-named
//!   functions in different partitions could make a rebuilt partition's
//!   clone names depend on what another partition's cached entry spliced.

use crate::fault;
use hlo::{CallGraphCache, CheckLevel, HloOptions, TraceLevel};
use hlo_analysis::CallGraphPartition;
use hlo_ir::{Fnv64, Program};
use std::collections::HashMap;

/// Computes the request's cache partitions when it is partition-cacheable.
///
/// # Errors
/// A short stable reason when the request must fall back to a full,
/// non-incremental rebuild.
pub fn eligible_partitions(
    p: &Program,
    opts: &HloOptions,
    cg: &mut CallGraphCache,
) -> Result<Vec<CallGraphPartition>, &'static str> {
    if !opts.incremental {
        return Err("incremental disabled by request");
    }
    if opts.enable_outline {
        return Err("outline builds are whole-program");
    }
    if opts.max_ops.is_some() {
        return Err("max-ops is a global sequential counter");
    }
    if opts.check != CheckLevel::Off {
        return Err("checked builds compare whole-program pass state");
    }
    if opts.trace != TraceLevel::Off {
        return Err("traced builds replay whole-program provenance");
    }
    for f in &p.funcs {
        if f.name.contains('.') {
            return Err("dotted input names collide with clone naming");
        }
    }
    let partitions = cg.graph(p).cache_partitions();
    let mut owner: HashMap<&str, usize> = HashMap::new();
    for (pi, part) in partitions.iter().enumerate() {
        for &fid in &part.funcs {
            let name = p.func(fid).name.as_str();
            if *owner.entry(name).or_insert(pi) != pi {
                return Err("duplicate function names across partitions");
            }
        }
    }
    Ok(partitions)
}

/// The content key of one cache partition: an FNV hash over the sorted
/// `(function id, cone key)` member pairs plus the partition's budget
/// share basis — its input compile cost (`Σ size²` over members), which
/// is what the hierarchical [`hlo::BudgetSet`] split turns into this
/// partition's budget limit. `func_keys` are the request's per-function
/// cone keys ([`crate::cache::RequestKey::funcs`]), which already fold in
/// the option fingerprint, profile hash, and program environment — so a
/// partition key changes exactly when one of its members' dependence
/// cones, its budget share, or the request configuration does.
///
/// Member ids are part of the key on purpose: stored bodies are spliced
/// back by id, so an edit that renumbers functions (adding or removing
/// one) must miss every partition whose ids shifted.
///
/// `profile_salt` is the hash of the profile text the optimizer will
/// actually be handed. For inline-text profiles it is redundant (the cone
/// keys already fold the profile in), but `profile: server` requests key
/// their cone hashes on a fixed marker so the *program* entry stays
/// addressable across drift — without this salt, a drift-triggered
/// rebuild would splice partition bodies built against the old aggregate.
///
/// With the [`crate::fault`] stale-key fault armed, the cone-key
/// component is dropped — the planted bug the incremental fuzz oracle
/// must catch.
pub fn partition_keys(
    p: &Program,
    partitions: &[CallGraphPartition],
    func_keys: &[u64],
    profile_salt: u64,
) -> Vec<u64> {
    let stale = fault::stale_partition_keys_armed();
    partitions
        .iter()
        .map(|part| {
            let cost: u64 = part
                .funcs
                .iter()
                .map(|&f| {
                    let s = p.func(f).size();
                    s * s
                })
                .sum();
            let mut pairs: Vec<(u32, u64)> = part
                .funcs
                .iter()
                .map(|&f| {
                    let cone = if stale { 0 } else { func_keys[f.index()] };
                    (f.0, cone)
                })
                .collect();
            pairs.sort_unstable();
            let mut h = Fnv64::new();
            h.write(b"hlo-serve partition v1")
                .write_u64(cost)
                .write_u64(profile_salt);
            for (id, cone) in pairs {
                h.write_u64(u64::from(id)).write_u64(cone);
            }
            h.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::request_key;

    fn compile(srcs: &[(&str, &str)]) -> Program {
        hlo_frontc::compile(srcs).unwrap()
    }

    const THREE_MODULES: &[(&str, &str)] = &[
        (
            "a",
            "static fn a_leaf(x) { return x * 2 + 1; }
             fn a_main() { return a_leaf(4); }",
        ),
        (
            "b",
            "static fn b_leaf(x) { return x + 7; }
             fn b_main() { return b_leaf(5); }",
        ),
        (
            "c",
            "static fn c_leaf(x) { return x * x; }
             fn c_main() { return c_leaf(6); }",
        ),
    ];

    fn module_opts() -> HloOptions {
        HloOptions {
            scope: hlo::Scope::WithinModule,
            ..HloOptions::default()
        }
    }

    #[test]
    fn eligibility_refuses_unsplittable_requests() {
        let p = compile(THREE_MODULES);
        let opts = module_opts();
        let mut cg = CallGraphCache::new();
        assert!(eligible_partitions(&p, &opts, &mut cg).is_ok());
        for bad in [
            HloOptions {
                incremental: false,
                ..opts.clone()
            },
            HloOptions {
                enable_outline: true,
                ..opts.clone()
            },
            HloOptions {
                max_ops: Some(3),
                ..opts.clone()
            },
            HloOptions {
                check: CheckLevel::Strict,
                ..opts.clone()
            },
            HloOptions {
                trace: TraceLevel::Spans,
                ..opts.clone()
            },
        ] {
            assert!(eligible_partitions(&p, &bad, &mut CallGraphCache::new()).is_err());
        }
        // Same bare name in two modules: partitions are distinct, so clone
        // naming could couple them — refused.
        let dup = compile(&[
            (
                "a",
                "static fn leaf(x) { return x + 1; } fn a_main() { return leaf(1); }",
            ),
            (
                "b",
                "static fn leaf(x) { return x + 2; } fn b_main() { return leaf(2); }",
            ),
        ]);
        assert_eq!(
            eligible_partitions(&dup, &opts, &mut CallGraphCache::new()),
            Err("duplicate function names across partitions")
        );
    }

    #[test]
    fn edit_changes_exactly_the_edited_partitions_key() {
        let _window = crate::fault::exclusion();
        let opts = module_opts();
        let keys = |srcs: &[(&str, &str)]| {
            let p = compile(srcs);
            let mut cg = CallGraphCache::new();
            let rk = request_key(&p, &opts, "", &mut cg);
            let parts = eligible_partitions(&p, &opts, &mut cg).unwrap();
            partition_keys(&p, &parts, &rk.funcs, 0)
        };
        let base = keys(THREE_MODULES);
        let mut edited_srcs = THREE_MODULES.to_vec();
        edited_srcs[1] = (
            "b",
            "static fn b_leaf(x) { return x + 9; }
             fn b_main() { return b_leaf(5); }",
        );
        let edited = keys(&edited_srcs);
        assert_eq!(base.len(), edited.len());
        let changed: Vec<usize> = (0..base.len()).filter(|&i| base[i] != edited[i]).collect();
        assert_eq!(changed.len(), 1, "exactly one partition key must change");

        // A different profile salt (server-mode aggregate drift) re-keys
        // every partition.
        let p = compile(THREE_MODULES);
        let mut cg = CallGraphCache::new();
        let rk = request_key(&p, &opts, "", &mut cg);
        let parts = eligible_partitions(&p, &opts, &mut cg).unwrap();
        let salted = partition_keys(&p, &parts, &rk.funcs, 7);
        for (a, b) in base.iter().zip(&salted) {
            assert_ne!(a, b, "profile salt must re-key every partition");
        }
    }

    #[test]
    fn stale_key_fault_makes_edited_partition_collide() {
        let opts = module_opts();
        let _guard = crate::fault::FaultGuard::arm();
        let keys = |srcs: &[(&str, &str)]| {
            let p = compile(srcs);
            let mut cg = CallGraphCache::new();
            let rk = request_key(&p, &opts, "", &mut cg);
            let parts = eligible_partitions(&p, &opts, &mut cg).unwrap();
            partition_keys(&p, &parts, &rk.funcs, 0)
        };
        let base = keys(THREE_MODULES);
        let mut edited_srcs = THREE_MODULES.to_vec();
        edited_srcs[1] = (
            "b",
            "static fn b_leaf(x) { return x + 9; }
             fn b_main() { return b_leaf(5); }",
        );
        // Same shape, different body: under the fault the keys collide —
        // the stale-reuse bug the fuzz oracle must detect.
        assert_eq!(base, keys(&edited_srcs));
    }
}
