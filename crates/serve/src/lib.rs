#![warn(missing_docs)]
//! **hlo-serve** — the persistent optimization service.
//!
//! The batch `hloc` driver re-optimizes the world on every invocation;
//! build services don't. This crate turns the optimizer into a long-lived
//! daemon (`hlod`) that answers framed requests over TCP and never
//! re-optimizes a function it has already seen:
//!
//! * [`wire`] — the length-prefixed, versioned frame protocol (std-only).
//! * [`cache`] — the content-addressed result cache: whole-program hits
//!   are pure lookups; per-function *cone keys* (function hash + option
//!   fingerprint + inline-reachable callee hashes via
//!   [`hlo::CallGraphCache`]) make invalidation exactly as big as the
//!   dependence cone of an edit.
//! * [`server`] — the daemon: a bounded-queue session scheduler over a
//!   fixed worker pool, per-request deadlines, `Busy` backpressure and
//!   graceful drain-on-shutdown.
//! * [`client`] — the blocking client `hloc serve` / `hloc remote` use.
//!
//! A request carries MinC sources or IR text plus [`HloOptions`]; the
//! response carries optimized IR text, the [`HloReport`] and the cache
//! outcome. Warm responses are byte-identical to cold ones and to an
//! in-process [`hlo::optimize`] call — proved suite-wide by
//! `cargo servebench` (see `crates/bench/src/bin/serve_bench.rs`).

pub mod cache;
pub mod client;
pub mod server;
pub mod wire;

pub use cache::{CacheOutcome, CacheStats, CachedResult, RequestKey, ResultCache};
pub use client::{Client, ServeError, ServeStats};
pub use server::{ServeConfig, Server};

use hlo::{HloOptions, HloReport};
use wire::Sections;

/// What an optimize request carries to be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// MinC sources as `(module name, source)` pairs — the `build` path.
    Minc(Vec<(String, String)>),
    /// Already-dumped IR text — the isom-style `opt` path.
    Ir(String),
}

/// One optimize request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Optimizer options (serialized as [`HloOptions::to_text`]).
    pub options: HloOptions,
    /// What to optimize.
    pub source: SourceKind,
    /// Optional profile database text ([`hlo_profile::ProfileDb::to_text`]).
    pub profile: Option<String>,
    /// Per-request deadline in milliseconds, measured from enqueue. A
    /// request still queued when it expires is answered with an error
    /// instead of being optimized.
    pub deadline_ms: Option<u64>,
    /// Execute the optimized program once with this argument on the
    /// daemon's bytecode tier after optimizing. The outcome lands in the
    /// response's `train` line and the run feeds the daemon's per-tier VM
    /// metrics (`hloc remote metrics`). A trapping run is reported, never
    /// an error.
    pub train_arg: Option<i64>,
}

impl OptimizeRequest {
    /// A request with default options and no profile or deadline.
    pub fn from_minc(sources: Vec<(String, String)>) -> Self {
        OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Minc(sources),
            profile: None,
            deadline_ms: None,
            train_arg: None,
        }
    }

    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("options", self.options.to_text());
        match &self.source {
            SourceKind::Minc(mods) => {
                for (name, src) in mods {
                    s.push(&format!("minc:{name}"), src.as_str());
                }
            }
            SourceKind::Ir(text) => {
                s.push("ir", text.as_str());
            }
        }
        if let Some(p) = &self.profile {
            s.push("profile", p.as_str());
        }
        if let Some(d) = self.deadline_ms {
            s.push("deadline_ms", d.to_string());
        }
        if let Some(t) = self.train_arg {
            s.push("train", t.to_string());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes missing/duplicate sources or malformed options.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let options = HloOptions::from_text(s.text("options")?)?;
        let mut minc: Vec<(String, String)> = Vec::new();
        for (name, body) in s.iter() {
            if let Some(module) = name.strip_prefix("minc:") {
                let src = std::str::from_utf8(body)
                    .map_err(|_| format!("module `{module}` is not UTF-8"))?;
                minc.push((module.to_string(), src.to_string()));
            }
        }
        let source = match (minc.is_empty(), s.get("ir")) {
            (false, None) => SourceKind::Minc(minc),
            (true, Some(_)) => SourceKind::Ir(s.text("ir")?.to_string()),
            (true, None) => return Err("request has neither `minc:*` nor `ir` sections".into()),
            (false, Some(_)) => return Err("request has both `minc:*` and `ir` sections".into()),
        };
        let profile = match s.get("profile") {
            Some(_) => Some(s.text("profile")?.to_string()),
            None => None,
        };
        let deadline_ms = match s.get("deadline_ms") {
            Some(_) => Some(
                s.text("deadline_ms")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad deadline_ms".to_string())?,
            ),
            None => None,
        };
        let train_arg = match s.get("train") {
            Some(_) => Some(
                s.text("train")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad train arg".to_string())?,
            ),
            None => None,
        };
        Ok(OptimizeRequest {
            options,
            source,
            profile,
            deadline_ms,
            train_arg,
        })
    }
}

/// A successful optimize response.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResponse {
    /// Optimized program text — byte-identical whether it came from the
    /// cache or a fresh run.
    pub ir_text: String,
    /// The (possibly cached) optimization report. Diagnostics are elided
    /// in transit; see [`HloReport::to_text`].
    pub report: HloReport,
    /// What the cache did with this request.
    pub outcome: CacheOutcome,
    /// Outcome of the request's training run (`train_arg`): a one-line
    /// summary of the bytecode-tier execution, or the trap it hit.
    /// `None` when the request asked for no training run.
    pub train: Option<String>,
}

impl OptimizeResponse {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("ir", self.ir_text.as_str());
        s.push("report", self.report.to_text());
        s.push(
            "cache",
            format!(
                "hit {}\nfunc_hits {}\nfunc_misses {}\n",
                self.outcome.hit as u8, self.outcome.func_hits, self.outcome.func_misses
            ),
        );
        if let Some(t) = &self.train {
            s.push("train", t.as_str());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the first missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let ir_text = s.text("ir")?.to_string();
        let report = HloReport::from_text(s.text("report")?)?;
        let mut outcome = CacheOutcome::default();
        for line in s.text("cache")?.lines() {
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "hit" => outcome.hit = val == "1",
                "func_hits" => {
                    outcome.func_hits = val.parse().map_err(|_| "bad func_hits")?;
                }
                "func_misses" => {
                    outcome.func_misses = val.parse().map_err(|_| "bad func_misses")?;
                }
                _ => {}
            }
        }
        let train = match s.get("train") {
            Some(_) => Some(s.text("train")?.to_string()),
            None => None,
        };
        Ok(OptimizeResponse {
            ir_text,
            report,
            outcome,
            train,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sections_roundtrip() {
        let req = OptimizeRequest {
            options: HloOptions {
                budget_percent: 50,
                ..Default::default()
            },
            source: SourceKind::Minc(vec![
                ("a".to_string(), "fn main() { return util(); }".to_string()),
                ("b".to_string(), "fn util() { return 7; }".to_string()),
            ]),
            profile: Some("func a main 1\nblocks 1\nend\n".to_string()),
            deadline_ms: Some(250),
            train_arg: Some(12),
        };
        let back = OptimizeRequest::from_sections(&req.to_sections()).unwrap();
        assert_eq!(req, back);

        let ir_req = OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Ir("hlo-ir v1\nentry 0\n".to_string()),
            profile: None,
            deadline_ms: None,
            train_arg: None,
        };
        let back = OptimizeRequest::from_sections(&ir_req.to_sections()).unwrap();
        assert_eq!(ir_req, back);
    }

    #[test]
    fn request_without_source_is_rejected() {
        let mut s = Sections::new();
        s.push("options", HloOptions::default().to_text());
        assert!(OptimizeRequest::from_sections(&s).is_err());
        s.push("ir", "hlo-ir v1\n");
        s.push("minc:m", "fn main() { return 0; }");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn response_sections_roundtrip() {
        let resp = OptimizeResponse {
            ir_text: "hlo-ir v1\nentry 0\n".to_string(),
            report: HloReport {
                inlines: 3,
                ..Default::default()
            },
            outcome: CacheOutcome {
                hit: true,
                func_hits: 5,
                func_misses: 2,
            },
            train: Some("ret 3 retired 42 output 1 checksum 0x9".to_string()),
        };
        let back = OptimizeResponse::from_sections(&resp.to_sections()).unwrap();
        assert_eq!(resp, back);
    }
}
