#![warn(missing_docs)]
//! **hlo-serve** — the persistent optimization service.
//!
//! The batch `hloc` driver re-optimizes the world on every invocation;
//! build services don't. This crate turns the optimizer into a long-lived
//! daemon (`hlod`) that answers framed requests over TCP and never
//! re-optimizes a function it has already seen:
//!
//! * [`wire`] — the length-prefixed, versioned frame protocol (std-only).
//! * [`cache`] — the content-addressed result cache: whole-program hits
//!   are pure lookups; per-function *cone keys* (function hash + option
//!   fingerprint + inline-reachable callee hashes via
//!   [`hlo::CallGraphCache`]) make invalidation exactly as big as the
//!   dependence cone of an edit, and a partition store keeps finished
//!   per-partition bodies for function-grain reuse.
//! * [`incremental`] — function-grain incremental recompilation: on a
//!   whole-program miss, probe the partition store per call-graph
//!   partition and re-optimize only the partitions an edit touched,
//!   splicing every other partition's bodies byte-for-byte through
//!   [`hlo::optimize_partial`].
//! * [`server`] — the daemon: a bounded-queue session scheduler over a
//!   fixed worker pool, per-request deadlines, `Busy` backpressure and
//!   graceful drain-on-shutdown.
//! * [`client`] — the blocking client `hloc serve` / `hloc remote` use.
//! * [`fault`] — the planted stale-cone-key fault `cargo fuzzgate` uses
//!   to prove the incremental edit oracle can catch stale reuse.
//!
//! A request carries MinC sources or IR text plus [`HloOptions`]; the
//! response carries optimized IR text, the [`HloReport`] and the cache
//! outcome. Warm responses are byte-identical to cold ones and to an
//! in-process [`hlo::optimize`] call — proved suite-wide by
//! `cargo servebench` (see `crates/bench/src/bin/serve_bench.rs`).

pub mod cache;
pub mod client;
pub mod fault;
pub mod incremental;
pub mod server;
pub mod wire;

pub use cache::{CacheOutcome, CacheStats, CachedResult, RequestKey, ResultCache};
pub use client::{Client, ServeError, ServeStats};
pub use server::{ServeConfig, Server};

use hlo::{HloOptions, HloReport};
use wire::Sections;

/// What an optimize request carries to be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// MinC sources as `(module name, source)` pairs — the `build` path.
    Minc(Vec<(String, String)>),
    /// Already-dumped IR text — the isom-style `opt` path.
    Ir(String),
}

/// Where an optimize request's profile comes from.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ProfileSpec {
    /// Optimize profile-free.
    #[default]
    None,
    /// Profile database text shipped inline with the request
    /// ([`hlo_profile::ProfileDb::to_text`]).
    Text(String),
    /// Continuous PGO: resolve the daemon's merged per-program aggregate
    /// at dequeue time. A cached result whose build profile has since
    /// drifted past the daemon's threshold is treated as a miss and
    /// re-optimized.
    Server,
}

impl ProfileSpec {
    /// True for [`ProfileSpec::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, ProfileSpec::None)
    }
}

/// One optimize request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Optimizer options (serialized as [`HloOptions::to_text`]).
    pub options: HloOptions,
    /// What to optimize.
    pub source: SourceKind,
    /// Profile source for this request.
    pub profile: ProfileSpec,
    /// Per-request deadline in milliseconds, measured from enqueue. A
    /// request still queued when it expires is answered with an error
    /// instead of being optimized.
    pub deadline_ms: Option<u64>,
    /// Execute the optimized program once with this argument on the
    /// daemon's bytecode tier after optimizing. The outcome lands in the
    /// response's `train` line and the run feeds the daemon's per-tier VM
    /// metrics (`hloc remote metrics`). A trapping run is reported, never
    /// an error.
    pub train_arg: Option<i64>,
}

impl OptimizeRequest {
    /// A request with default options and no profile or deadline.
    pub fn from_minc(sources: Vec<(String, String)>) -> Self {
        OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Minc(sources),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
        }
    }

    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("options", self.options.to_text());
        match &self.source {
            SourceKind::Minc(mods) => {
                for (name, src) in mods {
                    s.push(&format!("minc:{name}"), src.as_str());
                }
            }
            SourceKind::Ir(text) => {
                s.push("ir", text.as_str());
            }
        }
        match &self.profile {
            ProfileSpec::None => {}
            ProfileSpec::Text(p) => {
                s.push("profile", p.as_str());
            }
            ProfileSpec::Server => {
                s.push("profile-mode", "server");
            }
        }
        if let Some(d) = self.deadline_ms {
            s.push("deadline_ms", d.to_string());
        }
        if let Some(t) = self.train_arg {
            s.push("train", t.to_string());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes missing/duplicate sources or malformed options.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let options = HloOptions::from_text(s.text("options")?)?;
        let mut minc: Vec<(String, String)> = Vec::new();
        for (name, body) in s.iter() {
            if let Some(module) = name.strip_prefix("minc:") {
                let src = std::str::from_utf8(body)
                    .map_err(|_| format!("module `{module}` is not UTF-8"))?;
                minc.push((module.to_string(), src.to_string()));
            }
        }
        let source = match (minc.is_empty(), s.get("ir")) {
            (false, None) => SourceKind::Minc(minc),
            (true, Some(_)) => SourceKind::Ir(s.text("ir")?.to_string()),
            (true, None) => return Err("request has neither `minc:*` nor `ir` sections".into()),
            (false, Some(_)) => return Err("request has both `minc:*` and `ir` sections".into()),
        };
        let profile = match (s.get("profile"), s.get("profile-mode")) {
            (Some(_), Some(_)) => {
                return Err("request has both `profile` and `profile-mode` sections".into())
            }
            (Some(_), None) => ProfileSpec::Text(s.text("profile")?.to_string()),
            (None, Some(_)) => match s.text("profile-mode")?.trim() {
                "server" => ProfileSpec::Server,
                other => return Err(format!("unknown profile-mode `{other}`")),
            },
            (None, None) => ProfileSpec::None,
        };
        let deadline_ms = match s.get("deadline_ms") {
            Some(_) => Some(
                s.text("deadline_ms")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad deadline_ms".to_string())?,
            ),
            None => None,
        };
        let train_arg = match s.get("train") {
            Some(_) => Some(
                s.text("train")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad train arg".to_string())?,
            ),
            None => None,
        };
        Ok(OptimizeRequest {
            options,
            source,
            profile,
            deadline_ms,
            train_arg,
        })
    }
}

/// A successful optimize response.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResponse {
    /// Optimized program text — byte-identical whether it came from the
    /// cache or a fresh run.
    pub ir_text: String,
    /// The (possibly cached) optimization report. Diagnostics are elided
    /// in transit; see [`HloReport::to_text`].
    pub report: HloReport,
    /// What the cache did with this request.
    pub outcome: CacheOutcome,
    /// Outcome of the request's training run (`train_arg`): a one-line
    /// summary of the bytecode-tier execution, or the trap it hit.
    /// `None` when the request asked for no training run.
    pub train: Option<String>,
    /// Continuous-PGO provenance (`profile: server` requests that found a
    /// cached entry): the drift report summary explaining why the entry
    /// was served or rebuilt. `None` otherwise.
    pub pgo: Option<String>,
}

impl OptimizeResponse {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("ir", self.ir_text.as_str());
        s.push("report", self.report.to_text());
        s.push("cache", self.outcome.to_text());
        if let Some(t) = &self.train {
            s.push("train", t.as_str());
        }
        if let Some(p) = &self.pgo {
            s.push("pgo", p.as_str());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the first missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let ir_text = s.text("ir")?.to_string();
        let report = HloReport::from_text(s.text("report")?)?;
        let outcome = CacheOutcome::from_text(s.text("cache")?)?;
        let train = match s.get("train") {
            Some(_) => Some(s.text("train")?.to_string()),
            None => None,
        };
        let pgo = match s.get("pgo") {
            Some(_) => Some(s.text("pgo")?.to_string()),
            None => None,
        };
        Ok(OptimizeResponse {
            ir_text,
            report,
            outcome,
            train,
            pgo,
        })
    }
}

/// One `profile-push` request: a client streams one [`ProfileDb`
/// text](hlo_profile::ProfileDb::to_text) delta (typically straight out
/// of `ProfileDb::from_vm_trace`) into the daemon's aggregate for
/// `program`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePushRequest {
    /// Program key: 16 lowercase hex digits of `hlo_pgo::program_key`.
    /// The daemon refuses pushes for programs it has never optimized.
    pub program: String,
    /// The profile delta, in `ProfileDb::to_text` form.
    pub delta: String,
    /// Decay generations to advance **before** merging the delta (`0` =
    /// merge into the current generation). Advancing halves every
    /// resident count per step, so this delta outweighs the past.
    pub advance: u64,
}

impl ProfilePushRequest {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("program", self.program.as_str());
        s.push("delta", self.delta.as_str());
        if self.advance > 0 {
            s.push("advance", self.advance.to_string());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let program = s.text("program")?.trim().to_string();
        let delta = s.text("delta")?.to_string();
        let advance = match s.get("advance") {
            Some(_) => s
                .text("advance")?
                .trim()
                .parse()
                .map_err(|_| "bad advance count".to_string())?,
            None => 0,
        };
        Ok(ProfilePushRequest {
            program,
            delta,
            advance,
        })
    }
}

/// What an accepted `profile-push` did to the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilePushOutcome {
    /// Generation the delta landed in.
    pub generation: u64,
    /// Total pushes into this program's aggregate, including this one.
    pub pushes: u64,
    /// Functions in the merged aggregate.
    pub functions: u64,
    /// Estimated resident bytes of the aggregate.
    pub resident_bytes: u64,
}

impl ProfilePushOutcome {
    /// The `ack` section body.
    pub fn to_text(&self) -> String {
        format!(
            "generation {}\npushes {}\nfunctions {}\nbytes {}\n",
            self.generation, self.pushes, self.functions, self.resident_bytes
        )
    }

    /// Parses an `ack` section body (unknown lines are ignored for
    /// forward compatibility).
    ///
    /// # Errors
    /// Describes the malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut out = ProfilePushOutcome::default();
        for line in text.lines() {
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            let parse = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad ack line `{line}`"))
            };
            match key {
                "generation" => out.generation = parse(val)?,
                "pushes" => out.pushes = parse(val)?,
                "functions" => out.functions = parse(val)?,
                "bytes" => out.resident_bytes = parse(val)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Reply to a `profile-stats` request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileStatsReply {
    /// Store counters, one `key value` per line: `programs`, `bytes`,
    /// `pushes`, `evictions`, plus one
    /// `program <key> <generation> <pushes> <functions> <bytes>` line per
    /// resident aggregate (sorted by key).
    pub text: String,
    /// When the request named a program: its merged aggregate in
    /// canonical `ProfileDb::to_text` form (empty string when the
    /// aggregate holds no pushes yet).
    pub profile: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sections_roundtrip() {
        let req = OptimizeRequest {
            options: HloOptions {
                budget_percent: 50,
                ..Default::default()
            },
            source: SourceKind::Minc(vec![
                ("a".to_string(), "fn main() { return util(); }".to_string()),
                ("b".to_string(), "fn util() { return 7; }".to_string()),
            ]),
            profile: ProfileSpec::Text("func a main 1\nblocks 1\nend\n".to_string()),
            deadline_ms: Some(250),
            train_arg: Some(12),
        };
        let back = OptimizeRequest::from_sections(&req.to_sections()).unwrap();
        assert_eq!(req, back);

        let ir_req = OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Ir("hlo-ir v1\nentry 0\n".to_string()),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
        };
        let back = OptimizeRequest::from_sections(&ir_req.to_sections()).unwrap();
        assert_eq!(ir_req, back);
    }

    #[test]
    fn server_profile_mode_roundtrips() {
        let req = OptimizeRequest {
            profile: ProfileSpec::Server,
            ..OptimizeRequest::from_minc(vec![(
                "m".to_string(),
                "fn main() { return 0; }".to_string(),
            )])
        };
        let s = req.to_sections();
        assert_eq!(s.text("profile-mode").unwrap(), "server");
        assert_eq!(OptimizeRequest::from_sections(&s).unwrap(), req);

        // Unknown modes and profile+mode conflicts are rejected.
        let mut bad = req.to_sections();
        bad.push("profile", "func m f 1\nblocks 1\nend\n");
        assert!(OptimizeRequest::from_sections(&bad).is_err());
        let mut s = OptimizeRequest::from_minc(vec![(
            "m".to_string(),
            "fn main() { return 0; }".to_string(),
        )])
        .to_sections();
        s.push("profile-mode", "client");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn push_request_and_ack_roundtrip() {
        let req = ProfilePushRequest {
            program: "00000000000000aa".to_string(),
            delta: "func m f 1\nblocks 1\nend\n".to_string(),
            advance: 3,
        };
        let back = ProfilePushRequest::from_sections(&req.to_sections()).unwrap();
        assert_eq!(req, back);
        let no_advance = ProfilePushRequest {
            advance: 0,
            ..req.clone()
        };
        assert!(no_advance.to_sections().get("advance").is_none());
        assert_eq!(
            ProfilePushRequest::from_sections(&no_advance.to_sections()).unwrap(),
            no_advance
        );

        let ack = ProfilePushOutcome {
            generation: 2,
            pushes: 7,
            functions: 3,
            resident_bytes: 512,
        };
        assert_eq!(ProfilePushOutcome::from_text(&ack.to_text()).unwrap(), ack);
        assert!(ProfilePushOutcome::from_text("pushes seven\n").is_err());
    }

    #[test]
    fn request_without_source_is_rejected() {
        let mut s = Sections::new();
        s.push("options", HloOptions::default().to_text());
        assert!(OptimizeRequest::from_sections(&s).is_err());
        s.push("ir", "hlo-ir v1\n");
        s.push("minc:m", "fn main() { return 0; }");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn response_sections_roundtrip() {
        let resp = OptimizeResponse {
            ir_text: "hlo-ir v1\nentry 0\n".to_string(),
            report: HloReport {
                inlines: 3,
                ..Default::default()
            },
            outcome: CacheOutcome {
                hit: true,
                func_hits: 5,
                func_misses: 2,
                stale: false,
                drift_millis: 40,
                partition_hits: 2,
                partition_rebuilds: 1,
                incr_fallback: false,
            },
            train: Some("ret 3 retired 42 output 1 checksum 0x9".to_string()),
            pgo: Some("pgo-profile-stable score 40 (l1 40 churn 0 threshold 250)".to_string()),
        };
        let back = OptimizeResponse::from_sections(&resp.to_sections()).unwrap();
        assert_eq!(resp, back);
    }
}
