#![warn(missing_docs)]
//! **hlo-serve** — the persistent optimization service.
//!
//! The batch `hloc` driver re-optimizes the world on every invocation;
//! build services don't. This crate turns the optimizer into a long-lived
//! daemon (`hlod`) that answers framed requests over TCP and never
//! re-optimizes a function it has already seen:
//!
//! * [`wire`] — the length-prefixed, versioned frame protocol (std-only).
//! * [`cache`] — the content-addressed result cache: whole-program hits
//!   are pure lookups; per-function *cone keys* (function hash + option
//!   fingerprint + inline-reachable callee hashes via
//!   [`hlo::CallGraphCache`]) make invalidation exactly as big as the
//!   dependence cone of an edit, and a partition store keeps finished
//!   per-partition bodies for function-grain reuse.
//! * [`incremental`] — function-grain incremental recompilation: on a
//!   whole-program miss, probe the partition store per call-graph
//!   partition and re-optimize only the partitions an edit touched,
//!   splicing every other partition's bodies byte-for-byte through
//!   [`hlo::optimize_partial`].
//! * [`server`] — the daemon: a bounded-queue session scheduler over a
//!   fixed worker pool, per-request deadlines, `Busy` backpressure and
//!   graceful drain-on-shutdown.
//! * [`client`] — the blocking client `hloc serve` / `hloc remote` use.
//! * [`fault`] — the planted stale-cone-key fault `cargo fuzzgate` uses
//!   to prove the incremental edit oracle can catch stale reuse.
//!
//! A request carries MinC sources or IR text plus [`HloOptions`]; the
//! response carries optimized IR text, the [`HloReport`] and the cache
//! outcome. Warm responses are byte-identical to cold ones and to an
//! in-process [`hlo::optimize`] call — proved suite-wide by
//! `cargo servebench` (see `crates/bench/src/bin/serve_bench.rs`).

pub mod cache;
pub mod client;
pub mod fault;
pub mod incremental;
pub mod server;
pub mod wire;

pub use cache::{CacheOutcome, CacheStats, CachedResult, RequestKey, ResultCache};
pub use client::{mint_trace_id, Client, ServeError, ServeStats};
pub use server::{ServeConfig, Server};

use hlo::{HloOptions, HloReport};
use wire::Sections;

/// What an optimize request carries to be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// MinC sources as `(module name, source)` pairs — the `build` path.
    Minc(Vec<(String, String)>),
    /// Already-dumped IR text — the isom-style `opt` path.
    Ir(String),
}

/// Where an optimize request's profile comes from.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ProfileSpec {
    /// Optimize profile-free.
    #[default]
    None,
    /// Profile database text shipped inline with the request
    /// ([`hlo_profile::ProfileDb::to_text`]).
    Text(String),
    /// Continuous PGO: resolve the daemon's merged per-program aggregate
    /// at dequeue time. A cached result whose build profile has since
    /// drifted past the daemon's threshold is treated as a miss and
    /// re-optimized.
    Server,
}

impl ProfileSpec {
    /// True for [`ProfileSpec::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, ProfileSpec::None)
    }
}

/// One optimize request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Optimizer options (serialized as [`HloOptions::to_text`]).
    pub options: HloOptions,
    /// What to optimize.
    pub source: SourceKind,
    /// Profile source for this request.
    pub profile: ProfileSpec,
    /// Per-request deadline in milliseconds, measured from enqueue. A
    /// request still queued when it expires is answered with an error
    /// instead of being optimized.
    pub deadline_ms: Option<u64>,
    /// Execute the optimized program once with this argument on the
    /// daemon's bytecode tier after optimizing. The outcome lands in the
    /// response's `train` line and the run feeds the daemon's per-tier VM
    /// metrics (`hloc remote metrics`). A trapping run is reported, never
    /// an error.
    pub train_arg: Option<i64>,
    /// Request-scoped trace id: 16 lowercase hex digits minted by the
    /// client. When present, the daemon threads a real [`hlo::Tracer`]
    /// through the request's phases and stores the rendered span tree /
    /// decision report for a later `trace-fetch`. `None` keeps tracing
    /// off for this request.
    pub trace_id: Option<String>,
}

/// True for a well-formed trace id: exactly 16 lowercase hex digits.
pub fn valid_trace_id(s: &str) -> bool {
    s.len() == 16
        && s.chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

impl OptimizeRequest {
    /// A request with default options and no profile or deadline.
    pub fn from_minc(sources: Vec<(String, String)>) -> Self {
        OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Minc(sources),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
            trace_id: None,
        }
    }

    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("options", self.options.to_text());
        match &self.source {
            SourceKind::Minc(mods) => {
                for (name, src) in mods {
                    s.push(&format!("minc:{name}"), src.as_str());
                }
            }
            SourceKind::Ir(text) => {
                s.push("ir", text.as_str());
            }
        }
        match &self.profile {
            ProfileSpec::None => {}
            ProfileSpec::Text(p) => {
                s.push("profile", p.as_str());
            }
            ProfileSpec::Server => {
                s.push("profile-mode", "server");
            }
        }
        if let Some(d) = self.deadline_ms {
            s.push("deadline_ms", d.to_string());
        }
        if let Some(t) = self.train_arg {
            s.push("train", t.to_string());
        }
        if let Some(id) = &self.trace_id {
            s.push("trace-id", id.as_str());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes missing/duplicate sources or malformed options.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let options = HloOptions::from_text(s.text("options")?)?;
        let mut minc: Vec<(String, String)> = Vec::new();
        for (name, body) in s.iter() {
            if let Some(module) = name.strip_prefix("minc:") {
                let src = std::str::from_utf8(body)
                    .map_err(|_| format!("module `{module}` is not UTF-8"))?;
                minc.push((module.to_string(), src.to_string()));
            }
        }
        let source = match (minc.is_empty(), s.get("ir")) {
            (false, None) => SourceKind::Minc(minc),
            (true, Some(_)) => SourceKind::Ir(s.text("ir")?.to_string()),
            (true, None) => return Err("request has neither `minc:*` nor `ir` sections".into()),
            (false, Some(_)) => return Err("request has both `minc:*` and `ir` sections".into()),
        };
        let profile = match (s.get("profile"), s.get("profile-mode")) {
            (Some(_), Some(_)) => {
                return Err("request has both `profile` and `profile-mode` sections".into())
            }
            (Some(_), None) => ProfileSpec::Text(s.text("profile")?.to_string()),
            (None, Some(_)) => match s.text("profile-mode")?.trim() {
                "server" => ProfileSpec::Server,
                other => return Err(format!("unknown profile-mode `{other}`")),
            },
            (None, None) => ProfileSpec::None,
        };
        let deadline_ms = match s.get("deadline_ms") {
            Some(_) => Some(
                s.text("deadline_ms")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad deadline_ms".to_string())?,
            ),
            None => None,
        };
        let train_arg = match s.get("train") {
            Some(_) => Some(
                s.text("train")?
                    .trim()
                    .parse()
                    .map_err(|_| "bad train arg".to_string())?,
            ),
            None => None,
        };
        let trace_id = match s.get("trace-id") {
            Some(_) => {
                let id = s.text("trace-id")?.trim().to_string();
                if !valid_trace_id(&id) {
                    return Err(format!("bad trace id `{id}` (want 16 lowercase hex)"));
                }
                Some(id)
            }
            None => None,
        };
        Ok(OptimizeRequest {
            options,
            source,
            profile,
            deadline_ms,
            train_arg,
            trace_id,
        })
    }
}

/// A successful optimize response.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResponse {
    /// Optimized program text — byte-identical whether it came from the
    /// cache or a fresh run.
    pub ir_text: String,
    /// The (possibly cached) optimization report. Diagnostics are elided
    /// in transit; see [`HloReport::to_text`].
    pub report: HloReport,
    /// What the cache did with this request.
    pub outcome: CacheOutcome,
    /// Outcome of the request's training run (`train_arg`): a one-line
    /// summary of the bytecode-tier execution, or the trap it hit.
    /// `None` when the request asked for no training run.
    pub train: Option<String>,
    /// Continuous-PGO provenance (`profile: server` requests that found a
    /// cached entry): the drift report summary explaining why the entry
    /// was served or rebuilt. `None` otherwise.
    pub pgo: Option<String>,
    /// Echo of the request's trace id, confirming the daemon recorded a
    /// trace retrievable via `trace-fetch`. `None` for untraced requests.
    pub trace_id: Option<String>,
}

impl OptimizeResponse {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("ir", self.ir_text.as_str());
        s.push("report", self.report.to_text());
        s.push("cache", self.outcome.to_text());
        if let Some(t) = &self.train {
            s.push("train", t.as_str());
        }
        if let Some(p) = &self.pgo {
            s.push("pgo", p.as_str());
        }
        if let Some(id) = &self.trace_id {
            s.push("trace-id", id.as_str());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the first missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let ir_text = s.text("ir")?.to_string();
        let report = HloReport::from_text(s.text("report")?)?;
        let outcome = CacheOutcome::from_text(s.text("cache")?)?;
        let train = match s.get("train") {
            Some(_) => Some(s.text("train")?.to_string()),
            None => None,
        };
        let pgo = match s.get("pgo") {
            Some(_) => Some(s.text("pgo")?.to_string()),
            None => None,
        };
        let trace_id = match s.get("trace-id") {
            Some(_) => Some(s.text("trace-id")?.trim().to_string()),
            None => None,
        };
        Ok(OptimizeResponse {
            ir_text,
            report,
            outcome,
            train,
            pgo,
            trace_id,
        })
    }
}

/// Reply to a `trace-fetch` request: the rendered artifacts the daemon
/// stored for one traced request. All fields are *content* — rendered
/// from caller-supplied durations, never from a clock — so two daemons
/// doing the same work reply byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFetchReply {
    /// The trace id the artifacts belong to.
    pub trace_id: String,
    /// Indented span-tree text ([`hlo::Tracer::span_tree_text`]).
    pub spans: String,
    /// Sorted decision report ([`hlo::Tracer::decision_report`]).
    pub decisions: String,
    /// Chrome trace-event JSON, valid per [`hlo::validate_chrome_trace`].
    pub chrome: String,
    /// The request's cache outcome ([`CacheOutcome::to_text`]).
    pub cache: String,
    /// Total request wall time in microseconds — by construction the sum
    /// of the phase durations below.
    pub wall_us: u64,
    /// Measured `(phase, microseconds)` pairs in phase order.
    pub phases: Vec<(String, u64)>,
}

impl TraceFetchReply {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("trace-id", self.trace_id.as_str());
        s.push("spans", self.spans.as_str());
        s.push("decisions", self.decisions.as_str());
        s.push("chrome", self.chrome.as_str());
        s.push("cache", self.cache.as_str());
        s.push("wall_us", self.wall_us.to_string());
        let mut phases = String::new();
        for (name, us) in &self.phases {
            phases.push_str(&format!("{name} {us}\n"));
        }
        s.push("phases", phases);
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the first missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let mut phases = Vec::new();
        for line in s.text("phases")?.lines() {
            let (name, us) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad phase line `{line}`"))?;
            phases.push((
                name.to_string(),
                us.parse().map_err(|_| format!("bad phase line `{line}`"))?,
            ));
        }
        Ok(TraceFetchReply {
            trace_id: s.text("trace-id")?.trim().to_string(),
            spans: s.text("spans")?.to_string(),
            decisions: s.text("decisions")?.to_string(),
            chrome: s.text("chrome")?.to_string(),
            cache: s.text("cache")?.to_string(),
            wall_us: s
                .text("wall_us")?
                .trim()
                .parse()
                .map_err(|_| "bad wall_us".to_string())?,
            phases,
        })
    }
}

/// One `profile-push` request: a client streams one [`ProfileDb`
/// text](hlo_profile::ProfileDb::to_text) delta (typically straight out
/// of `ProfileDb::from_vm_trace`) into the daemon's aggregate for
/// `program`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePushRequest {
    /// Program key: 16 lowercase hex digits of `hlo_pgo::program_key`.
    /// The daemon refuses pushes for programs it has never optimized.
    pub program: String,
    /// The profile delta, in `ProfileDb::to_text` form.
    pub delta: String,
    /// Decay generations to advance **before** merging the delta (`0` =
    /// merge into the current generation). Advancing halves every
    /// resident count per step, so this delta outweighs the past.
    pub advance: u64,
}

impl ProfilePushRequest {
    /// Encodes to wire sections.
    pub fn to_sections(&self) -> Sections {
        let mut s = Sections::new();
        s.push("program", self.program.as_str());
        s.push("delta", self.delta.as_str());
        if self.advance > 0 {
            s.push("advance", self.advance.to_string());
        }
        s
    }

    /// Decodes from wire sections.
    ///
    /// # Errors
    /// Describes the missing or malformed section.
    pub fn from_sections(s: &Sections) -> Result<Self, String> {
        let program = s.text("program")?.trim().to_string();
        let delta = s.text("delta")?.to_string();
        let advance = match s.get("advance") {
            Some(_) => s
                .text("advance")?
                .trim()
                .parse()
                .map_err(|_| "bad advance count".to_string())?,
            None => 0,
        };
        Ok(ProfilePushRequest {
            program,
            delta,
            advance,
        })
    }
}

/// What an accepted `profile-push` did to the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilePushOutcome {
    /// Generation the delta landed in.
    pub generation: u64,
    /// Total pushes into this program's aggregate, including this one.
    pub pushes: u64,
    /// Functions in the merged aggregate.
    pub functions: u64,
    /// Estimated resident bytes of the aggregate.
    pub resident_bytes: u64,
}

impl ProfilePushOutcome {
    /// The `ack` section body.
    pub fn to_text(&self) -> String {
        format!(
            "generation {}\npushes {}\nfunctions {}\nbytes {}\n",
            self.generation, self.pushes, self.functions, self.resident_bytes
        )
    }

    /// Parses an `ack` section body (unknown lines are ignored for
    /// forward compatibility).
    ///
    /// # Errors
    /// Describes the malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut out = ProfilePushOutcome::default();
        for line in text.lines() {
            let (key, val) = line.split_once(' ').unwrap_or((line, ""));
            let parse = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad ack line `{line}`"))
            };
            match key {
                "generation" => out.generation = parse(val)?,
                "pushes" => out.pushes = parse(val)?,
                "functions" => out.functions = parse(val)?,
                "bytes" => out.resident_bytes = parse(val)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Reply to a `profile-stats` request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileStatsReply {
    /// Store counters, one `key value` per line: `programs`, `bytes`,
    /// `pushes`, `evictions`, plus one
    /// `program <key> <generation> <pushes> <functions> <bytes>` line per
    /// resident aggregate (sorted by key).
    pub text: String,
    /// When the request named a program: its merged aggregate in
    /// canonical `ProfileDb::to_text` form (empty string when the
    /// aggregate holds no pushes yet).
    pub profile: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sections_roundtrip() {
        let req = OptimizeRequest {
            options: HloOptions {
                budget_percent: 50,
                ..Default::default()
            },
            source: SourceKind::Minc(vec![
                ("a".to_string(), "fn main() { return util(); }".to_string()),
                ("b".to_string(), "fn util() { return 7; }".to_string()),
            ]),
            profile: ProfileSpec::Text("func a main 1\nblocks 1\nend\n".to_string()),
            deadline_ms: Some(250),
            train_arg: Some(12),
            trace_id: Some("00ab34cd56ef7890".to_string()),
        };
        let back = OptimizeRequest::from_sections(&req.to_sections()).unwrap();
        assert_eq!(req, back);

        let ir_req = OptimizeRequest {
            options: HloOptions::default(),
            source: SourceKind::Ir("hlo-ir v1\nentry 0\n".to_string()),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
            trace_id: None,
        };
        let back = OptimizeRequest::from_sections(&ir_req.to_sections()).unwrap();
        assert_eq!(ir_req, back);
    }

    #[test]
    fn server_profile_mode_roundtrips() {
        let req = OptimizeRequest {
            profile: ProfileSpec::Server,
            ..OptimizeRequest::from_minc(vec![(
                "m".to_string(),
                "fn main() { return 0; }".to_string(),
            )])
        };
        let s = req.to_sections();
        assert_eq!(s.text("profile-mode").unwrap(), "server");
        assert_eq!(OptimizeRequest::from_sections(&s).unwrap(), req);

        // Unknown modes and profile+mode conflicts are rejected.
        let mut bad = req.to_sections();
        bad.push("profile", "func m f 1\nblocks 1\nend\n");
        assert!(OptimizeRequest::from_sections(&bad).is_err());
        let mut s = OptimizeRequest::from_minc(vec![(
            "m".to_string(),
            "fn main() { return 0; }".to_string(),
        )])
        .to_sections();
        s.push("profile-mode", "client");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn push_request_and_ack_roundtrip() {
        let req = ProfilePushRequest {
            program: "00000000000000aa".to_string(),
            delta: "func m f 1\nblocks 1\nend\n".to_string(),
            advance: 3,
        };
        let back = ProfilePushRequest::from_sections(&req.to_sections()).unwrap();
        assert_eq!(req, back);
        let no_advance = ProfilePushRequest {
            advance: 0,
            ..req.clone()
        };
        assert!(no_advance.to_sections().get("advance").is_none());
        assert_eq!(
            ProfilePushRequest::from_sections(&no_advance.to_sections()).unwrap(),
            no_advance
        );

        let ack = ProfilePushOutcome {
            generation: 2,
            pushes: 7,
            functions: 3,
            resident_bytes: 512,
        };
        assert_eq!(ProfilePushOutcome::from_text(&ack.to_text()).unwrap(), ack);
        assert!(ProfilePushOutcome::from_text("pushes seven\n").is_err());
    }

    #[test]
    fn request_without_source_is_rejected() {
        let mut s = Sections::new();
        s.push("options", HloOptions::default().to_text());
        assert!(OptimizeRequest::from_sections(&s).is_err());
        s.push("ir", "hlo-ir v1\n");
        s.push("minc:m", "fn main() { return 0; }");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn response_sections_roundtrip() {
        let resp = OptimizeResponse {
            ir_text: "hlo-ir v1\nentry 0\n".to_string(),
            report: HloReport {
                inlines: 3,
                ..Default::default()
            },
            outcome: CacheOutcome {
                hit: true,
                func_hits: 5,
                func_misses: 2,
                stale: false,
                drift_millis: 40,
                partition_hits: 2,
                partition_rebuilds: 1,
                incr_fallback: false,
            },
            train: Some("ret 3 retired 42 output 1 checksum 0x9".to_string()),
            pgo: Some("pgo-profile-stable score 40 (l1 40 churn 0 threshold 250)".to_string()),
            trace_id: Some("00ab34cd56ef7890".to_string()),
        };
        let back = OptimizeResponse::from_sections(&resp.to_sections()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn malformed_trace_ids_are_rejected() {
        assert!(valid_trace_id("00ab34cd56ef7890"));
        for bad in [
            "",
            "short",
            "00AB34CD56EF7890",
            "00ab34cd56ef789g",
            "00ab34cd56ef78901",
        ] {
            assert!(!valid_trace_id(bad), "{bad:?} should be invalid");
        }
        let mut s = OptimizeRequest::from_minc(vec![(
            "m".to_string(),
            "fn main() { return 0; }".to_string(),
        )])
        .to_sections();
        s.push("trace-id", "not-hex");
        assert!(OptimizeRequest::from_sections(&s).is_err());
    }

    #[test]
    fn trace_fetch_reply_roundtrips() {
        let reply = TraceFetchReply {
            trace_id: "00ab34cd56ef7890".to_string(),
            spans: "request:00ab34cd56ef7890\n  optimize\n".to_string(),
            decisions: "decision inline main@b0.i0 -> f: performed (accepted)\n".to_string(),
            chrome: "{\"traceEvents\":[]}\n".to_string(),
            cache: "hit 0\n".to_string(),
            wall_us: 4524,
            phases: vec![
                ("queue_wait".to_string(), 12),
                ("cache_probe".to_string(), 3),
                ("optimize".to_string(), 4500),
                ("reply".to_string(), 9),
            ],
        };
        let back = TraceFetchReply::from_sections(&reply.to_sections()).unwrap();
        assert_eq!(back, reply);
        assert_eq!(back.phases.iter().map(|(_, us)| us).sum::<u64>(), 4524);
    }
}
