//! Planted fault for oracle-sensitivity testing of the incremental
//! partition cache.
//!
//! When armed, [`crate::incremental::partition_keys`] drops the salted
//! cone-hash component from every partition key, leaving only the member
//! ids and the budget-share basis — so an edit that changes a function's
//! body (but not its size) produces the *same* partition key, and the
//! daemon splices a stale cached body into the response. This is the
//! "stale cone key deliberately reused" bug class the incremental fuzz
//! oracle must be able to catch; `cargo fuzzgate` arms it and fails if
//! no divergence is found.
//!
//! Unlike `hlo::fault` (thread-local, armed and observed on the same
//! thread), this flag is **process-global**: the daemon's worker threads
//! compute partition keys, while the test arms the fault from its own
//! thread. Arming takes a process-wide window lock, so two fault-armed
//! tests serialize instead of sharing a window — and tests that must
//! observe the fault *disarmed* (anything asserting clean incremental
//! behaviour while a fault-armed test may run in the same process) hold
//! the same window via [`exclusion`]. A second `arm` on the same thread
//! deadlocks; don't nest guards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

static STALE_PARTITION_KEYS: AtomicBool = AtomicBool::new(false);
static WINDOW: Mutex<()> = Mutex::new(());

fn window() -> MutexGuard<'static, ()> {
    WINDOW.lock().unwrap_or_else(|e| e.into_inner())
}

/// True while a [`FaultGuard`] is live: partition keys must be computed
/// without their cone-hash component.
pub fn stale_partition_keys_armed() -> bool {
    STALE_PARTITION_KEYS.load(Ordering::SeqCst)
}

/// Blocks until no [`FaultGuard`] is live and keeps the fault disarmed
/// while the returned guard is held. Tests whose assertions depend on
/// clean partition keys take this so a concurrently scheduled
/// fault-armed test cannot corrupt them.
pub fn exclusion() -> MutexGuard<'static, ()> {
    let w = window();
    debug_assert!(!stale_partition_keys_armed());
    w
}

/// RAII guard arming the stale-partition-key fault for its lifetime.
#[derive(Debug)]
pub struct FaultGuard {
    _window: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Arms the fault, blocking until any live guard or [`exclusion`]
    /// window is released.
    pub fn arm() -> FaultGuard {
        let w = window();
        STALE_PARTITION_KEYS.store(true, Ordering::SeqCst);
        FaultGuard { _window: w }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        STALE_PARTITION_KEYS.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_arms_and_disarms() {
        {
            let _g = FaultGuard::arm();
            assert!(stale_partition_keys_armed());
        }
        let _w = exclusion();
        assert!(!stale_partition_keys_armed());
    }
}
