//! Local common-subexpression elimination.

use hlo_ir::{BinOp, Function, Inst, Operand, Reg, UnOp};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Operand, Operand),
    Un(UnOp, Operand),
    Load(Operand, Operand),
    FrameAddr(u32),
}

/// Replaces recomputed expressions within a block by copies of the first
/// computation. Loads participate but are invalidated by any store or
/// call. Returns the number of instructions replaced.
pub fn eliminate_common(f: &mut Function) -> u64 {
    let mut replaced = 0;
    for block in &mut f.blocks {
        let mut avail: HashMap<ExprKey, Reg> = HashMap::new();
        for inst in &mut block.insts {
            let key = match inst {
                Inst::Bin { op, a, b, .. } if !op.can_trap() => {
                    // Normalize commutative operand order.
                    let (x, y) = if is_commutative(*op) {
                        sort_ops(*a, *b)
                    } else {
                        (*a, *b)
                    };
                    Some(ExprKey::Bin(*op, x, y))
                }
                Inst::Un { op, a, .. } => Some(ExprKey::Un(*op, *a)),
                Inst::Load { base, offset, .. } => Some(ExprKey::Load(*base, *offset)),
                Inst::FrameAddr { slot, .. } => Some(ExprKey::FrameAddr(slot.0)),
                _ => None,
            };

            // Memory clobbers invalidate loads.
            if matches!(
                inst,
                Inst::Store { .. } | Inst::Call { .. } | Inst::Alloca { .. }
            ) {
                avail.retain(|k, _| !matches!(k, ExprKey::Load(..)));
            }

            // Replace a recomputation with a copy of the earlier result.
            if let (Some(k), Some(d)) = (key, inst.dst()) {
                if let Some(&prev) = avail.get(&k) {
                    if prev != d {
                        *inst = Inst::Copy {
                            dst: d,
                            src: Operand::Reg(prev),
                        };
                        replaced += 1;
                    }
                }
            }

            // A redefined register invalidates expressions mentioning it
            // (as source or as the remembered result)...
            if let Some(d) = inst.dst() {
                let mentions_d = |k: &ExprKey| match k {
                    ExprKey::Bin(_, a, b) => a.as_reg() == Some(d) || b.as_reg() == Some(d),
                    ExprKey::Un(_, a) => a.as_reg() == Some(d),
                    ExprKey::Load(a, b) => a.as_reg() == Some(d) || b.as_reg() == Some(d),
                    ExprKey::FrameAddr(_) => false,
                };
                avail.retain(|k, v| *v != d && !mentions_d(k));
                // ...and only then does the new expression become
                // available (unless it reads its own destination, in which
                // case the key would describe the pre-def value).
                if let Some(k) = key {
                    if !mentions_d(&k) && !matches!(inst, Inst::Copy { .. }) {
                        avail.insert(k, d);
                    }
                }
            }
        }
    }
    replaced
}

fn is_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::FAdd
            | BinOp::FMul
            | BinOp::FEq
    )
}

fn sort_ops(a: Operand, b: Operand) -> (Operand, Operand) {
    // Any deterministic total order works.
    let key = |o: &Operand| match o {
        Operand::Reg(r) => (0u8, r.0 as i64, 0u8),
        Operand::Const(c) => (1u8, 0, const_tag(c)),
    };
    fn const_tag(_c: &hlo_ir::ConstVal) -> u8 {
        0
    }
    if key(&a) <= key(&b) {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Type};

    #[test]
    fn dedups_repeated_adds() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let e = fb.entry_block();
        let p0 = Operand::Reg(fb.param(0));
        let p1 = Operand::Reg(fb.param(1));
        let a = fb.bin(e, BinOp::Add, p0, p1);
        let b = fb.bin(e, BinOp::Add, p0, p1);
        let s = fb.bin(e, BinOp::Mul, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_common(&mut f), 1);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }

    #[test]
    fn commutative_operands_normalize() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let e = fb.entry_block();
        let p0 = Operand::Reg(fb.param(0));
        let p1 = Operand::Reg(fb.param(1));
        let a = fb.bin(e, BinOp::Add, p0, p1);
        let b = fb.bin(e, BinOp::Add, p1, p0);
        let s = fb.bin(e, BinOp::Sub, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_common(&mut f), 1);
    }

    #[test]
    fn stores_invalidate_loads() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let p = Operand::Reg(fb.param(0));
        let a = fb.load(e, p, Operand::imm(0));
        fb.store(e, p, Operand::imm(0), Operand::imm(1));
        let b = fb.load(e, p, Operand::imm(0));
        let s = fb.bin(e, BinOp::Add, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_common(&mut f), 0);
    }

    #[test]
    fn repeated_loads_without_clobber_dedup() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let p = Operand::Reg(fb.param(0));
        let a = fb.load(e, p, Operand::imm(0));
        let b = fb.load(e, p, Operand::imm(0));
        let s = fb.bin(e, BinOp::Add, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_common(&mut f), 1);
    }

    #[test]
    fn redefined_source_invalidates() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let p = fb.param(0);
        let a = fb.bin(e, BinOp::Add, p.into(), Operand::imm(1));
        fb.copy_to(e, p, Operand::imm(0)); // clobber source
        let b = fb.bin(e, BinOp::Add, p.into(), Operand::imm(1));
        let s = fb.bin(e, BinOp::Mul, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_common(&mut f), 0);
    }

    #[test]
    fn trapping_ops_not_cse_candidates() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let e = fb.entry_block();
        let p0 = Operand::Reg(fb.param(0));
        let p1 = Operand::Reg(fb.param(1));
        let a = fb.bin(e, BinOp::Div, p0, p1);
        let b = fb.bin(e, BinOp::Div, p0, p1);
        let s = fb.bin(e, BinOp::Add, a.into(), b.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        // Folding traps across is safe actually, but we stay conservative.
        assert_eq!(eliminate_common(&mut f), 0);
    }
}
