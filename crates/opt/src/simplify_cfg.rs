//! Control-flow graph simplification.
//!
//! Inlining splices many small CFGs into big ones; this pass cleans the
//! seams: constant branches become jumps, trivial jump-only blocks are
//! threaded through, unreachable blocks are dropped, and straight-line
//! chains are merged. Profile annotations are maintained so later HLO
//! passes keep seeing valid frequencies.

use hlo_ir::{BlockId, ConstVal, Function, Inst, Operand};

/// Outcome of one simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CfgStats {
    /// Conditional branches rewritten to jumps.
    pub branches_folded: u64,
    /// Unreachable blocks removed.
    pub blocks_removed: u64,
    /// Straight-line merges performed.
    pub blocks_merged: u64,
    /// Jumps redirected through trivial blocks.
    pub jumps_threaded: u64,
}

impl CfgStats {
    /// True when the pass changed the function.
    pub fn changed(&self) -> bool {
        self.branches_folded + self.blocks_removed + self.blocks_merged + self.jumps_threaded > 0
    }
}

/// Simplifies `f`'s CFG to a fixpoint (bounded).
pub fn simplify(f: &mut Function) -> CfgStats {
    let mut stats = CfgStats::default();
    for _ in 0..32 {
        let mut changed = false;
        changed |= fold_const_branches(f, &mut stats);
        changed |= thread_jumps(f, &mut stats);
        changed |= remove_unreachable(f, &mut stats);
        changed |= merge_chains(f, &mut stats);
        if !changed {
            break;
        }
    }
    stats
}

fn const_truthy(c: ConstVal) -> bool {
    match c {
        ConstVal::I64(v) => v != 0,
        ConstVal::F64(b) => b.0 != 0,
        ConstVal::FuncAddr(_) | ConstVal::GlobalAddr(_) => true,
    }
}

fn fold_const_branches(f: &mut Function, stats: &mut CfgStats) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        if let Some(Inst::Br { cond, then_, else_ }) = block.insts.last() {
            let target = if let Operand::Const(c) = cond {
                Some(if const_truthy(*c) { *then_ } else { *else_ })
            } else if then_ == else_ {
                Some(*then_)
            } else {
                None
            };
            if let Some(t) = target {
                *block.insts.last_mut().expect("terminator") = Inst::Jump { target: t };
                stats.branches_folded += 1;
                changed = true;
            }
        }
    }
    changed
}

/// A block is trivial when it contains exactly one instruction: `jump t`.
fn trivial_target(f: &Function, b: BlockId) -> Option<BlockId> {
    let insts = &f.blocks[b.index()].insts;
    if insts.len() == 1 {
        if let Inst::Jump { target } = insts[0] {
            if target != b {
                return Some(target);
            }
        }
    }
    None
}

fn thread_jumps(f: &mut Function, stats: &mut CfgStats) -> bool {
    let n = f.blocks.len();
    // Resolve each block to its final non-trivial destination, with a hop
    // bound to defuse trivial-jump cycles.
    let mut resolved: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    for (b, res) in resolved.iter_mut().enumerate() {
        let mut cur = BlockId(b as u32);
        let mut hops = 0;
        while let Some(t) = trivial_target(f, cur) {
            cur = t;
            hops += 1;
            if hops > n {
                cur = BlockId(b as u32); // cycle of empty blocks; leave as is
                break;
            }
        }
        *res = cur;
    }
    let mut changed = false;
    for block in &mut f.blocks {
        if let Some(t) = block.insts.last_mut() {
            t.map_successors(|s| {
                let r = resolved[s.index()];
                if r != s {
                    stats.jumps_threaded += 1;
                    changed = true;
                }
                r
            });
        }
    }
    changed
}

fn remove_unreachable(f: &mut Function, stats: &mut CfgStats) -> bool {
    let n = f.blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0usize];
    reach[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.blocks[b].successors() {
            if !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    if reach.iter().all(|&r| r) {
        return false;
    }
    // Build the renumbering (entry stays first).
    let mut remap = vec![BlockId(0); n];
    let mut next = 0u32;
    for b in 0..n {
        if reach[b] {
            remap[b] = BlockId(next);
            next += 1;
        }
    }
    let removed = (n as u32 - next) as u64;
    // Filter blocks and profile in lockstep.
    let mut keep_iter = reach.iter();
    f.blocks.retain(|_| *keep_iter.next().expect("len"));
    if let Some(p) = &mut f.profile {
        let mut keep_iter = reach.iter();
        p.blocks.retain(|_| *keep_iter.next().expect("len"));
    }
    for block in &mut f.blocks {
        if let Some(t) = block.insts.last_mut() {
            t.map_successors(|s| remap[s.index()]);
        }
    }
    stats.blocks_removed += removed;
    true
}

fn merge_chains(f: &mut Function, stats: &mut CfgStats) -> bool {
    let preds = f.predecessors();
    let n = f.blocks.len();
    let mut merged_away = vec![false; n];
    let mut changed = false;
    for b in 0..n {
        if merged_away[b] {
            continue;
        }
        // Follow the chain greedily from b.
        while let Some(Inst::Jump { target }) = f.blocks[b].insts.last() {
            let t = target.index();
            if t == b || t == 0 || merged_away[t] || preds[t].len() != 1 {
                break;
            }
            // preds computed before any merges this sweep; a block merged
            // into b keeps its original single-pred property because we
            // never duplicate edges.
            let mut tail = std::mem::take(&mut f.blocks[t].insts);
            let blk = &mut f.blocks[b];
            blk.insts.pop(); // drop the jump
            blk.insts.append(&mut tail);
            // Leave a self-consistent husk: the merged-away block becomes
            // unreachable and is collected by remove_unreachable.
            f.blocks[t].insts.push(Inst::Jump {
                target: BlockId(b as u32),
            });
            merged_away[t] = true;
            stats.blocks_merged += 1;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{verify_function, FuncProfile, FunctionBuilder, Linkage, ModuleId, Type};

    #[test]
    fn folds_constant_branch_and_drops_dead_arm() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let t = fb.new_block();
        let z = fb.new_block();
        fb.br(e, Operand::imm(1), t, z);
        fb.ret(t, Some(Operand::imm(10)));
        fb.ret(z, Some(Operand::imm(20)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = simplify(&mut f);
        assert!(st.branches_folded >= 1);
        assert!(st.blocks_removed >= 1);
        verify_function(&f).unwrap();
        // entry + merged ret
        assert!(f.blocks.len() <= 2);
    }

    #[test]
    fn threads_trivial_jumps() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let hop = fb.new_block();
        let land = fb.new_block();
        let other = fb.new_block();
        fb.br(e, Operand::Reg(fb.param(0)), hop, other);
        fb.jump(hop, land);
        fb.ret(land, Some(Operand::imm(1)));
        fb.ret(other, Some(Operand::imm(2)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = simplify(&mut f);
        assert!(st.jumps_threaded >= 1);
        verify_function(&f).unwrap();
        // hop removed
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    fn merges_straightline_chains() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let x = fb.iconst(e, 1);
        fb.jump(e, b1);
        let y = fb.bin(b1, hlo_ir::BinOp::Add, x.into(), Operand::imm(1));
        fb.jump(b1, b2);
        fb.ret(b2, Some(y.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = simplify(&mut f);
        assert!(st.blocks_merged >= 2);
        verify_function(&f).unwrap();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.size(), 3);
    }

    #[test]
    fn profile_stays_parallel_to_blocks() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let t = fb.new_block();
        let z = fb.new_block();
        fb.br(e, Operand::imm(0), t, z);
        fb.ret(t, Some(Operand::imm(1)));
        fb.ret(z, Some(Operand::imm(2)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        f.profile = Some(FuncProfile {
            entry: 100.0,
            blocks: vec![100.0, 0.0, 100.0],
        });
        simplify(&mut f);
        verify_function(&f).unwrap();
        let p = f.profile.as_ref().unwrap();
        assert_eq!(p.blocks.len(), f.blocks.len());
    }

    #[test]
    fn loop_back_edges_survive() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let h = fb.new_block();
        let x = fb.new_block();
        fb.jump(e, h);
        fb.br(h, Operand::Reg(fb.param(0)), h, x);
        fb.ret(x, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        simplify(&mut f);
        verify_function(&f).unwrap();
        // h has 2 preds (e and itself) so it cannot merge into e.
        assert!(f.blocks.len() >= 2);
    }

    #[test]
    fn infinite_trivial_jump_cycle_does_not_hang() {
        // e -> a -> b -> a  (a, b trivial)
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let a = fb.new_block();
        let b = fb.new_block();
        fb.jump(e, a);
        fb.jump(a, b);
        fb.jump(b, a);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        // Function never returns; CFG is still valid. Must terminate.
        let _ = simplify(&mut f);
        verify_function(&f).unwrap();
    }
}
