//! Algebraic simplification: identity, absorption and strength rules.
//!
//! Inlining and cloning materialize many `x + 0` / `x * 1` / `x ^ x`
//! patterns (bound parameters, folded address arithmetic); this pass
//! rewrites them so they do not clutter later passes or the cost model.
//! Every rule preserves the VM's wrapping semantics exactly; nothing here
//! touches `Div`/`Rem` (they can trap) except the safe `x / 1` and
//! `x % 1` forms.

use hlo_ir::{BinOp, ConstVal, Function, Inst, Operand, UnOp};

fn as_int(op: Operand) -> Option<i64> {
    match op {
        Operand::Const(ConstVal::I64(v)) => Some(v),
        _ => None,
    }
}

/// Applies algebraic rewrites in place. Returns the number of
/// instructions simplified.
pub fn simplify_algebra(f: &mut Function) -> u64 {
    let mut changed = 0;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            let new = match inst {
                Inst::Bin { dst, op, a, b } => rewrite_bin(*dst, *op, *a, *b),
                Inst::Un { dst, op, a } => rewrite_un(*dst, *op, *a),
                _ => None,
            };
            if let Some(n) = new {
                *inst = n;
                changed += 1;
            }
        }
    }
    changed
}

fn copy(dst: hlo_ir::Reg, src: Operand) -> Option<Inst> {
    Some(Inst::Copy { dst, src })
}

fn konst(dst: hlo_ir::Reg, v: i64) -> Option<Inst> {
    Some(Inst::Const {
        dst,
        value: ConstVal::I64(v),
    })
}

fn rewrite_bin(dst: hlo_ir::Reg, op: BinOp, a: Operand, b: Operand) -> Option<Inst> {
    let ai = as_int(a);
    let bi = as_int(b);
    let same_reg = matches!((a, b), (Operand::Reg(x), Operand::Reg(y)) if x == y);
    match op {
        BinOp::Add => {
            if bi == Some(0) {
                return copy(dst, a);
            }
            if ai == Some(0) {
                return copy(dst, b);
            }
        }
        BinOp::Sub => {
            if bi == Some(0) {
                return copy(dst, a);
            }
            if same_reg {
                return konst(dst, 0);
            }
        }
        BinOp::Mul => {
            if bi == Some(1) {
                return copy(dst, a);
            }
            if ai == Some(1) {
                return copy(dst, b);
            }
            if bi == Some(0) || ai == Some(0) {
                return konst(dst, 0);
            }
            // Strength reduction: multiply by a power of two.
            if let Some(v) = bi {
                if v > 1 && (v as u64).is_power_of_two() {
                    return Some(Inst::Bin {
                        dst,
                        op: BinOp::Shl,
                        a,
                        b: Operand::imm(v.trailing_zeros() as i64),
                    });
                }
            }
        }
        BinOp::Div if bi == Some(1) => return copy(dst, a),
        BinOp::Rem if bi == Some(1) => return konst(dst, 0),
        BinOp::And => {
            if bi == Some(0) || ai == Some(0) {
                return konst(dst, 0);
            }
            if bi == Some(-1) {
                return copy(dst, a);
            }
            if ai == Some(-1) {
                return copy(dst, b);
            }
            if same_reg {
                return copy(dst, a);
            }
        }
        BinOp::Or => {
            if bi == Some(0) {
                return copy(dst, a);
            }
            if ai == Some(0) {
                return copy(dst, b);
            }
            if same_reg {
                return copy(dst, a);
            }
        }
        BinOp::Xor => {
            if bi == Some(0) {
                return copy(dst, a);
            }
            if ai == Some(0) {
                return copy(dst, b);
            }
            if same_reg {
                return konst(dst, 0);
            }
        }
        BinOp::Shl | BinOp::Shr => {
            // Counts are masked to 0..63 by the VM; a masked-zero count is
            // the identity.
            if let Some(v) = bi {
                if v & 63 == 0 {
                    return copy(dst, a);
                }
            }
        }
        BinOp::Eq | BinOp::Le | BinOp::Ge if same_reg => return konst(dst, 1),
        BinOp::Ne | BinOp::Lt | BinOp::Gt if same_reg => return konst(dst, 0),
        // Floats: no algebraic identities are safe under NaN/-0.0 except
        // none that matter here; leave them alone.
        _ => {}
    }
    None
}

fn rewrite_un(dst: hlo_ir::Reg, op: UnOp, a: Operand) -> Option<Inst> {
    // Only constants fold here (constprop handles that); keep double
    // negation for register chains: not expressible on a single
    // instruction, so nothing to do except the trivial constant cases,
    // which constprop owns.
    let _ = (dst, op, a);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Reg, Type};

    fn run_one(op: BinOp, a: Operand, b: Operand) -> Inst {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let e = fb.entry_block();
        let r = fb.bin(e, op, a, b);
        fb.ret(e, Some(r.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        simplify_algebra(&mut f);
        f.blocks[0].insts[0].clone()
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        let p0 = Operand::Reg(Reg(0));
        assert_eq!(
            run_one(BinOp::Add, p0, Operand::imm(0)),
            Inst::Copy {
                dst: Reg(2),
                src: p0
            }
        );
        assert_eq!(
            run_one(BinOp::Mul, Operand::imm(1), p0),
            Inst::Copy {
                dst: Reg(2),
                src: p0
            }
        );
        assert_eq!(
            run_one(BinOp::Mul, p0, Operand::imm(0)),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(0)
            }
        );
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let p0 = Operand::Reg(Reg(0));
        assert_eq!(
            run_one(BinOp::Mul, p0, Operand::imm(8)),
            Inst::Bin {
                dst: Reg(2),
                op: BinOp::Shl,
                a: p0,
                b: Operand::imm(3)
            }
        );
        // Negative and non-power values unchanged.
        assert!(matches!(
            run_one(BinOp::Mul, p0, Operand::imm(-8)),
            Inst::Bin { op: BinOp::Mul, .. }
        ));
        assert!(matches!(
            run_one(BinOp::Mul, p0, Operand::imm(6)),
            Inst::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn same_register_rules() {
        let p0 = Operand::Reg(Reg(0));
        assert_eq!(
            run_one(BinOp::Sub, p0, p0),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(0)
            }
        );
        assert_eq!(
            run_one(BinOp::Xor, p0, p0),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(0)
            }
        );
        assert_eq!(
            run_one(BinOp::Eq, p0, p0),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(1)
            }
        );
        assert_eq!(
            run_one(BinOp::Lt, p0, p0),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(0)
            }
        );
        assert_eq!(
            run_one(BinOp::And, p0, p0),
            Inst::Copy {
                dst: Reg(2),
                src: p0
            }
        );
    }

    #[test]
    fn division_rules_are_conservative() {
        let p0 = Operand::Reg(Reg(0));
        assert_eq!(
            run_one(BinOp::Div, p0, Operand::imm(1)),
            Inst::Copy {
                dst: Reg(2),
                src: p0
            }
        );
        // x / 0 must remain (it traps).
        assert!(matches!(
            run_one(BinOp::Div, p0, Operand::imm(0)),
            Inst::Bin { op: BinOp::Div, .. }
        ));
        // x / x is NOT 1 (x may be zero).
        assert!(matches!(
            run_one(BinOp::Div, p0, p0),
            Inst::Bin { op: BinOp::Div, .. }
        ));
        assert_eq!(
            run_one(BinOp::Rem, p0, Operand::imm(1)),
            Inst::Const {
                dst: Reg(2),
                value: ConstVal::int(0)
            }
        );
    }

    #[test]
    fn shift_identities_respect_masking() {
        let p0 = Operand::Reg(Reg(0));
        assert_eq!(
            run_one(BinOp::Shl, p0, Operand::imm(64)),
            Inst::Copy {
                dst: Reg(2),
                src: p0
            }
        );
        assert!(matches!(
            run_one(BinOp::Shl, p0, Operand::imm(1)),
            Inst::Bin { op: BinOp::Shl, .. }
        ));
    }

    #[test]
    fn float_ops_untouched() {
        let p0 = Operand::Reg(Reg(0));
        assert!(matches!(
            run_one(BinOp::FAdd, p0, Operand::Const(ConstVal::float(0.0))),
            Inst::Bin {
                op: BinOp::FAdd,
                ..
            }
        ));
    }

    #[test]
    fn semantics_preserved_under_vm() {
        use hlo_vm::{run_program, ExecOptions};
        // Exercise every rewrite against the interpreter.
        let src = r#"
            fn f(x) {
                var a = x + 0;
                var b = 1 * x;
                var c = x - x;
                var d = x ^ x;
                var e = x & x;
                var g = x * 16;
                var h = x / 1;
                var i = x % 1;
                var j = x << 64;
                var k = (x == x) + (x < x) * 10;
                return a + b + c + d + e + g + h + i + j + k;
            }
            fn main() { return f(-7) * 1000 + f(13); }
        "#;
        let p0 = hlo_frontc::compile(&[("m", src)]).unwrap();
        let before = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        for f in &mut p.funcs {
            simplify_algebra(f);
        }
        hlo_ir::verify_program(&p).unwrap();
        let after = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(before.ret, after.ret);
    }
}
