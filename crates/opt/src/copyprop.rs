//! Local (per-block) copy propagation.

use hlo_ir::{Function, Inst, Operand, Reg};
use std::collections::HashMap;

/// Rewrites uses of registers that are block-local copies of other
/// operands. Returns the number of uses rewritten.
pub fn propagate_copies(f: &mut Function) -> u64 {
    let mut rewritten = 0;
    for block in &mut f.blocks {
        // reg -> operand it currently equals
        let mut equiv: HashMap<Reg, Operand> = HashMap::new();
        for inst in &mut block.insts {
            // Rewrite uses through the equivalence map (chase one level;
            // chains resolve over repeated pipeline iterations).
            inst.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    if let Some(&src) = equiv.get(r) {
                        *op = src;
                        rewritten += 1;
                    }
                }
            });
            // Kill equivalences invalidated by this def.
            if let Some(d) = inst.dst() {
                equiv.remove(&d);
                equiv.retain(|_, v| v.as_reg() != Some(d));
                if let Inst::Copy { dst, src } = inst {
                    if src.as_reg() != Some(*dst) {
                        equiv.insert(*dst, *src);
                    }
                }
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{BinOp, FunctionBuilder, Linkage, ModuleId, Type};

    #[test]
    fn forwards_simple_copies() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let t = fb.new_reg();
        fb.copy_to(e, t, Operand::Reg(fb.param(0)));
        let s = fb.bin(e, BinOp::Add, t.into(), t.into());
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let n = propagate_copies(&mut f);
        assert_eq!(n, 2);
        match &f.blocks[0].insts[1] {
            Inst::Bin { a, b, .. } => {
                assert_eq!(*a, Operand::Reg(Reg(0)));
                assert_eq!(*b, Operand::Reg(Reg(0)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn redefinition_kills_equivalence() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let e = fb.entry_block();
        let t = fb.new_reg();
        fb.copy_to(e, t, Operand::Reg(fb.param(0)));
        // redefine the *source*; t must no longer forward to it
        fb.copy_to(e, fb.param(0), Operand::Reg(fb.param(1)));
        let s = fb.bin(e, BinOp::Add, t.into(), Operand::imm(0));
        fb.ret(e, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate_copies(&mut f);
        match &f.blocks[0].insts[2] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::Reg(t)),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn copy_of_constant_forwards_immediate() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let t = fb.new_reg();
        fb.copy_to(e, t, Operand::imm(9));
        fb.ret(e, Some(t.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate_copies(&mut f);
        match f.blocks[0].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::imm(9))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn self_copy_is_not_recorded() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let p = fb.param(0);
        fb.copy_to(e, p, Operand::Reg(p));
        fb.ret(e, Some(p.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate_copies(&mut f); // must not loop or rewrite to itself oddly
        match f.blocks[0].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::Reg(p))),
            other => panic!("unexpected {other}"),
        }
    }
}
