//! Deletion of calls to side-effect-free routines.
//!
//! This reproduces the paper's 072.sc observation: calls into a stub
//! library that provably does nothing are eliminated by interprocedural
//! analysis *before* inlining, so they never consume inline budget.

use crate::dce::live_out_sets;
use hlo_analysis::{side_effect_free_funcs, CallGraph};
use hlo_ir::{Callee, FuncId, Inst, Operand, Program};

/// One deleted call site, in pre-deletion coordinates (for decision
/// provenance; the instruction no longer exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PureCallSite {
    /// The function the call was removed from.
    pub caller: FuncId,
    /// Block index of the removed call.
    pub block: usize,
    /// Instruction index within the block, before the removal.
    pub inst: usize,
    /// The side-effect-free callee.
    pub callee: FuncId,
}

/// What one [`eliminate_pure_calls_with`] run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PureCallRemoval {
    /// Call sites deleted.
    pub removed: u64,
    /// Functions whose bodies changed (their call-graph out-edges and
    /// instruction indices are stale; callers holding a cached call graph
    /// must invalidate exactly these).
    pub changed: Vec<FuncId>,
    /// Every deleted site, in deletion order.
    pub sites: Vec<PureCallSite>,
}

/// Removes direct calls to side-effect-free functions whose results are
/// unused (or ignored). Returns the number of call sites deleted.
///
/// Convenience wrapper over [`eliminate_pure_calls_with`] that builds its
/// own call graph; callers that already hold one (or a
/// [`hlo_analysis::CallGraphCache`]) should pass it instead of paying for
/// a rebuild.
pub fn eliminate_pure_calls(p: &mut Program) -> u64 {
    let cg = CallGraph::build(p);
    eliminate_pure_calls_with(p, &cg).removed
}

/// [`eliminate_pure_calls`] against a caller-supplied call graph, with a
/// report of which functions were edited.
pub fn eliminate_pure_calls_with(p: &mut Program, cg: &CallGraph) -> PureCallRemoval {
    eliminate_pure_calls_with_masked(p, cg, None)
}

/// [`eliminate_pure_calls_with`] restricted to callers `mask` selects
/// (`None` = all). Purity facts are still computed program-wide; the mask
/// only limits which *callers* are edited — the incremental driver uses it
/// to touch one cache partition at a time.
pub fn eliminate_pure_calls_with_masked(
    p: &mut Program,
    cg: &CallGraph,
    mask: Option<&[bool]>,
) -> PureCallRemoval {
    let free = side_effect_free_funcs(p, cg);
    eliminate_calls_where_masked(p, &free, mask)
}

/// The deletion engine behind [`eliminate_pure_calls_with`], parameterized
/// over *which* callees are deletable: `deletable[i]` says a direct call to
/// function `i` whose result is unused may be removed. The syntactic purity
/// wrapper passes `side_effect_free_funcs`; the driver's ipa stage passes
/// the summary-based removable set (a strict superset).
pub fn eliminate_calls_where(p: &mut Program, deletable: &[bool]) -> PureCallRemoval {
    eliminate_calls_where_masked(p, deletable, None)
}

/// [`eliminate_calls_where`] restricted to callers `mask` selects
/// (`None` = all).
pub fn eliminate_calls_where_masked(
    p: &mut Program,
    deletable: &[bool],
    mask: Option<&[bool]>,
) -> PureCallRemoval {
    let free = deletable;
    let mut removed = 0;
    let mut changed = Vec::new();
    let mut sites = Vec::new();
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        if !mask.is_none_or(|m| m.get(fi).copied().unwrap_or(false)) {
            continue;
        }
        let live_out = live_out_sets(f);
        let mut func_changed = false;
        for (bi, block) in f.blocks.iter_mut().enumerate() {
            // Backward scan to know liveness of each call's destination.
            let mut live = live_out[bi].clone();
            let mut keep = vec![true; block.insts.len()];
            let mut block_sites: Vec<PureCallSite> = Vec::new();
            for (ii, inst) in block.insts.iter().enumerate().rev() {
                let removable = match inst {
                    Inst::Call {
                        dst,
                        callee: Callee::Func(t),
                        ..
                    } if free[t.index()] => match dst {
                        None => Some(*t),
                        Some(d) if !live[d.index()] => Some(*t),
                        Some(_) => None,
                    },
                    _ => None,
                };
                if let Some(callee) = removable {
                    keep[ii] = false;
                    removed += 1;
                    func_changed = true;
                    block_sites.push(PureCallSite {
                        caller: FuncId(fi as u32),
                        block: bi,
                        inst: ii,
                        callee,
                    });
                    continue;
                }
                if let Some(d) = inst.dst() {
                    live[d.index()] = false;
                }
                inst.for_each_use(|op| {
                    if let Operand::Reg(r) = op {
                        live[r.index()] = true;
                    }
                });
            }
            let mut it = keep.iter();
            block.insts.retain(|_| *it.next().expect("len"));
            // The backward scan found sites last-first; report them in
            // instruction order.
            block_sites.reverse();
            sites.extend(block_sites);
        }
        if func_changed {
            changed.push(FuncId(fi as u32));
        }
    }
    PureCallRemoval {
        removed,
        changed,
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{BinOp, FuncId, FunctionBuilder, Linkage, ProgramBuilder, Type};

    /// main calls `stub` (pure, result ignored) and `add` (pure, result used).
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]); // ignored
        let r = main.call(e, FuncId(2), vec![Operand::imm(1)]);
        main.ret(e, Some(r.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));

        let mut stub = FunctionBuilder::new("stub", m, 0);
        let e = stub.entry_block();
        stub.ret(e, Some(Operand::imm(0)));
        pb.add_function(stub.finish(Linkage::Public, Type::I64));

        let mut add = FunctionBuilder::new("add", m, 1);
        let e = add.entry_block();
        let s = add.bin(e, BinOp::Add, Operand::Reg(add.param(0)), Operand::imm(1));
        add.ret(e, Some(s.into()));
        pb.add_function(add.finish(Linkage::Public, Type::I64));
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn deletes_ignored_pure_call_keeps_used_one() {
        let mut p = program();
        let n = eliminate_pure_calls(&mut p);
        assert_eq!(n, 1);
        let calls: usize = p.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 1);
    }

    #[test]
    fn dead_result_pure_call_is_deleted() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let r = main.call(e, FuncId(1), vec![]); // result never used
        let _ = r;
        main.ret(e, Some(Operand::imm(0)));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut pure = FunctionBuilder::new("pure", m, 0);
        let e = pure.entry_block();
        pure.ret(e, Some(Operand::imm(7)));
        pb.add_function(pure.finish(Linkage::Public, Type::I64));
        let mut p = pb.finish(Some(FuncId(0)));
        assert_eq!(eliminate_pure_calls(&mut p), 1);
    }

    #[test]
    fn impure_callee_is_kept() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));
        let mut w = FunctionBuilder::new("w", m, 0);
        let e = w.entry_block();
        let ga = w.const_(e, hlo_ir::ConstVal::GlobalAddr(g));
        w.store(e, ga.into(), Operand::imm(0), Operand::imm(1));
        w.ret(e, None);
        pb.add_function(w.finish(Linkage::Public, Type::Void));
        let mut p = pb.finish(Some(FuncId(0)));
        assert_eq!(eliminate_pure_calls(&mut p), 0);
    }
}
