//! Summary-driven cross-call scalar transformations.
//!
//! [`crate::memfwd`] must forget everything it knows at every call, because
//! a callee may write anything it can reach. Interprocedural summaries
//! ([`hlo_ipa::Summaries`]) replace that cliff with a precise kill set —
//! a call only clobbers the globals in its MOD set and whatever the
//! pointer arguments it writes through can reach — which unlocks three
//! transformations this module implements:
//!
//! * [`fold_const_returns`] — a call to a function whose every return
//!   path yields the constant `k` has its result replaced by `k`
//!   (deleting the call outright when the callee is removable, keeping it
//!   for effect otherwise);
//! * store-to-load forwarding **across calls** in
//!   [`forward_across_calls`];
//! * cross-call **dead-store elimination** for globals, also in
//!   [`forward_across_calls`]: a store to a global overwritten before any
//!   possible observer (aliasing load, callee that may read it, block
//!   end) is deleted.

use hlo_ipa::Summaries;
use hlo_ir::{Callee, ConstVal, FuncId, GlobalId, Inst, Operand, Program, Reg, SlotId};

/// One constant-return fold, in pre-pass coordinates (for decision
/// provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstRetFold {
    /// The function the call was in.
    pub caller: FuncId,
    /// Block index of the call.
    pub block: usize,
    /// Instruction index within the block, before the pass edited it.
    pub inst: usize,
    /// The constant-returning callee.
    pub callee: FuncId,
    /// The folded constant.
    pub value: i64,
    /// True when the callee was removable and the call itself was deleted;
    /// false when the call was kept for its effects and only the result
    /// was rewritten.
    pub call_deleted: bool,
}

/// Replaces the results of direct calls to constant-returning functions
/// with the constant. Removable callees lose the whole call; effectful
/// ones keep it (result discarded) and the constant materializes after it.
pub fn fold_const_returns(p: &mut Program, summaries: &Summaries) -> Vec<ConstRetFold> {
    fold_const_returns_masked(p, summaries, None)
}

/// [`fold_const_returns`] restricted to callers `mask` selects (`None` =
/// all). Summaries stay program-wide; the mask only limits which callers
/// are rewritten.
pub fn fold_const_returns_masked(
    p: &mut Program,
    summaries: &Summaries,
    mask: Option<&[bool]>,
) -> Vec<ConstRetFold> {
    let mut folds = Vec::new();
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        if !mask.is_none_or(|m| m.get(fi).copied().unwrap_or(false)) {
            continue;
        }
        for (bi, block) in f.blocks.iter_mut().enumerate() {
            let mut rewritten: Vec<Inst> = Vec::with_capacity(block.insts.len());
            for (ii, inst) in block.insts.drain(..).enumerate() {
                let fold = match &inst {
                    Inst::Call {
                        dst: Some(d),
                        callee: Callee::Func(t),
                        ..
                    } => match summaries.funcs[t.index()].ret {
                        hlo_ipa::RetInfo::Const(k) => Some((*d, *t, k)),
                        _ => None,
                    },
                    _ => None,
                };
                let Some((d, t, k)) = fold else {
                    rewritten.push(inst);
                    continue;
                };
                let deletable = summaries.funcs[t.index()].removable();
                if !deletable {
                    // Keep the call for its effects, discard the result.
                    let Inst::Call { callee, args, .. } = inst else {
                        unreachable!("matched a call above");
                    };
                    rewritten.push(Inst::Call {
                        dst: None,
                        callee,
                        args,
                    });
                }
                rewritten.push(Inst::Const {
                    dst: d,
                    value: ConstVal::I64(k),
                });
                folds.push(ConstRetFold {
                    caller: FuncId(fi as u32),
                    block: bi,
                    inst: ii,
                    callee: t,
                    value: k,
                    call_deleted: deletable,
                });
            }
            block.insts = rewritten;
        }
    }
    folds
}

/// What one [`forward_across_calls`] run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCallStats {
    /// Loads replaced with the previously stored value across a call.
    pub forwards: u64,
    /// Global stores deleted because they were overwritten unobserved.
    pub dead_stores: u64,
    /// Functions whose bodies changed (instruction indices may have
    /// shifted; callers holding a cached call graph must invalidate
    /// exactly these).
    pub changed: Vec<FuncId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseKey {
    Slot(SlotId),
    Global(GlobalId),
    Reg(Reg),
}

#[derive(Debug, Clone, Copy)]
struct Known {
    base: BaseKey,
    offset: i64,
    value: Operand,
}

/// Per register: the frame slot or global whose address it (uniquely)
/// holds. The slot half is the same map as [`crate::memfwd`]; tracking
/// single-definition `GlobalAddr` registers as well lets the pass see
/// global accesses before constant propagation has rewritten them into
/// immediate bases.
struct AddrRegs {
    slots: Vec<Option<SlotId>>,
    globals: Vec<Option<GlobalId>>,
}

fn addr_regs(f: &hlo_ir::Function) -> AddrRegs {
    let n = f.num_regs as usize;
    let mut slots: Vec<Option<SlotId>> = vec![None; n];
    let mut globals: Vec<Option<GlobalId>> = vec![None; n];
    let mut poisoned = vec![false; n];
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::FrameAddr { dst, slot } => {
                    if slots[dst.index()].is_some_and(|s| s != *slot)
                        || globals[dst.index()].is_some()
                    {
                        poisoned[dst.index()] = true;
                    }
                    slots[dst.index()] = Some(*slot);
                }
                Inst::Const {
                    dst,
                    value: ConstVal::GlobalAddr(g),
                } => {
                    if globals[dst.index()].is_some_and(|og| og != *g)
                        || slots[dst.index()].is_some()
                    {
                        poisoned[dst.index()] = true;
                    }
                    globals[dst.index()] = Some(*g);
                }
                other => {
                    if let Some(d) = other.dst() {
                        if slots[d.index()].is_some() || globals[d.index()].is_some() {
                            poisoned[d.index()] = true;
                        }
                    }
                }
            }
        }
    }
    for (i, p) in poisoned.iter().enumerate() {
        if *p {
            slots[i] = None;
            globals[i] = None;
        }
    }
    AddrRegs { slots, globals }
}

fn classify(base: &Operand, regs: &AddrRegs) -> Option<BaseKey> {
    match base {
        Operand::Const(ConstVal::GlobalAddr(g)) => Some(BaseKey::Global(*g)),
        Operand::Reg(r) => match (regs.slots[r.index()], regs.globals[r.index()]) {
            (Some(s), _) => Some(BaseKey::Slot(s)),
            (None, Some(g)) => Some(BaseKey::Global(g)),
            (None, None) => Some(BaseKey::Reg(*r)),
        },
        Operand::Const(_) => None,
    }
}

fn may_alias(a: BaseKey, b: BaseKey) -> bool {
    match (a, b) {
        (BaseKey::Slot(x), BaseKey::Slot(y)) => x == y,
        (BaseKey::Global(x), BaseKey::Global(y)) => x == y,
        (BaseKey::Slot(_), BaseKey::Global(_)) | (BaseKey::Global(_), BaseKey::Slot(_)) => false,
        _ => true,
    }
}

/// Store-to-load forwarding that survives calls whose summaries bound what
/// they touch, plus cross-call dead-store elimination for globals.
pub fn forward_across_calls(p: &mut Program, summaries: &Summaries) -> CrossCallStats {
    forward_across_calls_masked(p, summaries, None)
}

/// [`forward_across_calls`] restricted to callers `mask` selects (`None`
/// = all).
pub fn forward_across_calls_masked(
    p: &mut Program,
    summaries: &Summaries,
    mask: Option<&[bool]>,
) -> CrossCallStats {
    let mut stats = CrossCallStats::default();
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        if !mask.is_none_or(|m| m.get(fi).copied().unwrap_or(false)) {
            continue;
        }
        let regs = addr_regs(f);
        let mut forwards = 0;
        let mut dead = 0;
        for block in &mut f.blocks {
            forwards += forward_in_block(block, &regs, summaries);
            dead += kill_dead_global_stores(block, &regs, summaries);
        }
        if forwards + dead > 0 {
            stats.changed.push(FuncId(fi as u32));
        }
        stats.forwards += forwards;
        stats.dead_stores += dead;
    }
    stats
}

/// Applies a direct call's summary to the known-store set: kill exactly
/// what the callee may write instead of everything. Returns false when the
/// call is too opaque and the caller should clear the whole set.
fn apply_call_kills(
    known: &mut Vec<Known>,
    callee: FuncId,
    args: &[Operand],
    regs: &AddrRegs,
    summaries: &Summaries,
) -> bool {
    let ct = &summaries.funcs[callee.index()];
    if ct.writes_unknown || ct.calls_extern || ct.calls_indirect {
        return false;
    }
    for &g in &ct.mod_globals {
        known.retain(|e| !may_alias(e.base, BaseKey::Global(g)));
    }
    for (j, wrote) in ct.writes_params.iter().enumerate() {
        if !*wrote {
            continue;
        }
        // Missing arguments read as zero (writes through address 0 would
        // trap in the VM, but stay conservative and clear).
        let Some(arg) = args.get(j) else {
            return false;
        };
        match classify(arg, regs) {
            Some(k) => known.retain(|e| !may_alias(e.base, k)),
            None => return false,
        }
    }
    true
}

fn forward_in_block(block: &mut hlo_ir::Block, regs: &AddrRegs, summaries: &Summaries) -> u64 {
    let mut replaced = 0;
    let mut known: Vec<Known> = Vec::new();
    // Parallel to `known`: whether a summary-screened call was crossed
    // since the entry was stored. Only such loads are rewritten here —
    // plain same-block forwarding is memfwd's job and handling it again
    // would double-report.
    let mut stored_before_call: Vec<bool> = Vec::new();
    for inst in &mut block.insts {
        match inst {
            Inst::Store {
                base,
                offset,
                value,
            } => {
                let key = classify(base, regs);
                let off = offset.as_const().and_then(ConstVal::as_i64);
                match (key, off) {
                    (Some(k), Some(o)) => {
                        let mut keep = Vec::new();
                        let mut kept: Vec<Known> = Vec::new();
                        for (e, &before) in known.iter().zip(stored_before_call.iter()) {
                            if !may_alias(e.base, k) || (e.base == k && e.offset != o) {
                                kept.push(*e);
                                keep.push(before);
                            }
                        }
                        known = kept;
                        stored_before_call = keep;
                        known.push(Known {
                            base: k,
                            offset: o,
                            value: *value,
                        });
                        stored_before_call.push(false);
                    }
                    (Some(k), None) => {
                        let mut keep = Vec::new();
                        let mut kept: Vec<Known> = Vec::new();
                        for (e, &before) in known.iter().zip(stored_before_call.iter()) {
                            if !may_alias(e.base, k) {
                                kept.push(*e);
                                keep.push(before);
                            }
                        }
                        known = kept;
                        stored_before_call = keep;
                    }
                    _ => {
                        known.clear();
                        stored_before_call.clear();
                    }
                }
            }
            Inst::Load { dst, base, offset } => {
                let key = classify(base, regs);
                let off = offset.as_const().and_then(ConstVal::as_i64);
                if let (Some(k), Some(o)) = (key, off) {
                    if let Some(pos) = known.iter().position(|e| e.base == k && e.offset == o) {
                        if stored_before_call[pos] {
                            *inst = Inst::Copy {
                                dst: *dst,
                                src: known[pos].value,
                            };
                            replaced += 1;
                        }
                    }
                }
            }
            Inst::Call {
                callee: Callee::Func(t),
                args,
                ..
            } => {
                if apply_call_kills(&mut known, *t, args, regs, summaries) {
                    stored_before_call.fill(true);
                } else {
                    known.clear();
                    stored_before_call.clear();
                }
            }
            Inst::Call { .. } | Inst::Alloca { .. } => {
                known.clear();
                stored_before_call.clear();
            }
            _ => {}
        }
        if let Some(d) = inst.dst() {
            let mut keep = Vec::new();
            let mut kept: Vec<Known> = Vec::new();
            for (e, &before) in known.iter().zip(stored_before_call.iter()) {
                if e.value.as_reg() != Some(d) && e.base != BaseKey::Reg(d) {
                    kept.push(*e);
                    keep.push(before);
                }
            }
            known = kept;
            stored_before_call = keep;
        }
    }
    replaced
}

/// Backward scan deleting stores to globals that are overwritten before
/// any possible observer. Only globals qualify: a callee can reach a
/// global without being handed it, so only the summaries make this safe,
/// while frame slots are already handled by [`crate::dead_slots`].
fn kill_dead_global_stores(
    block: &mut hlo_ir::Block,
    regs: &AddrRegs,
    summaries: &Summaries,
) -> u64 {
    // (global, offset) pairs overwritten later in the block with no
    // intervening possible reader.
    let mut overwritten: Vec<(GlobalId, i64)> = Vec::new();
    let mut dead = vec![false; block.insts.len()];
    for (ii, inst) in block.insts.iter().enumerate().rev() {
        match inst {
            Inst::Store { base, offset, .. } => {
                let key = classify(base, regs);
                let off = offset.as_const().and_then(ConstVal::as_i64);
                if let (Some(BaseKey::Global(g)), Some(o)) = (key, off) {
                    if overwritten.contains(&(g, o)) {
                        dead[ii] = true;
                    } else {
                        overwritten.push((g, o));
                    }
                } else if let Some(BaseKey::Reg(_)) = key {
                    // A store through a raw pointer could target any
                    // global, making it the "earlier store" for all
                    // tracked pairs — but it is a write, not a read, so
                    // the later overwrites still stand. Nothing to do.
                } else if key.is_none() {
                    // Absolute address: same reasoning as above.
                }
            }
            Inst::Load { base, .. } => match classify(base, regs) {
                Some(BaseKey::Global(g)) => overwritten.retain(|&(og, _)| og != g),
                Some(BaseKey::Slot(_)) => {}
                _ => overwritten.clear(),
            },
            Inst::Call {
                callee: Callee::Func(t),
                ..
            } => {
                let ct = &summaries.funcs[t.index()];
                if ct.reads_unknown
                    || ct.calls_extern
                    || ct.calls_indirect
                    || ct.reads_params.iter().any(|&r| r)
                {
                    overwritten.clear();
                } else {
                    for &g in &ct.ref_globals {
                        overwritten.retain(|&(og, _)| og != g);
                    }
                }
            }
            Inst::Call { .. } => overwritten.clear(),
            _ => {}
        }
    }
    let removed = dead.iter().filter(|&&d| d).count() as u64;
    if removed > 0 {
        let mut it = dead.iter();
        block.insts.retain(|_| !*it.next().expect("len"));
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_analysis::CallGraph;
    use hlo_ir::{BinOp, FunctionBuilder, Linkage, ProgramBuilder, Type};

    fn summarize(p: &Program) -> Summaries {
        Summaries::compute(p, &CallGraph::build(p))
    }

    /// leaf is pure (local arithmetic); main stores to g, calls leaf, and
    /// reloads g — the load must forward across the call.
    #[test]
    fn forwards_globals_across_pure_calls() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        let mut main = FunctionBuilder::new("main", m, 1);
        let e = main.entry_block();
        let ga = main.const_(e, ConstVal::GlobalAddr(g));
        main.store(e, ga.into(), Operand::imm(0), Operand::Reg(main.param(0)));
        let r = main.call(e, FuncId(1), vec![Operand::Reg(main.param(0))]);
        let v = main.load(e, ga.into(), Operand::imm(0));
        let s = main.bin(e, BinOp::Add, r.into(), v.into());
        main.ret(e, Some(s.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut leaf = FunctionBuilder::new("leaf", m, 1);
        let e = leaf.entry_block();
        let r = leaf.bin(e, BinOp::Add, Operand::Reg(leaf.param(0)), Operand::imm(1));
        leaf.ret(e, Some(r.into()));
        pb.add_function(leaf.finish(Linkage::Public, Type::I64));
        let mut p = pb.finish(Some(FuncId(0)));
        let s = summarize(&p);
        let stats = forward_across_calls(&mut p, &s);
        assert_eq!(stats.forwards, 1);
        assert!(p.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .all(|i| !matches!(i, Inst::Load { .. })));
    }

    /// The callee writes g, so the caller's knowledge of g must die while
    /// knowledge of the unrelated h survives.
    #[test]
    fn mod_set_kills_exactly_the_written_global() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        let h = pb.add_global("h", m, Linkage::Public, 1, vec![]);
        let mut main = FunctionBuilder::new("main", m, 1);
        let e = main.entry_block();
        let ga = main.const_(e, ConstVal::GlobalAddr(g));
        let ha = main.const_(e, ConstVal::GlobalAddr(h));
        main.store(e, ga.into(), Operand::imm(0), Operand::imm(1));
        main.store(e, ha.into(), Operand::imm(0), Operand::imm(2));
        main.call_void(e, FuncId(1), vec![]);
        let vg = main.load(e, ga.into(), Operand::imm(0)); // must stay
        let vh = main.load(e, ha.into(), Operand::imm(0)); // must forward
        let s = main.bin(e, BinOp::Add, vg.into(), vh.into());
        main.ret(e, Some(s.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut w = FunctionBuilder::new("writes_g", m, 0);
        let e = w.entry_block();
        let ga = w.const_(e, ConstVal::GlobalAddr(g));
        w.store(e, ga.into(), Operand::imm(0), Operand::imm(9));
        w.ret(e, None);
        pb.add_function(w.finish(Linkage::Public, Type::Void));
        let mut p = pb.finish(Some(FuncId(0)));
        let s = summarize(&p);
        let stats = forward_across_calls(&mut p, &s);
        assert_eq!(stats.forwards, 1, "only the h load forwards");
        let loads = p.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1, "the g load survives");
    }

    #[test]
    fn const_returns_fold_and_pure_calls_die() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let ext = pb.declare_extern("print_i64", Some(1), false);
        // Pure constant leaf: call disappears entirely.
        let mut k = FunctionBuilder::new("k", m, 0);
        let e = k.entry_block();
        k.ret(e, Some(Operand::imm(41)));
        pb.add_function(k.finish(Linkage::Public, Type::I64));
        // Effectful constant: prints, then returns 1.
        let mut eff = FunctionBuilder::new("eff", m, 0);
        let e = eff.entry_block();
        eff.call_extern(e, ext, vec![Operand::imm(1)], false);
        eff.ret(e, Some(Operand::imm(1)));
        pb.add_function(eff.finish(Linkage::Public, Type::I64));
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let a = main.call(e, FuncId(0), vec![]);
        let b = main.call(e, FuncId(1), vec![]);
        let s = main.bin(e, BinOp::Add, a.into(), b.into());
        main.ret(e, Some(s.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut p = pb.finish(Some(FuncId(2)));
        let s = summarize(&p);
        let folds = fold_const_returns(&mut p, &s);
        assert_eq!(folds.len(), 2);
        assert!(folds
            .iter()
            .any(|f| f.callee == FuncId(0) && f.call_deleted && f.value == 41));
        assert!(folds
            .iter()
            .any(|f| f.callee == FuncId(1) && !f.call_deleted && f.value == 1));
        let main_insts: Vec<_> = p.funcs[2].blocks[0].insts.iter().collect();
        let calls = main_insts
            .iter()
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 1, "only the effectful call remains");
        assert!(
            main_insts
                .iter()
                .all(|i| !matches!(i, Inst::Call { dst: Some(_), .. })),
            "the remaining call's result is discarded"
        );
    }

    /// Two stores to the same global with only a non-reading call between
    /// them: the first store is dead. A reading callee keeps it alive.
    #[test]
    fn dead_global_stores_die_across_non_reading_calls() {
        fn build(reader: bool) -> Program {
            let mut pb = ProgramBuilder::new();
            let m = pb.add_module("m");
            let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
            let h = pb.add_global("h", m, Linkage::Public, 1, vec![]);
            let mut main = FunctionBuilder::new("main", m, 0);
            let e = main.entry_block();
            let ga = main.const_(e, ConstVal::GlobalAddr(g));
            main.store(e, ga.into(), Operand::imm(0), Operand::imm(1));
            main.call_void(e, FuncId(1), vec![]);
            main.store(e, ga.into(), Operand::imm(0), Operand::imm(2));
            let v = main.load(e, ga.into(), Operand::imm(0));
            main.ret(e, Some(v.into()));
            pb.add_function(main.finish(Linkage::Public, Type::I64));
            let mut other = FunctionBuilder::new("other", m, 0);
            let e = other.entry_block();
            let addr = other.const_(e, ConstVal::GlobalAddr(if reader { g } else { h }));
            let v = other.load(e, addr.into(), Operand::imm(0));
            let ha = other.const_(e, ConstVal::GlobalAddr(h));
            other.store(e, ha.into(), Operand::imm(0), v.into());
            other.ret(e, None);
            pb.add_function(other.finish(Linkage::Public, Type::Void));
            pb.finish(Some(FuncId(0)))
        }
        let mut p = build(false);
        let s = summarize(&p);
        assert_eq!(forward_across_calls(&mut p, &s).dead_stores, 1);
        let mut p = build(true);
        let s = summarize(&p);
        assert_eq!(
            forward_across_calls(&mut p, &s).dead_stores,
            0,
            "a callee that reads g keeps the first store alive"
        );
    }

    /// A callee writing through its pointer parameter kills knowledge of
    /// the slot the caller passed, but not of other slots.
    #[test]
    fn writes_params_kill_only_the_passed_slot() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let s1 = main.new_slot(8);
        let s2 = main.new_slot(8);
        let a1 = main.frame_addr(e, s1);
        let a2 = main.frame_addr(e, s2);
        main.store(e, a1.into(), Operand::imm(0), Operand::imm(1));
        main.store(e, a2.into(), Operand::imm(0), Operand::imm(2));
        main.call_void(e, FuncId(1), vec![a1.into()]);
        let v1 = main.load(e, a1.into(), Operand::imm(0)); // clobbered
        let v2 = main.load(e, a2.into(), Operand::imm(0)); // forwards
        let s = main.bin(e, BinOp::Add, v1.into(), v2.into());
        main.ret(e, Some(s.into()));
        pb.add_function(main.finish(Linkage::Public, Type::I64));
        let mut w = FunctionBuilder::new("fill", m, 1);
        let e = w.entry_block();
        w.store(
            e,
            Operand::Reg(w.param(0)),
            Operand::imm(0),
            Operand::imm(9),
        );
        w.ret(e, None);
        pb.add_function(w.finish(Linkage::Public, Type::Void));
        let mut p = pb.finish(Some(FuncId(0)));
        let s = summarize(&p);
        assert_eq!(forward_across_calls(&mut p, &s).forwards, 1);
    }
}
