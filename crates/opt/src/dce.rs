//! Liveness-based dead-code elimination.

use hlo_ir::{Function, Operand};

/// Per-block live-out register sets as bit vectors.
pub(crate) fn live_out_sets(f: &Function) -> Vec<Vec<bool>> {
    let nregs = f.num_regs as usize;
    let nblocks = f.blocks.len();
    // use[b], def[b]
    let mut use_b = vec![vec![false; nregs]; nblocks];
    let mut def_b = vec![vec![false; nregs]; nblocks];
    for (bi, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    if !def_b[bi][r.index()] {
                        use_b[bi][r.index()] = true;
                    }
                }
            });
            if let Some(d) = inst.dst() {
                def_b[bi][d.index()] = true;
            }
        }
    }
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| b.successors().iter().map(|s| s.index()).collect())
        .collect();
    let mut live_in = vec![vec![false; nregs]; nblocks];
    let mut live_out = vec![vec![false; nregs]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            // out = union of in[succ]
            for &s in &succs[bi] {
                for r in 0..nregs {
                    if live_in[s][r] && !live_out[bi][r] {
                        live_out[bi][r] = true;
                        changed = true;
                    }
                }
            }
            // in = use | (out - def)
            for r in 0..nregs {
                let v = use_b[bi][r] || (live_out[bi][r] && !def_b[bi][r]);
                if v != live_in[bi][r] {
                    live_in[bi][r] = v;
                    changed = true;
                }
            }
        }
    }
    live_out
}

/// Removes instructions whose results are dead and which have no side
/// effects. Returns the number of instructions removed. Runs to a local
/// fixpoint (removing one instruction can kill another's last use).
pub fn eliminate_dead(f: &mut Function) -> u64 {
    let mut total = 0;
    loop {
        let live_out = live_out_sets(f);
        let nregs = f.num_regs as usize;
        let mut removed_this_round = 0;
        for (bi, block) in f.blocks.iter_mut().enumerate() {
            // Walk backwards with a running live set.
            let mut live = live_out[bi].clone();
            let mut keep = vec![true; block.insts.len()];
            for (ii, inst) in block.insts.iter().enumerate().rev() {
                let dead_dst = inst.dst().map(|d| !live[d.index()]).unwrap_or(false);
                if dead_dst && !inst.has_side_effect() {
                    keep[ii] = false;
                    removed_this_round += 1;
                    continue; // its uses do not become live
                }
                if let Some(d) = inst.dst() {
                    live[d.index()] = false;
                }
                inst.for_each_use(|op| {
                    if let Operand::Reg(r) = op {
                        if r.index() < nregs {
                            live[r.index()] = true;
                        }
                    }
                });
            }
            if removed_this_round > 0 {
                let mut it = keep.iter();
                block.insts.retain(|_| *it.next().expect("keep length"));
            }
        }
        total += removed_this_round;
        if removed_this_round == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{BinOp, FunctionBuilder, Inst, Linkage, ModuleId, Type};

    #[test]
    fn removes_unused_arithmetic_chains() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let a = fb.iconst(e, 1);
        let b = fb.bin(e, BinOp::Add, a.into(), Operand::imm(2)); // dead chain
        let _ = b;
        fb.ret(e, Some(Operand::Reg(fb.param(0))));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let n = eliminate_dead(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.size(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        // store is a side effect; the div may trap
        fb.store(
            e,
            Operand::Reg(fb.param(0)),
            Operand::imm(0),
            Operand::imm(1),
        );
        let q = fb.bin(e, BinOp::Div, Operand::imm(1), Operand::Reg(fb.param(0)));
        let _ = q; // unused but trapping
        fb.ret(e, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        let n = eliminate_dead(&mut f);
        assert_eq!(n, 0);
        assert_eq!(f.size(), 3);
    }

    #[test]
    fn keeps_values_live_across_blocks() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let exit = fb.new_block();
        let v = fb.iconst(e, 9);
        fb.jump(e, exit);
        fb.ret(exit, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let n = eliminate_dead(&mut f);
        assert_eq!(n, 0);
    }

    #[test]
    fn dead_loads_are_removed() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let v = fb.load(e, Operand::Reg(fb.param(0)), Operand::imm(0));
        let _ = v;
        fb.ret(e, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        assert_eq!(eliminate_dead(&mut f), 1);
    }

    #[test]
    fn call_results_unused_still_kept() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let r = fb.call(e, hlo_ir::FuncId(0), vec![]);
        let _ = r;
        fb.ret(e, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        assert_eq!(eliminate_dead(&mut f), 0);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // i updated in loop, used by branch: nothing removable.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let h = fb.new_block();
        let x = fb.new_block();
        let i = fb.new_reg();
        fb.copy_to(e, i, Operand::imm(0));
        fb.jump(e, h);
        let i1 = fb.bin(h, BinOp::Add, i.into(), Operand::imm(1));
        fb.copy_to(h, i, i1.into());
        let c = fb.bin(h, BinOp::Lt, i.into(), Operand::Reg(fb.param(0)));
        fb.br(h, c.into(), h, x);
        fb.ret(x, Some(i.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_dead(&mut f), 0);
    }
}
